// Tests for Shape<D>: depth, slopes, reach, compliance checking (§2).
#include <gtest/gtest.h>

#include "core/shape.hpp"

namespace pochoir {
namespace {

TEST(Shape, Figure6HeatShape) {
  Shape<2> s = {{1, 0, 0}, {0, 0, 0}, {0, 1, 0}, {0, -1, 0}, {0, 0, -1}, {0, 0, 1}};
  EXPECT_EQ(s.home_dt(), 1);
  EXPECT_EQ(s.depth(), 1);
  EXPECT_EQ(s.sigma(0), 1);
  EXPECT_EQ(s.sigma(1), 1);
  EXPECT_EQ(s.reach(0), 1);
  EXPECT_EQ(s.reach(1), 1);
  EXPECT_EQ(s.cells().size(), 6u);
}

TEST(Shape, PaperSection2ExampleShape) {
  // "The shape of this stencil is {{0,0,0}, {-1,1,0}, {-1,0,0}, {-1,-1,0},
  //  {-1,0,1}, {-1,0,-1}}" — home at dt=0, reads at dt=-1, depth 1.
  Shape<2> s = {{0, 0, 0}, {-1, 1, 0}, {-1, 0, 0}, {-1, -1, 0}, {-1, 0, 1}, {-1, 0, -1}};
  EXPECT_EQ(s.home_dt(), 0);
  EXPECT_EQ(s.depth(), 1);
  EXPECT_EQ(s.sigma(0), 1);
  EXPECT_EQ(s.sigma(1), 1);
}

TEST(Shape, DepthTwoWave) {
  Shape<1> s = {{1, 0}, {0, 0}, {0, 1}, {0, -1}, {-1, 0}};
  EXPECT_EQ(s.depth(), 2);
  EXPECT_EQ(s.sigma(0), 1);
}

TEST(Shape, SlopeCeilingOverMultiStep) {
  // A cell two steps back but three cells away: sigma = ceil(3/2) = 2.
  Shape<1> s = {{1, 0}, {-1, 3}};
  EXPECT_EQ(s.depth(), 2);
  EXPECT_EQ(s.sigma(0), 2);
  EXPECT_EQ(s.reach(0), 3);
}

TEST(Shape, WideReachSameStep) {
  Shape<1> s = {{1, 0}, {0, -4}, {0, 4}};
  EXPECT_EQ(s.sigma(0), 4);
  EXPECT_EQ(s.reach(0), 4);
  EXPECT_EQ(s.depth(), 1);
}

TEST(Shape, AsymmetricOffsetsTakeMaxMagnitude) {
  Shape<2> s = {{1, 0, 0}, {0, -2, 0}, {0, 0, 3}};
  EXPECT_EQ(s.sigma(0), 2);
  EXPECT_EQ(s.sigma(1), 3);
}

TEST(Shape, ContainsOffset) {
  Shape<2> s = {{1, 0, 0}, {0, 1, 0}, {0, 0, -1}};
  EXPECT_TRUE(s.contains_offset(1, {0, 0}));
  EXPECT_TRUE(s.contains_offset(0, {1, 0}));
  EXPECT_TRUE(s.contains_offset(0, {0, -1}));
  EXPECT_FALSE(s.contains_offset(0, {0, 1}));
  EXPECT_FALSE(s.contains_offset(-1, {0, 0}));
}

TEST(Shape, GeneratorOnlyShapeHasDepthOne) {
  Shape<1> s = {{1, 0}};
  EXPECT_EQ(s.depth(), 1);
  EXPECT_EQ(s.sigma(0), 0);
}

TEST(ShapeDeath, RejectsNonZeroHomeSpatial) {
  EXPECT_DEATH((Shape<1>{{1, 2}}), "home cell");
}

TEST(ShapeDeath, RejectsCellAtOrAboveHomeTime) {
  EXPECT_DEATH((Shape<1>{{1, 0}, {1, 1}}), "smaller time offsets");
  EXPECT_DEATH((Shape<1>{{0, 0}, {2, 1}}), "smaller time offsets");
}

}  // namespace
}  // namespace pochoir
