// RNA pairing relaxation: monotonicity, convergence, and equivalence with
// the serial reference (see DESIGN.md for the documented substitution).
#include <gtest/gtest.h>

#include "core/boundary.hpp"
#include "core/stencil.hpp"
#include "stencils/common.hpp"
#include "stencils/rna.hpp"

namespace pochoir {
namespace {

using stencils::RnaCell;

std::vector<RnaCell> run_rna(const std::vector<int>& seq, std::int64_t rounds,
                             Algorithm alg) {
  const auto n = static_cast<std::int64_t>(seq.size());
  Array<RnaCell, 2> grid({n, n}, 1);
  grid.register_boundary(zero_boundary<RnaCell, 2>());
  grid.fill_time(0, [](const auto&) { return 0; });
  Stencil<2, RnaCell> st(stencils::rna_shape());
  st.register_arrays(grid);
  st.run(alg, rounds, stencils::rna_kernel(seq));
  std::vector<RnaCell> out(static_cast<std::size_t>(n * n));
  for (std::int64_t i = 0; i < n; ++i) {
    for (std::int64_t j = 0; j < n; ++j) {
      out[static_cast<std::size_t>(i * n + j)] =
          grid.interior(st.result_time(), i, j);
    }
  }
  return out;
}

TEST(Rna, BondTable) {
  EXPECT_EQ(stencils::rna_bond(2, 1), 3);  // G-C
  EXPECT_EQ(stencils::rna_bond(1, 2), 3);
  EXPECT_EQ(stencils::rna_bond(0, 3), 2);  // A-U
  EXPECT_EQ(stencils::rna_bond(2, 3), 1);  // G-U
  EXPECT_EQ(stencils::rna_bond(0, 1), 0);
  EXPECT_EQ(stencils::rna_bond(0, 0), 0);
}

TEST(Rna, StencilMatchesReference) {
  const auto seq = stencils::random_sequence(24, 4, 5);
  for (const std::int64_t rounds : {1, 5, 12}) {
    const auto want = stencils::rna_reference(seq, rounds);
    const auto got = run_rna(seq, rounds, Algorithm::kTrap);
    ASSERT_EQ(got, want) << "rounds=" << rounds;
  }
}

TEST(Rna, AlgorithmsAgree) {
  const auto seq = stencils::random_sequence(20, 4, 77);
  const auto a = run_rna(seq, 9, Algorithm::kTrap);
  const auto b = run_rna(seq, 9, Algorithm::kStrap);
  const auto c = run_rna(seq, 9, Algorithm::kLoopsSerial);
  EXPECT_EQ(a, b);
  EXPECT_EQ(a, c);
}

TEST(Rna, ScoresAreMonotoneInRounds) {
  const auto seq = stencils::random_sequence(18, 4, 9);
  const auto r3 = run_rna(seq, 3, Algorithm::kTrap);
  const auto r8 = run_rna(seq, 8, Algorithm::kTrap);
  for (std::size_t k = 0; k < r3.size(); ++k) {
    ASSERT_GE(r8[k], r3[k]);
  }
}

TEST(Rna, ConvergesToFixpoint) {
  const auto seq = stencils::random_sequence(14, 4, 30);
  const auto n = static_cast<std::int64_t>(seq.size());
  // After ~2n rounds the relaxation must be stationary.
  const auto a = run_rna(seq, 2 * n, Algorithm::kTrap);
  const auto b = run_rna(seq, 2 * n + 3, Algorithm::kTrap);
  EXPECT_EQ(a, b);
}

TEST(Rna, HairpinConstraintBlocksShortLoops) {
  // Two complementary bases closer than the minimum loop cannot pair:
  // score stays 0 for a short G...C pair.
  std::vector<int> seq = {2, 0, 0, 1};  // G A A C, j - i = 3 <= min_loop
  const auto s = run_rna(seq, 10, Algorithm::kTrap);
  EXPECT_EQ(s[0 * 4 + 3], 0);
  // With a long enough spacer the pair forms (+3 for G-C).
  std::vector<int> seq2 = {2, 0, 0, 0, 0, 1};  // j - i = 5 > 3
  const auto s2 = run_rna(seq2, 12, Algorithm::kTrap);
  EXPECT_EQ(s2[0 * 6 + 5], 3);
}

TEST(Rna, NestedPairsAccumulate) {
  // G G A A A A C C: outer and inner G-C pairs both form (+6) given the
  // relaxation enough rounds.
  std::vector<int> seq = {2, 2, 0, 0, 0, 0, 0, 1, 1};
  const auto n = static_cast<std::int64_t>(seq.size());
  const auto s = run_rna(seq, 3 * n, Algorithm::kTrap);
  EXPECT_GE(s[static_cast<std::size_t>(0 * n + (n - 1))], 6);
}

}  // namespace
}  // namespace pochoir
