// Tests for the boundary-condition library (§2, §4, Figure 11).
#include <gtest/gtest.h>

#include "core/array.hpp"
#include "core/boundary.hpp"

namespace pochoir {
namespace {

TEST(Boundary, PeriodicWrapsBothSides) {
  Array<double, 1> a({5});
  a.register_boundary(periodic_boundary<double, 1>());
  for (std::int64_t x = 0; x < 5; ++x) a.interior(0, x) = static_cast<double>(x);
  EXPECT_EQ(a.get(0, std::int64_t{-1}), 4.0);
  EXPECT_EQ(a.get(0, std::int64_t{-5}), 0.0);
  EXPECT_EQ(a.get(0, std::int64_t{5}), 0.0);
  EXPECT_EQ(a.get(0, std::int64_t{11}), 1.0);
}

TEST(Boundary, Periodic2DWrapsIndependently) {
  Array<double, 2> a({3, 4});
  a.register_boundary(periodic_boundary<double, 2>());
  a.fill_time(0, [](const std::array<std::int64_t, 2>& i) {
    return static_cast<double>(i[0] * 10 + i[1]);
  });
  EXPECT_EQ(a.get(0, std::int64_t{-1}, std::int64_t{-1}), 23.0);
  EXPECT_EQ(a.get(0, std::int64_t{3}, std::int64_t{4}), 0.0);
}

TEST(Boundary, DirichletConstant) {
  Array<double, 1> a({4});
  a.register_boundary(dirichlet_boundary<double, 1>(42.0));
  EXPECT_EQ(a.get(0, std::int64_t{-3}), 42.0);
  EXPECT_EQ(a.get(5, std::int64_t{100}), 42.0);
}

TEST(Boundary, DirichletTimeVarying) {
  // Figure 11(a): return 100 + 0.2*t;
  Array<double, 2> a({4, 4});
  a.register_boundary(dirichlet_boundary_fn<double, 2>(
      [](std::int64_t t, const std::array<std::int64_t, 2>&) {
        return 100.0 + 0.2 * static_cast<double>(t);
      }));
  EXPECT_EQ(a.get(0, std::int64_t{-1}, std::int64_t{0}), 100.0);
  EXPECT_EQ(a.get(10, std::int64_t{4}, std::int64_t{0}), 102.0);
}

TEST(Boundary, NeumannClampsToEdge) {
  // Figure 11(b): zero-derivative clamping.
  Array<double, 1> a({4});
  a.register_boundary(neumann_boundary<double, 1>());
  for (std::int64_t x = 0; x < 4; ++x) a.interior(0, x) = static_cast<double>(x + 1);
  EXPECT_EQ(a.get(0, std::int64_t{-2}), 1.0);
  EXPECT_EQ(a.get(0, std::int64_t{9}), 4.0);
}

TEST(Boundary, MixedCylinder) {
  // Periodic in x, Dirichlet in y: the 2D cylinder of §4.
  Array<double, 2> a({4, 4});
  a.register_boundary(mixed_boundary<double, 2>(
      {BoundaryKind::kPeriodic, BoundaryKind::kDirichlet}, -1.0));
  a.fill_time(0, [](const std::array<std::int64_t, 2>& i) {
    return static_cast<double>(i[0] * 10 + i[1]);
  });
  EXPECT_EQ(a.get(0, std::int64_t{-1}, std::int64_t{2}), 32.0);  // wrap x
  EXPECT_EQ(a.get(0, std::int64_t{4}, std::int64_t{2}), 2.0);    // wrap x
  EXPECT_EQ(a.get(0, std::int64_t{1}, std::int64_t{-1}), -1.0);  // clip y
  EXPECT_EQ(a.get(0, std::int64_t{1}, std::int64_t{4}), -1.0);   // clip y
}

TEST(Boundary, MixedNeumannPeriodic) {
  Array<double, 2> a({3, 3});
  a.register_boundary(mixed_boundary<double, 2>(
      {BoundaryKind::kNeumann, BoundaryKind::kPeriodic}));
  a.fill_time(0, [](const std::array<std::int64_t, 2>& i) {
    return static_cast<double>(i[0] * 3 + i[1]);
  });
  EXPECT_EQ(a.get(0, std::int64_t{-1}, std::int64_t{-1}), 2.0);  // clamp x, wrap y
  EXPECT_EQ(a.get(0, std::int64_t{3}, std::int64_t{3}), 6.0);    // clamp x, wrap y
}

TEST(Boundary, ZeroBoundaryShorthand) {
  Array<int, 1> a({3});
  a.register_boundary(zero_boundary<int, 1>());
  EXPECT_EQ(a.get(0, std::int64_t{-1}), 0);
}

TEST(Boundary, ReRegistrationReplaces) {
  Array<double, 1> a({3});
  a.register_boundary(dirichlet_boundary<double, 1>(1.0));
  EXPECT_EQ(a.get(0, std::int64_t{-1}), 1.0);
  a.register_boundary(dirichlet_boundary<double, 1>(2.0));
  EXPECT_EQ(a.get(0, std::int64_t{-1}), 2.0);
}

}  // namespace
}  // namespace pochoir
