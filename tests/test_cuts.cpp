// Property tests for the trapezoidal decomposition (space cuts, hyperspace
// cuts with dependency levels, time cuts, seam cuts) — §3 and Lemma 1.
#include <gtest/gtest.h>

#include <map>
#include <set>
#include <tuple>
#include <vector>

#include "geometry/cuts.hpp"
#include "geometry/zoid.hpp"
#include "support/rng.hpp"

namespace pochoir {
namespace {

using Point1 = std::pair<std::int64_t, std::int64_t>;

/// All points of a 1D zoid as (t, x) pairs.
std::set<Point1> points_of(const Zoid<1>& z) {
  std::set<Point1> pts;
  for_each_point(z, [&](std::int64_t t, const std::array<std::int64_t, 1>& i) {
    pts.insert({t, i[0]});
  });
  return pts;
}

/// Random well-defined 1D zoid with slopes in {-s..s}.
Zoid<1> random_zoid(Rng& rng, std::int64_t sigma) {
  while (true) {
    Zoid<1> z;
    z.t0 = rng.next_below(4);
    z.t1 = z.t0 + 1 + rng.next_below(8);
    z.x0 = {rng.next_below(40)};
    z.x1 = {z.x0[0] + rng.next_below(60)};
    z.dx0 = {rng.next_below(2 * sigma + 1) - sigma};
    z.dx1 = {rng.next_below(2 * sigma + 1) - sigma};
    if (z.well_defined()) return z;
  }
}

TEST(SpaceCut, PiecesPartitionParent) {
  Rng rng(1234);
  int cuts_seen = 0;
  for (int trial = 0; trial < 500; ++trial) {
    const std::int64_t sigma = 1 + rng.next_below(2);
    const Zoid<1> z = random_zoid(rng, sigma);
    // period larger than any coordinate → never a seam cut here
    const auto cut = try_space_cut(z, 0, sigma, 1 << 20);
    if (!cut.has_value()) continue;
    ++cuts_seen;
    ASSERT_EQ(cut->count, 3);
    std::set<Point1> combined;
    std::int64_t total = 0;
    for (int j = 0; j < 3; ++j) {
      const Zoid<1> sub = with_piece(z, 0, cut->piece[j]);
      for (const auto& p : points_of(sub)) {
        auto [it, fresh] = combined.insert(p);
        ASSERT_TRUE(fresh) << "pieces overlap at t=" << p.first
                           << " x=" << p.second;
      }
      total += sub.volume();
    }
    ASSERT_EQ(combined, points_of(z)) << "pieces do not cover the parent";
    ASSERT_EQ(total, z.volume());
  }
  EXPECT_GT(cuts_seen, 50);  // the generator must actually exercise cuts
}

TEST(SpaceCut, RespectsWidthCondition) {
  // A zoid narrower than 2*sigma*h must not be cut.
  Zoid<1> z = Zoid<1>::box(0, 8, {15});
  z.x0 = {100};          // not at the origin: no seam cut either
  z.x1 = {115};
  EXPECT_FALSE(try_space_cut(z, 0, 1, 1 << 20).has_value());
  z.x1 = {116};  // width 16 == 2*1*8
  EXPECT_TRUE(try_space_cut(z, 0, 1, 1 << 20).has_value());
}

TEST(SpaceCut, MinimalGrayTriangleIsNotCut) {
  // The gray triangle of a previous cut: bottom 2*sigma*h wide, converging
  // at the maximum rate.  The paper's literal width condition would admit
  // it, but the pieces would be ill-defined; the validity check refuses.
  Zoid<1> z;
  z.t0 = 0;
  z.t1 = 4;
  z.x0 = {50};
  z.x1 = {58};  // width 8 = 2*1*4
  z.dx0 = {1};
  z.dx1 = {-1};
  EXPECT_TRUE(z.well_defined());
  EXPECT_FALSE(try_space_cut(z, 0, 1, 1 << 20).has_value());
}

TEST(SpaceCut, ZeroSlopeBisects) {
  Zoid<1> z = Zoid<1>::box(0, 4, {10});
  const auto cut = try_space_cut(z, 0, 0, 10);
  ASSERT_TRUE(cut.has_value());
  EXPECT_EQ(cut->count, 2);
  EXPECT_EQ(cut->level_bit[0], 0);
  EXPECT_EQ(cut->level_bit[1], 0);  // independent halves, same level
  EXPECT_EQ(cut->piece[0].x1, cut->piece[1].x0);
}

TEST(SeamCut, FullCircumferenceGetsSeamCut) {
  const Zoid<1> z = Zoid<1>::box(0, 4, {32});
  const auto cut = try_space_cut(z, 0, 1, 32);
  ASSERT_TRUE(cut.has_value());
  EXPECT_TRUE(cut->seam);
  EXPECT_EQ(cut->count, 2);
  // Black ring first (level 0), seam triangle second (level 1).
  EXPECT_EQ(cut->level_bit[0], 0);
  EXPECT_EQ(cut->level_bit[1], 1);
  // The seam piece lives in virtual coordinates around x = period.
  const Zoid<1> seam = with_piece(z, 0, cut->piece[1]);
  EXPECT_EQ(seam.x0[0], 32);
  EXPECT_EQ(seam.x1[0], 32);
  EXPECT_EQ(seam.max_hi(0), 32 + 3);
  // Together they tile the torus: every (t, x mod 32) exactly once.
  std::map<Point1, int> cover;
  for (int j = 0; j < 2; ++j) {
    const Zoid<1> sub = with_piece(z, 0, cut->piece[j]);
    for_each_point(sub,
                   [&](std::int64_t t, const std::array<std::int64_t, 1>& i) {
                     ++cover[{t, ((i[0] % 32) + 32) % 32}];
                   });
  }
  EXPECT_EQ(cover.size(), 4u * 32u);
  for (const auto& [p, n] : cover) {
    ASSERT_EQ(n, 1) << "torus point covered " << n << " times";
  }
}

TEST(SeamCut, TooShortCircumferenceFallsToTimeCut) {
  const Zoid<1> z = Zoid<1>::box(0, 8, {8});  // 8 < 2*1*8
  EXPECT_FALSE(try_space_cut(z, 0, 1, 8).has_value());
}

TEST(TimeCut, HalvesPartitionAndChain) {
  Rng rng(777);
  for (int trial = 0; trial < 200; ++trial) {
    Zoid<1> z = random_zoid(rng, 1);
    if (z.height() < 2) continue;
    const auto [lower, upper] = time_cut(z);
    EXPECT_EQ(lower.t1, upper.t0);
    EXPECT_EQ(lower.t0, z.t0);
    EXPECT_EQ(upper.t1, z.t1);
    EXPECT_EQ(lower.volume() + upper.volume(), z.volume());
    // The upper base continues exactly where the lower sides end.
    const std::int64_t half = lower.height();
    EXPECT_EQ(upper.x0[0], z.x0[0] + z.dx0[0] * half);
    EXPECT_EQ(upper.x1[0], z.x1[0] + z.dx1[0] * half);
  }
}

TEST(HyperCut, SubzoidCountAndLevels2D) {
  // Wide box away from the seam: both dims trisect → 9 subzoids, 3 levels.
  Zoid<2> z = Zoid<2>::box(0, 4, {64, 64});
  z.x0 = {1, 1};  // knock out the seam-cut detection
  const std::array<std::int64_t, 2> sigma = {1, 1};
  const std::array<std::int64_t, 2> thresh = {1, 1};
  const std::array<std::int64_t, 2> grid = {256, 256};
  const auto plan = plan_hyperspace_cut(z, sigma, thresh, grid);
  EXPECT_EQ(plan.k, 2);
  EXPECT_EQ(plan.subzoid_count(), 9);
  EXPECT_EQ(plan.level_count(), 3);
  std::map<int, int> per_level;
  std::int64_t total_volume = 0;
  for_each_subzoid(z, plan, [&](const Zoid<2>& sub, int level) {
    ++per_level[level];
    total_volume += sub.volume();
  });
  // Lemma 1 with k=2 upright dims: 4 blacks at level 0, 4 mixed at level 1,
  // 1 gray-gray at level 2.
  EXPECT_EQ(per_level[0], 4);
  EXPECT_EQ(per_level[1], 4);
  EXPECT_EQ(per_level[2], 1);
  EXPECT_EQ(total_volume, z.volume());
}

TEST(HyperCut, DependencyLevelFormulaMatchesLemma1) {
  // For every pair of subzoids where one's points feed the other at the
  // next time step, the consumer's level must not precede the producer's.
  Zoid<2> z = Zoid<2>::box(0, 3, {32, 32});
  z.x0 = {1, 1};
  const std::array<std::int64_t, 2> sigma = {1, 1};
  const std::array<std::int64_t, 2> thresh = {1, 1};
  const std::array<std::int64_t, 2> grid = {1 << 20, 1 << 20};
  const auto plan = plan_hyperspace_cut(z, sigma, thresh, grid);
  ASSERT_EQ(plan.k, 2);

  struct Sub {
    Zoid<2> z;
    int level;
  };
  std::vector<Sub> subs;
  for_each_subzoid(z, plan,
                   [&](const Zoid<2>& sub, int level) { subs.push_back({sub, level}); });

  // Map every point to its subzoid's level.
  std::map<std::tuple<std::int64_t, std::int64_t, std::int64_t>, int> level_of;
  for (const auto& sub : subs) {
    for_each_point(sub.z,
                   [&](std::int64_t t, const std::array<std::int64_t, 2>& i) {
                     level_of[{t, i[0], i[1]}] = sub.level;
                   });
  }
  // Every point's dependencies at t-1 (within the parent zoid) must have a
  // level <= the point's level.
  for (const auto& [point, level] : level_of) {
    const auto [t, x, y] = point;
    for (std::int64_t dx = -1; dx <= 1; ++dx) {
      for (std::int64_t dy = -1; dy <= 1; ++dy) {
        const auto dep = level_of.find({t - 1, x + dx, y + dy});
        if (dep == level_of.end()) continue;  // outside the parent: done earlier
        ASSERT_LE(dep->second, level)
            << "point (" << t << "," << x << "," << y << ") at level " << level
            << " depends on later level " << dep->second;
      }
    }
  }
}

TEST(HyperCut, ThresholdSuppressesCutting) {
  Zoid<2> z = Zoid<2>::box(0, 2, {64, 64});
  z.x0 = {1, 1};
  const std::array<std::int64_t, 2> sigma = {1, 1};
  const std::array<std::int64_t, 2> grid = {1 << 20, 1 << 20};
  const std::array<std::int64_t, 2> coarse = {100, 100};
  EXPECT_TRUE(plan_hyperspace_cut(z, sigma, coarse, grid).empty());
  const std::array<std::int64_t, 2> mixed = {100, 1};
  const auto plan = plan_hyperspace_cut(z, sigma, mixed, grid);
  EXPECT_EQ(plan.k, 1);
  EXPECT_FALSE(plan.dims[0].has_value());
  EXPECT_TRUE(plan.dims[1].has_value());
}

TEST(FirstCut, PicksLowestCuttableDim) {
  Zoid<2> z = Zoid<2>::box(0, 2, {8, 64});
  z.x0 = {1, 1};  // dim 0 too narrow to cut at threshold 8
  const std::array<std::int64_t, 2> sigma = {1, 1};
  const std::array<std::int64_t, 2> thresh = {8, 1};
  const std::array<std::int64_t, 2> grid = {1 << 20, 1 << 20};
  const auto cut = plan_first_cut(z, sigma, thresh, grid);
  ASSERT_TRUE(cut.has_value());
  EXPECT_EQ(cut->first, 1);
}

TEST(HyperCut, InvertedTrapezoidGrayGoesFirst) {
  Zoid<1> z;
  z.t0 = 0;
  z.t1 = 4;
  z.x0 = {40};
  z.x1 = {72};
  z.dx0 = {-1};
  z.dx1 = {1};  // inverted: widening
  const auto cut = try_space_cut(z, 0, 1, 1 << 20);
  ASSERT_TRUE(cut.has_value());
  EXPECT_FALSE(cut->upright);
  // Labels 1,2,3 with I=0: gray (label 2) has bit 0 → processed first.
  EXPECT_EQ(cut->level_bit[0], 1);
  EXPECT_EQ(cut->level_bit[1], 0);
  EXPECT_EQ(cut->level_bit[2], 1);
}

}  // namespace
}  // namespace pochoir
