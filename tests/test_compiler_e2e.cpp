// End-to-end test of the Pochoir Guarantee: a Phase-1 program is translated
// by pochoirc, both are compiled with the host compiler, and both must
// print bit-identical results — in each loop-indexing mode.
#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>

namespace {

std::string read_file(const std::string& path) {
  std::ifstream in(path);
  std::ostringstream os;
  os << in.rdbuf();
  return os.str();
}

int run_cmd(const std::string& cmd) { return std::system(cmd.c_str()); }

class CompilerE2E : public ::testing::Test {
 protected:
  static std::string src_dir() { return POCHOIR_SOURCE_DIR; }
  static std::string pochoirc() { return POCHOIRC_BINARY; }
  static std::string work_dir() {
    static std::string dir = [] {
      std::string d = ::testing::TempDir() + "/pochoirc_e2e";
      run_cmd("mkdir -p " + d);
      return d;
    }();
    return dir;
  }

  static std::string compile_flags() {
    return "-std=c++20 -O0 -I" + src_dir() + "/src -I" + src_dir() +
           "/include " + src_dir() + "/src/runtime/scheduler.cpp -pthread";
  }

  /// Compiles `cpp` to `bin`; returns true on success.
  static bool compile(const std::string& cpp, const std::string& bin) {
    const std::string log = bin + ".log";
    const int rc = run_cmd("c++ " + compile_flags() + " " + cpp + " -o " + bin +
                           " 2> " + log);
    if (rc != 0) {
      ADD_FAILURE() << "compile failed for " << cpp << ":\n" << read_file(log);
    }
    return rc == 0;
  }

  static std::string run_to_string(const std::string& bin) {
    const std::string out = bin + ".out";
    EXPECT_EQ(run_cmd(bin + " > " + out), 0);
    return read_file(out);
  }
};

TEST_F(CompilerE2E, PhaseOneAndBothPhaseTwoModesAgree) {
  const std::string fixture = src_dir() + "/tests/fixtures/heat2d_periodic.cpp";
  const std::string dir = work_dir();

  // Phase 1: the untouched source against the template library.
  ASSERT_TRUE(compile(fixture, dir + "/phase1"));
  const std::string phase1 = run_to_string(dir + "/phase1");
  ASSERT_NE(phase1.find("checksum"), std::string::npos);

  // Phase 2, -split-macro-shadow.
  ASSERT_EQ(run_cmd(pochoirc() + " --split-macro-shadow -o " + dir +
                    "/post_macro.cpp " + fixture),
            0);
  ASSERT_TRUE(compile(dir + "/post_macro.cpp", dir + "/phase2_macro"));
  EXPECT_EQ(run_to_string(dir + "/phase2_macro"), phase1);

  // Phase 2, -split-pointer.
  ASSERT_EQ(run_cmd(pochoirc() + " --split-pointer -o " + dir +
                    "/post_split.cpp " + fixture),
            0);
  const std::string post = read_file(dir + "/post_split.cpp");
  EXPECT_NE(post.find("_pochoir_splitbase"), std::string::npos)
      << "split-pointer mode did not engage";
  ASSERT_TRUE(compile(dir + "/post_split.cpp", dir + "/phase2_split"));
  EXPECT_EQ(run_to_string(dir + "/phase2_split"), phase1);
}

}  // namespace
