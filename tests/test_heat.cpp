// Physics sanity tests for the heat kernels (beyond the bitwise algorithm
// equivalence already covered in test_trap_correctness).
#include <gtest/gtest.h>

#include <cmath>

#include "core/boundary.hpp"
#include "core/stencil.hpp"
#include "stencils/common.hpp"
#include "stencils/heat.hpp"

namespace pochoir {
namespace {

TEST(Heat, ConservationOnTorus) {
  // The periodic heat update is conservative: the grid sum is invariant.
  const std::int64_t n = 64;
  Array<double, 2> u({n, n}, 1);
  u.register_boundary(periodic_boundary<double, 2>());
  stencils::fill_random(u, 0, 0.0, 1.0, 7);
  const double before = stencils::checksum(u, 0);
  Stencil<2, double> st(stencils::heat_shape<2>());
  st.register_arrays(u);
  st.run(40, stencils::heat_kernel_2d({0.2, 0.2}));
  const double after = stencils::checksum(u, st.result_time());
  EXPECT_NEAR(after, before, 1e-7 * std::abs(before));
}

TEST(Heat, DiffusionSmoothsPeaks) {
  const std::int64_t n = 65;
  Array<double, 2> u({n, n}, 1);
  u.register_boundary(periodic_boundary<double, 2>());
  u.fill_time(0, [n](const std::array<std::int64_t, 2>& i) {
    return (i[0] == n / 2 && i[1] == n / 2) ? 1.0 : 0.0;
  });
  Stencil<2, double> st(stencils::heat_shape<2>());
  st.register_arrays(u);
  st.run(30, stencils::heat_kernel_2d({0.2, 0.2}));
  const std::int64_t rt = st.result_time();
  double max_val = 0;
  for (std::int64_t x = 0; x < n; ++x) {
    for (std::int64_t y = 0; y < n; ++y) {
      max_val = std::max(max_val, u.interior(rt, x, y));
      EXPECT_GE(u.interior(rt, x, y), 0.0);  // maximum principle
    }
  }
  EXPECT_LT(max_val, 0.1);
  EXPECT_GT(u.interior(rt, n / 2, n / 2), u.interior(rt, 0, 0));
}

TEST(Heat, ConvergesToDirichletEdgeValue) {
  const std::int64_t n = 17;
  Array<double, 1> u({n}, 1);
  u.register_boundary(dirichlet_boundary<double, 1>(1.0));
  u.fill_time(0, [](const std::array<std::int64_t, 1>&) { return 0.0; });
  Stencil<1, double> st(stencils::heat_shape<1>());
  st.register_arrays(u);
  st.run(2000, stencils::heat_kernel_1d({0.4}));
  for (std::int64_t x = 0; x < n; ++x) {
    EXPECT_NEAR(u.interior(st.result_time(), x), 1.0, 1e-6);
  }
}

TEST(Heat, NeumannPreservesUniformField) {
  const std::int64_t n = 24;
  Array<double, 2> u({n, n}, 1);
  u.register_boundary(neumann_boundary<double, 2>());
  u.fill_time(0, [](const std::array<std::int64_t, 2>&) { return 3.25; });
  Stencil<2, double> st(stencils::heat_shape<2>());
  st.register_arrays(u);
  st.run(25, stencils::heat_kernel_2d({0.2, 0.2}));
  for (std::int64_t x = 0; x < n; ++x) {
    for (std::int64_t y = 0; y < n; ++y) {
      EXPECT_DOUBLE_EQ(u.interior(st.result_time(), x, y), 3.25);
    }
  }
}

TEST(Heat, FourDStencilRuns) {
  Array<double, 4> u({8, 8, 8, 8}, 1);
  u.register_boundary(periodic_boundary<double, 4>());
  stencils::fill_random(u, 0, 0.0, 1.0, 3);
  const double before = stencils::checksum(u, 0);
  Stencil<4, double> st(stencils::heat_shape<4>());
  st.register_arrays(u);
  st.run(6, stencils::heat_kernel_4d({0.1, 0.1, 0.1, 0.1}));
  EXPECT_NEAR(stencils::checksum(u, st.result_time()), before, 1e-8 * before);
}

TEST(Heat, LinearTapsSumToOne) {
  // Conservation at the coefficient level: taps of the heat update sum to 1.
  const auto lin = stencils::heat_linear<3>({0.1, 0.15, 0.2});
  double total = 0;
  for (const auto& tap : lin.taps()) total += tap.coeff;
  EXPECT_NEAR(total, 1.0, 1e-15);
}

}  // namespace
}  // namespace pochoir
