// Tests for the resilient execution layer: slab checkpoint/restore
// round-trips across the Figure 3 kernels, corruption fallback,
// cooperative cancellation and deadlines, numerical health scans, fault
// injection, graceful degradation, and the crash-safe file writer.
#include <gtest/gtest.h>

#include <cstdio>
#include <cstring>
#include <filesystem>
#include <string>
#include <vector>

#include "core/boundary.hpp"
#include "core/stencil.hpp"
#include "resilience/checkpoint.hpp"
#include "runtime/parallel.hpp"
#include "stencils/apop.hpp"
#include "stencils/common.hpp"
#include "stencils/heat.hpp"
#include "stencils/lbm.hpp"
#include "stencils/lcs.hpp"
#include "stencils/life.hpp"
#include "stencils/psa.hpp"
#include "stencils/rna.hpp"
#include "stencils/wave.hpp"
#include "support/atomic_file.hpp"
#include "support/rng.hpp"

namespace pochoir {
namespace {

namespace fs = std::filesystem;
namespace rs = resilience;
using namespace stencils;

/// Fresh scratch directory for one test's checkpoint generations.
std::string scratch_dir(const std::string& name) {
  const std::string dir = ::testing::TempDir() + "pochoir_resilience_" + name;
  fs::remove_all(dir);
  fs::create_directories(dir);
  return dir;
}

template <typename T, int D>
bool storage_equal(const Array<T, D>& a, const Array<T, D>& b) {
  if (a.total_size() != b.total_size()) return false;
  return std::memcmp(a.data(), b.data(),
                     sizeof(T) * static_cast<std::size_t>(a.total_size())) == 0;
}

/// Checkpoint round-trip: run supervised with slabbing, crash (simulated)
/// after slab 1, resume from disk in a fresh stencil, and require the final
/// state to be bit-identical to an uninterrupted run.
template <int D, typename CellT, typename KernFactory, typename Init>
void round_trip_case(const std::string& name, Shape<D> shape,
                     std::array<std::int64_t, D> extents,
                     BoundaryFn<CellT, D> boundary, std::int64_t steps,
                     std::int64_t slab, KernFactory kern_factory, Init init) {
  const std::string base = scratch_dir("rt_" + name) + "/ck";

  // Reference: the same computation, uninterrupted.
  Array<CellT, D> ref(extents, shape.depth());
  ref.register_boundary(boundary);
  init(ref);
  Stencil<D, CellT> sref(shape);
  sref.register_arrays(ref);
  {
    auto kern = kern_factory();
    sref.run(steps, kern);
  }

  // Supervised run that "dies" after slab 1's checkpoint hits disk.
  Array<CellT, D> a(extents, shape.depth());
  a.register_boundary(boundary);
  init(a);
  Stencil<D, CellT> st(shape);
  st.register_arrays(a);
  rs::FaultPlan faults;
  faults.kill_after_slab = 1;
  rs::SupervisorOptions opts;
  opts.slab_steps = slab;
  opts.checkpoint_path = base;
  opts.faults = &faults;
  {
    auto kern = kern_factory();
    const rs::RunReport rep = st.run_supervised(steps, kern, opts);
    ASSERT_EQ(rep.status, rs::RunStatus::kSimulatedCrash) << rep.message;
    ASSERT_EQ(rep.steps_completed, 2 * slab);
    ASSERT_GE(rep.checkpoints_written, 2);
  }

  // "Process restart": fresh array (uninitialized) + fresh stencil; resume
  // restores the newest checkpoint and finishes the run.
  Array<CellT, D> b(extents, shape.depth());
  b.register_boundary(boundary);
  Stencil<D, CellT> st2(shape);
  st2.register_arrays(b);
  rs::SupervisorOptions ropts;
  ropts.slab_steps = slab;
  ropts.checkpoint_path = base;
  {
    auto kern = kern_factory();
    const rs::RunReport rep = st2.resume(kern, ropts);
    ASSERT_TRUE(rep.ok()) << rep.message;
    ASSERT_TRUE(rep.resumed);
    ASSERT_EQ(rep.steps_completed, steps - 2 * slab);
  }
  EXPECT_EQ(st2.steps_done(), steps);
  EXPECT_TRUE(storage_equal(b, ref)) << name << ": resumed state diverged";
}

TEST(ResilienceRoundTrip, Heat2) {
  round_trip_case<2, double>(
      "heat2", heat_shape<2>(), {24, 24}, dirichlet_boundary<double, 2>(0.0),
      12, 3, [] { return heat_kernel_2d({0.125, 0.125}); },
      [](Array<double, 2>& u) { fill_random(u, 0, 0.0, 1.0); });
}

TEST(ResilienceRoundTrip, Heat2Periodic) {
  round_trip_case<2, double>(
      "heat2p", heat_shape<2>(), {24, 24}, periodic_boundary<double, 2>(), 12,
      3, [] { return heat_kernel_2d({0.125, 0.125}); },
      [](Array<double, 2>& u) { fill_random(u, 0, 0.0, 1.0); });
}

TEST(ResilienceRoundTrip, Heat4) {
  round_trip_case<4, double>(
      "heat4", heat_shape<4>(), {6, 6, 6, 6},
      dirichlet_boundary<double, 4>(0.0), 8, 2,
      [] { return heat_kernel_4d({0.06, 0.06, 0.06, 0.06}); },
      [](Array<double, 4>& u) { fill_random(u, 0, 0.0, 1.0); });
}

TEST(ResilienceRoundTrip, Life2Periodic) {
  round_trip_case<2, LifeCell>(
      "life2p", life_shape(), {20, 20}, periodic_boundary<LifeCell, 2>(), 12,
      3, [] { return life_kernel(); },
      [](Array<LifeCell, 2>& u) {
        Rng rng(3);
        u.fill_time(0, [&](const std::array<std::int64_t, 2>&) {
          return static_cast<LifeCell>(rng.next_below(2));
        });
      });
}

TEST(ResilienceRoundTrip, Wave3) {
  round_trip_case<3, double>(
      "wave3", wave_shape(), {10, 10, 10}, dirichlet_boundary<double, 3>(0.0),
      8, 2, [] { return wave_kernel(0.1); },
      [](Array<double, 3>& u) {
        fill_random(u, 0, -0.1, 0.1);
        u.fill_time(1, [&](const std::array<std::int64_t, 3>& i) {
          return u.at(0, i);
        });
      });
}

TEST(ResilienceRoundTrip, Lbm3) {
  round_trip_case<3, LbmCell>(
      "lbm3", lbm_shape(), {8, 8, 10}, periodic_boundary<LbmCell, 3>(), 8, 2,
      [] { return lbm_kernel(0.7); },
      [](Array<LbmCell, 3>& u) { lbm_init(u, 0); });
}

TEST(ResilienceRoundTrip, Rna2) {
  const auto seq = random_sequence(24, 4, 17);
  round_trip_case<2, RnaCell>(
      "rna2", rna_shape(), {24, 24}, zero_boundary<RnaCell, 2>(), 16, 4,
      [seq] { return rna_kernel(seq); },
      [](Array<RnaCell, 2>& g) {
        g.fill_time(0, [](const auto&) { return 0; });
      });
}

TEST(ResilienceRoundTrip, Psa1) {
  const std::int64_t n = 24;
  const auto a_seq = random_sequence(n, 4, 21);
  const auto b_seq = random_sequence(n, 4, 22);
  const PsaCell border{psa_neg_inf, psa_neg_inf, psa_neg_inf};
  round_trip_case<1, PsaCell>(
      "psa1", psa_shape(), {n + 1}, dirichlet_boundary<PsaCell, 1>(border),
      2 * n - 1, 8, [a_seq, b_seq] { return psa_kernel(a_seq, b_seq); },
      [border](Array<PsaCell, 1>& g) {
        g.fill_time(0, [&](const std::array<std::int64_t, 1>& i) {
          return i[0] == 0 ? PsaCell{0, psa_neg_inf, psa_neg_inf} : border;
        });
        g.fill_time(1, [&](const std::array<std::int64_t, 1>& i) {
          if (i[0] == 0) return PsaCell{psa_neg_inf, psa_neg_inf, -3};
          if (i[0] == 1) return PsaCell{psa_neg_inf, -3, psa_neg_inf};
          return border;
        });
      });
}

TEST(ResilienceRoundTrip, Lcs1) {
  const std::int64_t n = 24;
  const auto a_seq = random_sequence(n, 4, 31);
  const auto b_seq = random_sequence(n, 4, 32);
  round_trip_case<1, LcsCell>(
      "lcs1", lcs_shape(), {n + 1}, zero_boundary<LcsCell, 1>(), 2 * n - 1, 8,
      [a_seq, b_seq] { return lcs_kernel(a_seq, b_seq); },
      [](Array<LcsCell, 1>& g) {
        g.fill_time(0, [](const auto&) { return 0; });
        g.fill_time(1, [](const auto&) { return 0; });
      });
}

TEST(ResilienceRoundTrip, Apop1) {
  ApopParams p;
  p.grid = 64;
  p.steps = 12;
  p.maturity = 0.9 /
               (p.sigma * p.sigma / (p.dxi() * p.dxi()) + p.rate) *
               static_cast<double>(p.steps);
  round_trip_case<1, double>(
      "apop1", apop_shape(), {p.grid},
      BoundaryFn<double, 1>([p](const Array<double, 1>&, std::int64_t,
                                const std::array<std::int64_t, 1>& idx)
                                -> double {
        return idx[0] < 0 ? p.payoff(idx[0]) : 0.0;
      }),
      p.steps, 3, [p] { return apop_kernel(p); },
      [p](Array<double, 1>& v) {
        v.fill_time(0, [&](const std::array<std::int64_t, 1>& i) {
          return p.payoff(i[0]);
        });
      });
}

// --- corruption fallback ---------------------------------------------------

struct CheckpointFixture {
  std::string base;
  Array<double, 2> ref{{20, 20}, 1};
  std::int64_t steps = 12;
  std::int64_t slab = 3;

  explicit CheckpointFixture(const std::string& name)
      : base(scratch_dir(name) + "/ck") {
    ref.register_boundary(periodic_boundary<double, 2>());
    fill_random(ref, 0, 0.0, 1.0);
    Stencil<2, double> sref(heat_shape<2>());
    sref.register_arrays(ref);
    auto kern = heat_kernel_2d({0.125, 0.125});
    sref.run(steps, kern);
  }

  /// Runs a crash-interrupted supervised run, leaving >= 2 generations.
  void populate(int keep_generations = 4) {
    Array<double, 2> a({20, 20}, 1);
    a.register_boundary(periodic_boundary<double, 2>());
    fill_random(a, 0, 0.0, 1.0);
    Stencil<2, double> st(heat_shape<2>());
    st.register_arrays(a);
    rs::FaultPlan faults;
    faults.kill_after_slab = 2;
    rs::SupervisorOptions opts;
    opts.slab_steps = slab;
    opts.checkpoint_path = base;
    opts.keep_generations = keep_generations;
    opts.faults = &faults;
    auto kern = heat_kernel_2d({0.125, 0.125});
    const rs::RunReport rep = st.run_supervised(steps, kern, opts);
    ASSERT_EQ(rep.status, rs::RunStatus::kSimulatedCrash) << rep.message;
    ASSERT_GE(rs::list_checkpoints(base).size(), 2u);
  }

  rs::RunReport resume_fresh(Array<double, 2>& b) {
    b.register_boundary(periodic_boundary<double, 2>());
    Stencil<2, double> st(heat_shape<2>());
    st.register_arrays(b);
    rs::SupervisorOptions opts;
    opts.slab_steps = slab;
    opts.checkpoint_path = base;
    auto kern = heat_kernel_2d({0.125, 0.125});
    return st.resume(kern, opts);
  }
};

void flip_byte(const std::string& path, std::int64_t offset_from_end) {
  std::FILE* f = std::fopen(path.c_str(), "r+b");
  ASSERT_NE(f, nullptr);
  std::fseek(f, static_cast<long>(-offset_from_end), SEEK_END);
  const int c = std::fgetc(f);
  std::fseek(f, static_cast<long>(-offset_from_end), SEEK_END);
  std::fputc(c ^ 0x5A, f);
  std::fclose(f);
}

TEST(ResilienceCheckpoint, CorruptedNewestFallsBackToOlderGeneration) {
  CheckpointFixture fx("corrupt_newest");
  fx.populate();
  const auto gens = rs::list_checkpoints(fx.base);
  flip_byte(gens.back().second, /*offset_from_end=*/64);  // payload byte
  ASSERT_FALSE(rs::load_checkpoint_file(gens.back().second).has_value());
  Array<double, 2> b({20, 20}, 1);
  const rs::RunReport rep = fx.resume_fresh(b);
  ASSERT_TRUE(rep.ok()) << rep.message;
  // Fallback re-ran from an older generation; final state still identical.
  EXPECT_TRUE(storage_equal(b, fx.ref));
}

TEST(ResilienceCheckpoint, TruncatedNewestFallsBack) {
  CheckpointFixture fx("truncate_newest");
  fx.populate();
  const auto gens = rs::list_checkpoints(fx.base);
  fs::resize_file(gens.back().second,
                  fs::file_size(gens.back().second) / 2);
  Array<double, 2> b({20, 20}, 1);
  const rs::RunReport rep = fx.resume_fresh(b);
  ASSERT_TRUE(rep.ok()) << rep.message;
  EXPECT_TRUE(storage_equal(b, fx.ref));
}

TEST(ResilienceCheckpoint, AllGenerationsCorruptReportsError) {
  CheckpointFixture fx("corrupt_all");
  fx.populate();
  for (const auto& [gen, path] : rs::list_checkpoints(fx.base)) {
    flip_byte(path, 16);
  }
  Array<double, 2> b({20, 20}, 1);
  const rs::RunReport rep = fx.resume_fresh(b);
  EXPECT_EQ(rep.status, rs::RunStatus::kCheckpointError);
  EXPECT_FALSE(rep.message.empty());
}

TEST(ResilienceCheckpoint, LayoutMismatchReportsError) {
  CheckpointFixture fx("layout_mismatch");
  fx.populate();
  // Same stencil, different grid: a valid snapshot that must not be
  // memcpy'd into mismatched storage.
  Array<double, 2> b({24, 24}, 1);
  b.register_boundary(periodic_boundary<double, 2>());
  Stencil<2, double> st(heat_shape<2>());
  st.register_arrays(b);
  rs::SupervisorOptions opts;
  opts.checkpoint_path = fx.base;
  auto kern = heat_kernel_2d({0.125, 0.125});
  const rs::RunReport rep = st.resume(kern, opts);
  EXPECT_EQ(rep.status, rs::RunStatus::kCheckpointError);
  EXPECT_NE(rep.message.find("mismatch"), std::string::npos) << rep.message;
}

TEST(ResilienceCheckpoint, OldGenerationsArePruned) {
  CheckpointFixture fx("prune");
  fx.populate(/*keep_generations=*/2);
  EXPECT_LE(rs::list_checkpoints(fx.base).size(), 2u);
}

// --- cancellation and deadlines --------------------------------------------

TEST(ResilienceCancel, MidSlabCancellationRollsBackToSlabBoundary) {
  Array<double, 2> ref({20, 20}, 1);
  ref.register_boundary(periodic_boundary<double, 2>());
  fill_random(ref, 0, 0.0, 1.0);
  Stencil<2, double> sref(heat_shape<2>());
  sref.register_arrays(ref);
  auto kern = heat_kernel_2d({0.125, 0.125});

  Array<double, 2> a({20, 20}, 1);
  a.register_boundary(periodic_boundary<double, 2>());
  fill_random(a, 0, 0.0, 1.0);
  Stencil<2, double> st(heat_shape<2>());
  st.register_arrays(a);
  rs::FaultPlan faults;
  faults.cancel_at_slab = 1;
  faults.cancel_after_calls = 50;
  rs::SupervisorOptions opts;
  opts.slab_steps = 3;
  opts.faults = &faults;
  const rs::RunReport rep = st.run_supervised(12, kern, opts);
  ASSERT_EQ(rep.status, rs::RunStatus::kCancelled) << rep.message;
  EXPECT_EQ(rep.steps_completed, 3);
  EXPECT_EQ(st.steps_done(), 3);

  // Consistency: arrays hold exactly the 3-step state...
  sref.run(3, kern);
  EXPECT_TRUE(storage_equal(a, ref));
  // ...and a follow-up supervised run finishes the job bit-identically.
  const rs::RunReport rep2 = st.run_supervised(9, kern, {});
  ASSERT_TRUE(rep2.ok()) << rep2.message;
  sref.run(9, kern);
  EXPECT_TRUE(storage_equal(a, ref));
}

TEST(ResilienceCancel, ExpiredDeadlineStopsAtSlabBoundary) {
  Array<double, 2> a({20, 20}, 1);
  a.register_boundary(periodic_boundary<double, 2>());
  fill_random(a, 0, 0.0, 1.0);
  Array<double, 2> before({20, 20}, 1);
  std::memcpy(before.data(), a.data(),
              sizeof(double) * static_cast<std::size_t>(a.total_size()));
  Stencil<2, double> st(heat_shape<2>());
  st.register_arrays(a);
  auto kern = heat_kernel_2d({0.125, 0.125});
  rs::SupervisorOptions opts;
  opts.slab_steps = 2;
  opts.deadline_ms = 0;  // already expired at the first boundary check
  const rs::RunReport rep = st.run_supervised(10, kern, opts);
  EXPECT_EQ(rep.status, rs::RunStatus::kDeadlineExceeded);
  EXPECT_EQ(rep.steps_completed, 0);
  EXPECT_TRUE(storage_equal(a, before));
  // The deadline was scoped to that call: a follow-up run completes.
  const rs::RunReport rep2 = st.run_supervised(10, kern, {});
  EXPECT_TRUE(rep2.ok()) << rep2.message;
  EXPECT_EQ(st.steps_done(), 10);
}

TEST(ResilienceCancel, DeadlineMidRunLeavesWholeSlabs) {
  Array<double, 2> a({48, 48}, 1);
  a.register_boundary(periodic_boundary<double, 2>());
  fill_random(a, 0, 0.0, 1.0);
  Stencil<2, double> st(heat_shape<2>());
  st.register_arrays(a);
  auto kern = heat_kernel_2d({0.125, 0.125});
  rs::SupervisorOptions opts;
  opts.slab_steps = 4;
  opts.deadline_ms = 30;
  const rs::RunReport rep = st.run_supervised(100000, kern, opts);
  // Whether the deadline fires mid-slab or at a boundary, only whole slabs
  // may remain.
  EXPECT_EQ(rep.status, rs::RunStatus::kDeadlineExceeded);
  EXPECT_EQ(rep.steps_completed % 4, 0);
  EXPECT_EQ(st.steps_done(), rep.steps_completed);
}

TEST(ResilienceCancel, ExternalTokenObservedByPlainRun) {
  Array<double, 2> a({24, 24}, 1);
  a.register_boundary(periodic_boundary<double, 2>());
  fill_random(a, 0, 0.0, 1.0);
  Stencil<2, double> st(heat_shape<2>());
  st.register_arrays(a);
  CancelToken token;
  token.cancel();
  st.set_cancel_token(&token);
  auto kern = heat_kernel_2d({0.125, 0.125});
  // The walkers decline all work; the raw run() API still advances the
  // step counter (consistency under cancellation is run_supervised's job).
  st.run(5, kern);
  st.set_cancel_token(nullptr);
  EXPECT_EQ(st.steps_done(), 5);
}

// --- health monitoring ------------------------------------------------------

TEST(ResilienceHealth, InjectedNaNRollsBackAndReports) {
  Array<double, 2> ref({20, 20}, 1);
  ref.register_boundary(periodic_boundary<double, 2>());
  fill_random(ref, 0, 0.0, 1.0);
  Stencil<2, double> sref(heat_shape<2>());
  sref.register_arrays(ref);
  auto kern = heat_kernel_2d({0.125, 0.125});
  sref.run(3, kern);

  Array<double, 2> a({20, 20}, 1);
  a.register_boundary(periodic_boundary<double, 2>());
  fill_random(a, 0, 0.0, 1.0);
  Stencil<2, double> st(heat_shape<2>());
  st.register_arrays(a);
  rs::FaultPlan faults;
  faults.poison_after_slab = 1;
  faults.poison_flat_index = 37;
  rs::SupervisorOptions opts;
  opts.slab_steps = 3;
  opts.health_check = true;
  opts.faults = &faults;
  const rs::RunReport rep = st.run_supervised(12, kern, opts);
  ASSERT_EQ(rep.status, rs::RunStatus::kNumericalError) << rep.message;
  EXPECT_NE(rep.message.find("non-finite"), std::string::npos) << rep.message;
  // Rolled back to the last healthy boundary: slab 0's 3-step state, with
  // the planted NaN gone.
  EXPECT_EQ(rep.steps_completed, 3);
  EXPECT_TRUE(storage_equal(a, ref));
}

TEST(ResilienceHealth, DivergenceLimitCatchesBlowup) {
  Array<double, 1> a({16}, 1);
  a.register_boundary(periodic_boundary<double, 1>());
  a.fill_time(0, [](const auto&) { return 1.0; });
  Shape<1> s = {{1, 0}, {0, 0}, {0, 1}, {0, -1}};
  Stencil<1, double> st(s);
  st.register_arrays(a);
  // Unstable update: values triple every step.
  auto kern = [](std::int64_t t, std::int64_t x, auto u) {
    u(t + 1, x) = u(t, x - 1) + u(t, x) + u(t, x + 1);
  };
  rs::SupervisorOptions opts;
  opts.slab_steps = 2;
  opts.health_check = true;
  opts.divergence_limit = 100.0;
  const rs::RunReport rep = st.run_supervised(20, kern, opts);
  ASSERT_EQ(rep.status, rs::RunStatus::kNumericalError);
  EXPECT_NE(rep.message.find("diverged"), std::string::npos) << rep.message;
  EXPECT_LT(rep.steps_completed, 20);
}

// --- task failure and graceful degradation ----------------------------------

TEST(ResilienceDegrade, TaskFailureRetriesOnSerialEngine) {
  Array<double, 2> ref({20, 20}, 1);
  ref.register_boundary(periodic_boundary<double, 2>());
  fill_random(ref, 0, 0.0, 1.0);
  Stencil<2, double> sref(heat_shape<2>());
  sref.register_arrays(ref);
  auto kern = heat_kernel_2d({0.125, 0.125});
  sref.run(12, kern);

  Array<double, 2> a({20, 20}, 1);
  a.register_boundary(periodic_boundary<double, 2>());
  fill_random(a, 0, 0.0, 1.0);
  Stencil<2, double> st(heat_shape<2>());
  st.register_arrays(a);
  rs::FaultPlan faults;
  faults.fail_task_at_slab = 1;
  rs::SupervisorOptions opts;
  opts.slab_steps = 3;
  opts.faults = &faults;
  const rs::RunReport rep = st.run_supervised(12, kern, opts);
  ASSERT_TRUE(rep.ok()) << rep.message;
  EXPECT_TRUE(rep.degraded);
  EXPECT_EQ(rep.serial_retries, 1);
  EXPECT_EQ(rep.steps_completed, 12);
  EXPECT_TRUE(storage_equal(a, ref));
}

TEST(ResilienceDegrade, TaskFailureWithoutFallbackReportsAndRollsBack) {
  Array<double, 2> a({20, 20}, 1);
  a.register_boundary(periodic_boundary<double, 2>());
  fill_random(a, 0, 0.0, 1.0);
  Stencil<2, double> st(heat_shape<2>());
  st.register_arrays(a);
  auto kern = heat_kernel_2d({0.125, 0.125});
  rs::FaultPlan faults;
  faults.fail_task_at_slab = 1;
  rs::SupervisorOptions opts;
  opts.slab_steps = 3;
  opts.degrade_to_serial = false;
  opts.faults = &faults;
  const rs::RunReport rep = st.run_supervised(12, kern, opts);
  EXPECT_EQ(rep.status, rs::RunStatus::kTaskFailure);
  EXPECT_FALSE(rep.degraded);
  EXPECT_EQ(rep.steps_completed, 3);
  EXPECT_EQ(st.steps_done(), 3);
}

// --- checkpoint IO fault injection ------------------------------------------

TEST(ResilienceIo, TransientCheckpointFailureIsRetried) {
  const std::string base = scratch_dir("io_retry") + "/ck";
  Array<double, 2> a({16, 16}, 1);
  a.register_boundary(periodic_boundary<double, 2>());
  fill_random(a, 0, 0.0, 1.0);
  Stencil<2, double> st(heat_shape<2>());
  st.register_arrays(a);
  auto kern = heat_kernel_2d({0.125, 0.125});
  rs::FaultPlan faults;
  faults.checkpoint_io_failures = 1;  // first attempt fails, retry lands
  rs::SupervisorOptions opts;
  opts.slab_steps = 3;
  opts.checkpoint_path = base;
  opts.io_retry_backoff_ms = 1;
  opts.faults = &faults;
  const rs::RunReport rep = st.run_supervised(6, kern, opts);
  ASSERT_TRUE(rep.ok()) << rep.message;
  EXPECT_EQ(rep.checkpoint_io_failures, 1);
  EXPECT_EQ(rep.checkpoints_written, 2);
}

TEST(ResilienceIo, PersistentCheckpointFailureDoesNotStopComputation) {
  const std::string base = scratch_dir("io_persistent") + "/ck";
  Array<double, 2> a({16, 16}, 1);
  a.register_boundary(periodic_boundary<double, 2>());
  fill_random(a, 0, 0.0, 1.0);
  Stencil<2, double> st(heat_shape<2>());
  st.register_arrays(a);
  auto kern = heat_kernel_2d({0.125, 0.125});
  rs::FaultPlan faults;
  faults.checkpoint_io_failures = 1000;  // exceeds every retry budget
  rs::SupervisorOptions opts;
  opts.slab_steps = 3;
  opts.checkpoint_path = base;
  opts.io_retries = 2;
  opts.io_retry_backoff_ms = 1;
  opts.faults = &faults;
  const rs::RunReport rep = st.run_supervised(6, kern, opts);
  EXPECT_TRUE(rep.ok()) << rep.message;  // durability degraded, results not
  EXPECT_EQ(rep.checkpoints_written, 0);
  EXPECT_GT(rep.checkpoint_io_failures, 0);
  EXPECT_NE(rep.message.find("checkpoint write failed"), std::string::npos);
  EXPECT_EQ(st.steps_done(), 6);
}

// --- supervised default path -----------------------------------------------

TEST(ResilienceSupervised, DefaultOptionsMatchPlainRun) {
  Array<double, 2> ref({24, 24}, 1);
  ref.register_boundary(periodic_boundary<double, 2>());
  fill_random(ref, 0, 0.0, 1.0);
  Stencil<2, double> sref(heat_shape<2>());
  sref.register_arrays(ref);
  auto kern = heat_kernel_2d({0.125, 0.125});
  sref.run(10, kern);

  Array<double, 2> a({24, 24}, 1);
  a.register_boundary(periodic_boundary<double, 2>());
  fill_random(a, 0, 0.0, 1.0);
  Stencil<2, double> st(heat_shape<2>());
  st.register_arrays(a);
  const rs::RunReport rep = st.run_supervised(10, kern);
  ASSERT_TRUE(rep.ok());
  EXPECT_EQ(rep.steps_completed, 10);
  EXPECT_TRUE(storage_equal(a, ref));
}

TEST(ResilienceSupervised, UsageErrorsThrow) {
  Stencil<2, double> st(heat_shape<2>());
  auto kern = heat_kernel_2d({0.125, 0.125});
  EXPECT_THROW(st.run_supervised(5, kern), Error);  // not registered
  Array<double, 2> a({8, 8}, 1);
  a.register_boundary(periodic_boundary<double, 2>());
  st.register_arrays(a);
  EXPECT_THROW(st.run_supervised(0, kern), Error);
  rs::SupervisorOptions opts;  // no checkpoint_path
  EXPECT_THROW(st.resume(kern, opts), Error);
}

TEST(ResilienceSupervised, ResumeWithNoCheckpointsReportsError) {
  const std::string base = scratch_dir("resume_empty") + "/ck";
  Array<double, 2> a({8, 8}, 1);
  a.register_boundary(periodic_boundary<double, 2>());
  Stencil<2, double> st(heat_shape<2>());
  st.register_arrays(a);
  auto kern = heat_kernel_2d({0.125, 0.125});
  rs::SupervisorOptions opts;
  opts.checkpoint_path = base;
  const rs::RunReport rep = st.resume(kern, opts);
  EXPECT_EQ(rep.status, rs::RunStatus::kCheckpointError);
}

// --- crash-safe writer -------------------------------------------------------

TEST(AtomicFile, WriteReplacesAtomicallyAndPreservesOriginalOnFailure) {
  const std::string dir = scratch_dir("atomic_file");
  const std::string path = dir + "/out.txt";
  auto rep1 = io::atomic_write_file(path, [](std::FILE* f) {
    return std::fputs("first", f) >= 0;
  });
  ASSERT_TRUE(rep1.ok);
  ASSERT_EQ(rep1.attempts, 1);
  // A writer that fails on every attempt must leave the original intact.
  auto rep2 = io::atomic_write_file(
      path, [](std::FILE*) { return false; }, /*retries=*/2, /*backoff_ms=*/1);
  EXPECT_FALSE(rep2.ok);
  EXPECT_EQ(rep2.attempts, 3);
  std::FILE* f = std::fopen(path.c_str(), "rb");
  ASSERT_NE(f, nullptr);
  char buf[16] = {};
  const std::size_t n = std::fread(buf, 1, sizeof buf - 1, f);
  std::fclose(f);
  EXPECT_EQ(std::string(buf, n), "first");
  EXPECT_FALSE(fs::exists(path + ".tmp"));
}

TEST(AtomicFile, FailHookConsumesOneAttemptThenSucceeds) {
  const std::string dir = scratch_dir("atomic_hook");
  const std::string path = dir + "/out.txt";
  int budget = 1;
  auto rep = io::atomic_write_file(
      path, [](std::FILE* f) { return std::fputs("payload", f) >= 0; },
      /*retries=*/3, /*backoff_ms=*/1, [&budget] { return budget-- > 0; });
  EXPECT_TRUE(rep.ok);
  EXPECT_EQ(rep.attempts, 2);
}

// --- scheduler abort propagation --------------------------------------------

TEST(SchedulerResilience, ExceptionInSpawnedTaskPropagatesFromWait) {
  EXPECT_THROW(
      rt::parallel_invoke([] {},
                          [] { throw Error("task boom"); }),
      Error);
  EXPECT_THROW(rt::parallel_for(0, 1024, 8,
                                [](std::int64_t i) {
                                  if (i == 777) throw Error("loop boom");
                                }),
               Error);
}

}  // namespace
}  // namespace pochoir
