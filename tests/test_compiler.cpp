// Unit tests for the pochoirc translator: lexer, construct parser, and
// postsource generation in both loop-indexing modes (§4).
#include <gtest/gtest.h>

#include "compiler/driver.hpp"
#include "compiler/lexer.hpp"
#include "compiler/parser.hpp"

namespace pochoir::psc {
namespace {

const char* kHeatSource = R"(#include <pochoir/dsl.hpp>
#define mod(r, m) ((r) % (m) + ((r) % (m) < 0 ? (m) : 0))
Pochoir_Boundary_2D(heat_bv, a, t, x, y)
  return a.get(t, mod(x, a.size(1)), mod(y, a.size(0)));
Pochoir_Boundary_End
int main() {
  const int X = 100, Y = 80, T = 40;
  const double CX = 0.1, CY = 0.1;
  Pochoir_Shape_2D twod_five_pt[] = {{1,0,0}, {0,0,0}, {0,1,0}, {0,-1,0}, {0,0,-1}, {0,0,1}};
  Pochoir_2D heat(twod_five_pt);
  Pochoir_Array_2D(double) u(X, Y);
  u.Register_Boundary(heat_bv);
  heat.Register_Array(u);
  Pochoir_Kernel_2D(heat_fn, t, x, y)
    u(t+1, x, y) = CX * (u(t, x+1, y) - 2 * u(t, x, y) + u(t, x-1, y))
                 + CY * (u(t, x, y+1) - 2 * u(t, x, y) + u(t, x, y-1))
                 + u(t, x, y);
  Pochoir_Kernel_End
  heat.Run(T, heat_fn);
  return 0;
}
)";

TEST(Lexer, TokensRoundTripVerbatim) {
  const std::string src = kHeatSource;
  const TokenStream toks = lex(src);
  EXPECT_EQ(splice(toks, 0, toks.size()), src);
}

TEST(Lexer, RecognizesKinds) {
  const TokenStream toks = lex("int x = 42; // hi\n\"str\" 3.5e-2 a->b");
  bool saw_comment = false, saw_string = false, saw_float = false,
       saw_arrow = false;
  for (const auto& t : toks) {
    saw_comment |= t.kind == TokenKind::kComment && t.text == "// hi";
    saw_string |= t.kind == TokenKind::kString && t.text == "\"str\"";
    saw_float |= t.kind == TokenKind::kNumber && t.text == "3.5e-2";
    saw_arrow |= t.kind == TokenKind::kPunct && t.text == "->";
  }
  EXPECT_TRUE(saw_comment);
  EXPECT_TRUE(saw_string);
  EXPECT_TRUE(saw_float);
  EXPECT_TRUE(saw_arrow);
}

TEST(Lexer, DirectivesAreWholeLines) {
  const TokenStream toks = lex("#define F(x) \\\n  ((x)+1)\nint y;");
  ASSERT_GE(toks.size(), 2u);
  EXPECT_EQ(toks[0].kind, TokenKind::kDirective);
  EXPECT_NE(toks[0].text.find("((x)+1)"), std::string::npos);
}

TEST(Parser, ExtractsAllConstructs) {
  const TokenStream toks = lex(kHeatSource);
  const ParsedSource parsed = parse(toks);
  ASSERT_EQ(parsed.shapes.size(), 1u);
  EXPECT_EQ(parsed.shapes[0].name, "twod_five_pt");
  EXPECT_EQ(parsed.shapes[0].dim, 2);
  EXPECT_EQ(parsed.shapes[0].cells.size(), 6u);
  EXPECT_EQ(parsed.shapes[0].depth(), 1);
  EXPECT_EQ(parsed.shapes[0].home_dt(), 1);

  ASSERT_EQ(parsed.arrays.size(), 1u);
  EXPECT_EQ(parsed.arrays[0].name, "u");
  EXPECT_EQ(parsed.arrays[0].type, "double");
  ASSERT_EQ(parsed.arrays[0].sizes.size(), 2u);
  EXPECT_EQ(parsed.arrays[0].sizes[0], "X");
  EXPECT_EQ(parsed.arrays[0].sizes[1], "Y");

  ASSERT_EQ(parsed.objects.size(), 1u);
  EXPECT_EQ(parsed.objects[0].name, "heat");
  EXPECT_EQ(parsed.objects[0].shape_name, "twod_five_pt");

  ASSERT_EQ(parsed.boundaries.size(), 1u);
  EXPECT_EQ(parsed.boundaries[0].name, "heat_bv");
  EXPECT_EQ(parsed.boundaries[0].array_param, "a");

  ASSERT_EQ(parsed.kernels.size(), 1u);
  EXPECT_EQ(parsed.kernels[0].name, "heat_fn");
  EXPECT_TRUE(parsed.kernels[0].analyzable);
  EXPECT_EQ(parsed.kernels[0].accesses.size(), 8u);
  int writes = 0;
  for (const auto& a : parsed.kernels[0].accesses) writes += a.is_write ? 1 : 0;
  EXPECT_EQ(writes, 1);

  ASSERT_EQ(parsed.register_arrays.size(), 1u);
  ASSERT_EQ(parsed.register_boundaries.size(), 1u);
  ASSERT_EQ(parsed.runs.size(), 1u);
  EXPECT_EQ(parsed.runs[0].steps_expr, "T");
  EXPECT_EQ(parsed.runs[0].kernel, "heat_fn");
}

TEST(Parser, AccessOffsetsAreAffine) {
  const TokenStream toks = lex(kHeatSource);
  const ParsedSource parsed = parse(toks);
  const KernelDecl& k = parsed.kernels[0];
  bool found_write = false;
  for (const auto& a : k.accesses) {
    ASSERT_EQ(a.offsets.size(), 3u);
    if (a.is_write) {
      found_write = true;
      EXPECT_EQ(a.offsets[0], 1);
      EXPECT_EQ(a.offsets[1], 0);
      EXPECT_EQ(a.offsets[2], 0);
    }
  }
  EXPECT_TRUE(found_write);
}

TEST(Parser, ComplexKernelIsNotAnalyzable) {
  const std::string src = R"(
    Pochoir_Array_1D(double) a(100);
    Pochoir_Kernel_1D(f, t, i)
      a(t+1, i) = helper(a, t, i);
    Pochoir_Kernel_End
  )";
  const auto parsed = parse(lex(src));
  ASSERT_EQ(parsed.kernels.size(), 1u);
  EXPECT_FALSE(parsed.kernels[0].analyzable);  // `a` passed to a function
}

TEST(Parser, NonAffineIndexIsNotAnalyzable) {
  const std::string src = R"(
    Pochoir_Array_1D(double) a(100);
    Pochoir_Kernel_1D(f, t, i)
      a(t+1, i) = a(t, 2*i);
    Pochoir_Kernel_End
  )";
  const auto parsed = parse(lex(src));
  ASSERT_EQ(parsed.kernels.size(), 1u);
  EXPECT_FALSE(parsed.kernels[0].analyzable);
}

TEST(Parser, ArrayDeclWithExplicitDepth) {
  const auto parsed = parse(lex("Pochoir_Array_3D(float, 2) w(4, 5, 6);"));
  ASSERT_EQ(parsed.arrays.size(), 1u);
  EXPECT_EQ(parsed.arrays[0].type, "float");
  ASSERT_TRUE(parsed.arrays[0].depth.has_value());
  EXPECT_EQ(*parsed.arrays[0].depth, 2);
}

TEST(Codegen, MacroShadowMode) {
  const auto result =
      translate(kHeatSource, IndexMode::kSplitMacroShadow);
  const std::string& post = result.postsource;
  EXPECT_NE(post.find("pochoir::Shape<2> twod_five_pt"), std::string::npos);
  EXPECT_NE(post.find("pochoir::Array<double, 2> u({X, Y}, 1);"),
            std::string::npos);
  EXPECT_NE(post.find("pochoir::Stencil<2, double> heat(twod_five_pt);"),
            std::string::npos);
  EXPECT_NE(post.find("#define u(...) u.interior(__VA_ARGS__)"),
            std::string::npos);
  EXPECT_NE(post.find("heat.run_cloned(T, heat_fn_pochoir_interior, "
                      "heat_fn_pochoir_boundary);"),
            std::string::npos);
  EXPECT_TRUE(result.split_pointer_kernels.empty());
}

TEST(Codegen, SplitPointerMode) {
  const auto result = translate(kHeatSource, IndexMode::kSplitPointer);
  const std::string& post = result.postsource;
  EXPECT_NE(post.find("heat_fn_pochoir_splitbase"), std::string::npos);
  EXPECT_NE(post.find("(*_pp"), std::string::npos);
  EXPECT_NE(post.find("heat.run_split(T, heat_fn_pochoir_splitbase, "
                      "heat_fn_pochoir_boundary);"),
            std::string::npos);
  ASSERT_EQ(result.split_pointer_kernels.size(), 1u);
  EXPECT_EQ(result.split_pointer_kernels[0], "heat_fn");
}

TEST(Codegen, AutoPrefersSplitPointer) {
  const auto result = translate(kHeatSource, IndexMode::kAuto);
  EXPECT_EQ(result.split_pointer_kernels.size(), 1u);
}

TEST(Codegen, ForcedSplitPointerFallsBackWithDiagnostic) {
  const std::string src = R"(
    Pochoir_Array_1D(double) a(100);
    Pochoir_Kernel_1D(f, t, i)
      a(t+1, i) = a(t, 2*i);
    Pochoir_Kernel_End
    int main() { return 0; }
  )";
  const auto result = translate(src, IndexMode::kSplitPointer);
  EXPECT_NE(result.postsource.find("f_pochoir_interior"), std::string::npos);
  bool warned = false;
  for (const auto& d : result.diagnostics) {
    warned |= d.find("too complex for -split-pointer") != std::string::npos;
  }
  EXPECT_TRUE(warned);
}

TEST(Codegen, BoundaryBecomesGenericLambda) {
  const auto result = translate(kHeatSource, IndexMode::kAuto);
  EXPECT_NE(result.postsource.find("const auto heat_bv = [](const auto& a"),
            std::string::npos);
}

TEST(Codegen, UninterpretedTextSurvivesVerbatim) {
  const auto result = translate(kHeatSource, IndexMode::kAuto);
  // User code outside constructs must pass through untouched.
  EXPECT_NE(result.postsource.find("const int X = 100, Y = 80, T = 40;"),
            std::string::npos);
  EXPECT_NE(result.postsource.find("#define mod(r, m)"), std::string::npos);
}

TEST(Codegen, PrologueIncludesLibrary) {
  const auto result = translate("int main(){return 0;}", IndexMode::kAuto);
  EXPECT_EQ(result.postsource.find("// Postsource generated by pochoirc"), 0u);
  EXPECT_NE(result.postsource.find("#include <pochoir/pochoir.hpp>"),
            std::string::npos);
}

}  // namespace
}  // namespace pochoir::psc
