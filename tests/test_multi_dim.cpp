// Dimensional coverage: the walker must be correct in 1D, 3D and 4D, and
// for depth-2 stencils (wave) — TRAP vs the serial loop baseline, bitwise.
#include <gtest/gtest.h>

#include <cstring>

#include "core/boundary.hpp"
#include "core/stencil.hpp"
#include "stencils/heat.hpp"
#include "stencils/wave.hpp"

namespace pochoir {
namespace {

template <int D, typename Kernel>
void expect_trap_equals_loops(const Shape<D>& shape,
                              std::array<std::int64_t, D> extents,
                              std::int64_t steps, const Kernel& kern,
                              BoundaryFn<double, D> boundary,
                              Options<D> opts) {
  auto init = [](const std::array<std::int64_t, D>& i) {
    double v = 0.37;
    for (int d = 0; d < D; ++d) {
      v += 0.01 * static_cast<double>((d + 2) * i[static_cast<std::size_t>(d)] % 17);
    }
    return v;
  };
  Array<double, D> u1(extents, shape.depth());
  Array<double, D> u2(extents, shape.depth());
  u1.register_boundary(boundary);
  u2.register_boundary(boundary);
  for (std::int64_t lvl = 0; lvl < shape.depth(); ++lvl) {
    u1.fill_time(lvl, init);
    u2.fill_time(lvl, init);
  }
  Stencil<D, double> s1(shape, opts);
  s1.register_arrays(u1);
  s1.run(steps, kern);
  Stencil<D, double> s2(shape, opts);
  s2.register_arrays(u2);
  s2.run(Algorithm::kLoopsSerial, steps, kern);
  ASSERT_EQ(s1.result_time(), s2.result_time());
  const std::int64_t rt = s1.result_time();
  std::array<std::int64_t, D> idx{};
  while (true) {
    const double a = u1.at(rt, idx);
    const double b = u2.at(rt, idx);
    ASSERT_EQ(std::memcmp(&a, &b, sizeof(double)), 0);
    int i = D - 1;
    for (; i >= 0; --i) {
      if (++idx[static_cast<std::size_t>(i)] < extents[static_cast<std::size_t>(i)]) break;
      idx[static_cast<std::size_t>(i)] = 0;
    }
    if (i < 0) break;
  }
}

TEST(MultiDim, Heat1DPeriodic) {
  Options<1> opts;
  opts.dt_threshold = 4;
  opts.dx_threshold = {16};
  expect_trap_equals_loops<1>(stencils::heat_shape<1>(), {257}, 64,
                              stencils::heat_kernel_1d({0.3}),
                              periodic_boundary<double, 1>(), opts);
}

TEST(MultiDim, Heat1DDirichletUncoarsened) {
  expect_trap_equals_loops<1>(stencils::heat_shape<1>(), {64}, 40,
                              stencils::heat_kernel_1d({0.3}),
                              dirichlet_boundary<double, 1>(0.5),
                              Options<1>::uncoarsened());
}

TEST(MultiDim, Heat3DPeriodic) {
  Options<3> opts;
  opts.dt_threshold = 2;
  opts.dx_threshold = {4, 4, 4};
  expect_trap_equals_loops<3>(stencils::heat_shape<3>(), {20, 18, 22}, 13,
                              stencils::heat_kernel_3d({0.1, 0.11, 0.12}),
                              periodic_boundary<double, 3>(), opts);
}

TEST(MultiDim, Heat3DUnitStrideProtected) {
  // The paper's >=3D heuristic: never cut the unit-stride dimension.
  Options<3> opts;
  opts.dt_threshold = 3;
  opts.dx_threshold = {3, 3, Options<3>::kNeverCut};
  expect_trap_equals_loops<3>(stencils::heat_shape<3>(), {24, 16, 32}, 10,
                              stencils::heat_kernel_3d({0.1, 0.11, 0.12}),
                              neumann_boundary<double, 3>(), opts);
}

TEST(MultiDim, Heat4DPeriodic) {
  Options<4> opts;
  opts.dt_threshold = 2;
  opts.dx_threshold = {3, 3, 3, 8};
  expect_trap_equals_loops<4>(
      stencils::heat_shape<4>(), {10, 9, 8, 12}, 9,
      stencils::heat_kernel_4d({0.05, 0.06, 0.07, 0.08}),
      periodic_boundary<double, 4>(), opts);
}

TEST(MultiDim, Wave3DDepthTwo) {
  Options<3> opts;
  opts.dt_threshold = 2;
  opts.dx_threshold = {4, 4, 8};
  expect_trap_equals_loops<3>(stencils::wave_shape(), {18, 16, 20}, 12,
                              stencils::wave_kernel(0.05),
                              dirichlet_boundary<double, 3>(0.0), opts);
}

TEST(MultiDim, Wave3DPeriodicStrapAgainstLoops) {
  const auto shape = stencils::wave_shape();
  std::array<std::int64_t, 3> ext = {16, 14, 12};
  auto init = [](const std::array<std::int64_t, 3>& i) {
    return 0.01 * static_cast<double>((i[0] * 5 + i[1] * 3 + i[2]) % 29);
  };
  Array<double, 3> u1(ext, shape.depth());
  Array<double, 3> u2(ext, shape.depth());
  for (auto* u : {&u1, &u2}) {
    u->register_boundary(periodic_boundary<double, 3>());
    u->fill_time(0, init);
    u->fill_time(1, init);
  }
  Options<3> opts;
  opts.dt_threshold = 1;
  opts.dx_threshold = {2, 2, 2};
  const auto kern = stencils::wave_kernel(0.04);
  Stencil<3, double> s1(shape, opts);
  s1.register_arrays(u1);
  s1.run(Algorithm::kStrap, 10, kern);
  Stencil<3, double> s2(shape, opts);
  s2.register_arrays(u2);
  s2.run(Algorithm::kLoopsSerial, 10, kern);
  for (std::int64_t x = 0; x < ext[0]; ++x) {
    for (std::int64_t y = 0; y < ext[1]; ++y) {
      for (std::int64_t z = 0; z < ext[2]; ++z) {
        ASSERT_EQ(u1.interior(s1.result_time(), x, y, z),
                  u2.interior(s2.result_time(), x, y, z));
      }
    }
  }
}

}  // namespace
}  // namespace pochoir
