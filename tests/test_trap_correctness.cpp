// End-to-end correctness: TRAP, STRAP and the loop baselines must produce
// results bit-identical to a brute-force double-buffer reference, for every
// boundary condition and coarsening choice.  (Each grid point is written
// once per step from strictly older values, so results are schedule-
// independent and the comparison is exact, not approximate.)
#include <gtest/gtest.h>

#include <cstring>
#include <tuple>
#include <vector>

#include "core/boundary.hpp"
#include "core/stencil.hpp"
#include "stencils/heat.hpp"
#include "support/math_util.hpp"

namespace pochoir {
namespace {

enum class Bc { kPeriodic, kDirichlet, kNeumann, kCylinder };

constexpr double kCx = 0.12;
constexpr double kCy = 0.11;
constexpr double kEdge = 1.5;  // Dirichlet edge value

double init_value(std::int64_t x, std::int64_t y) {
  return 0.001 * static_cast<double>(x * 37 + (y * 17) % 101) - 0.3;
}

/// Brute-force reference for the 2D heat equation under each boundary.
std::vector<double> reference(Bc bc, std::int64_t n, std::int64_t steps) {
  std::vector<double> cur(static_cast<std::size_t>(n * n));
  std::vector<double> next(cur.size());
  for (std::int64_t x = 0; x < n; ++x) {
    for (std::int64_t y = 0; y < n; ++y) {
      cur[static_cast<std::size_t>(x * n + y)] = init_value(x, y);
    }
  }
  auto fetch = [&](std::int64_t x, std::int64_t y) -> double {
    const bool in = x >= 0 && x < n && y >= 0 && y < n;
    if (in) return cur[static_cast<std::size_t>(x * n + y)];
    switch (bc) {
      case Bc::kPeriodic:
        return cur[static_cast<std::size_t>(mod_floor(x, n) * n + mod_floor(y, n))];
      case Bc::kDirichlet:
        return kEdge;
      case Bc::kNeumann: {
        const std::int64_t cx = std::clamp<std::int64_t>(x, 0, n - 1);
        const std::int64_t cy = std::clamp<std::int64_t>(y, 0, n - 1);
        return cur[static_cast<std::size_t>(cx * n + cy)];
      }
      case Bc::kCylinder: {
        if (y < 0 || y >= n) return kEdge;  // Dirichlet in y
        return cur[static_cast<std::size_t>(mod_floor(x, n) * n + y)];
      }
    }
    return 0;
  };
  for (std::int64_t t = 0; t < steps; ++t) {
    for (std::int64_t x = 0; x < n; ++x) {
      for (std::int64_t y = 0; y < n; ++y) {
        const double c = cur[static_cast<std::size_t>(x * n + y)];
        next[static_cast<std::size_t>(x * n + y)] =
            c + kCx * (fetch(x + 1, y) - 2 * c + fetch(x - 1, y)) +
            kCy * (fetch(x, y + 1) - 2 * c + fetch(x, y - 1));
      }
    }
    std::swap(cur, next);
  }
  return cur;
}

BoundaryFn<double, 2> boundary_for(Bc bc) {
  switch (bc) {
    case Bc::kPeriodic:
      return periodic_boundary<double, 2>();
    case Bc::kDirichlet:
      return dirichlet_boundary<double, 2>(kEdge);
    case Bc::kNeumann:
      return neumann_boundary<double, 2>();
    case Bc::kCylinder:
      return mixed_boundary<double, 2>(
          {BoundaryKind::kPeriodic, BoundaryKind::kDirichlet}, kEdge);
  }
  return nullptr;
}

struct Case {
  Bc bc;
  Algorithm alg;
  bool parallel;
  std::int64_t n;
  std::int64_t steps;
  std::int64_t dt_thresh;
  std::int64_t dx_thresh;
};

class HeatCorrectness : public ::testing::TestWithParam<Case> {};

TEST_P(HeatCorrectness, MatchesReferenceBitwise) {
  const Case& c = GetParam();
  Options<2> opts;
  opts.dt_threshold = c.dt_thresh;
  opts.dx_threshold = {c.dx_thresh, c.dx_thresh};

  Array<double, 2> u({c.n, c.n}, 1);
  u.register_boundary(boundary_for(c.bc));
  u.fill_time(0, [](const std::array<std::int64_t, 2>& i) {
    return init_value(i[0], i[1]);
  });

  Stencil<2, double> st(stencils::heat_shape<2>(), opts);
  st.register_arrays(u);
  const auto kern = stencils::heat_kernel_2d({kCx, kCy});
  if (c.parallel) {
    st.run(c.alg, c.steps, kern);
  } else {
    st.run_serial(c.alg, c.steps, kern);
  }

  const auto want = reference(c.bc, c.n, c.steps);
  const std::int64_t rt = st.result_time();
  for (std::int64_t x = 0; x < c.n; ++x) {
    for (std::int64_t y = 0; y < c.n; ++y) {
      const double got = u.interior(rt, x, y);
      const double expect = want[static_cast<std::size_t>(x * c.n + y)];
      ASSERT_EQ(std::memcmp(&got, &expect, sizeof(double)), 0)
          << "(" << x << "," << y << ") got " << got << " want " << expect;
    }
  }
}

std::vector<Case> make_cases() {
  std::vector<Case> cases;
  for (Bc bc : {Bc::kPeriodic, Bc::kDirichlet, Bc::kNeumann, Bc::kCylinder}) {
    for (Algorithm alg : {Algorithm::kTrap, Algorithm::kStrap,
                          Algorithm::kLoopsParallel, Algorithm::kLoopsSerial}) {
      cases.push_back({bc, alg, true, 33, 19, 2, 4});
    }
    // TRAP with assorted coarsenings, serial and parallel.
    cases.push_back({bc, Algorithm::kTrap, false, 40, 23, 1, 1});
    cases.push_back({bc, Algorithm::kTrap, true, 40, 23, 5, 100});
    cases.push_back({bc, Algorithm::kTrap, true, 64, 64, 3, 8});
    cases.push_back({bc, Algorithm::kStrap, true, 64, 40, 1, 2});
  }
  // Degenerate sizes.
  cases.push_back({Bc::kPeriodic, Algorithm::kTrap, true, 1, 8, 1, 1});
  cases.push_back({Bc::kDirichlet, Algorithm::kTrap, true, 2, 9, 1, 1});
  cases.push_back({Bc::kPeriodic, Algorithm::kTrap, true, 3, 17, 1, 1});
  cases.push_back({Bc::kNeumann, Algorithm::kStrap, true, 2, 5, 1, 1});
  // Single step and tall-thin space-time.
  cases.push_back({Bc::kPeriodic, Algorithm::kTrap, true, 128, 1, 5, 100});
  cases.push_back({Bc::kDirichlet, Algorithm::kTrap, true, 8, 100, 2, 2});
  return cases;
}

INSTANTIATE_TEST_SUITE_P(Sweep, HeatCorrectness,
                         ::testing::ValuesIn(make_cases()));

TEST(HeatCorrectness, CheckedEverywhereMatchesCloned) {
  // The §4 ablation variant (no interior clone) must compute identical
  // values, just more slowly.
  const std::int64_t n = 48, steps = 20;
  auto make = [&] {
    Array<double, 2> u({n, n}, 1);
    u.register_boundary(periodic_boundary<double, 2>());
    u.fill_time(0, [](const std::array<std::int64_t, 2>& i) {
      return init_value(i[0], i[1]);
    });
    return u;
  };
  auto u1 = make();
  auto u2 = make();
  const auto kern = stencils::heat_kernel_2d({kCx, kCy});
  Stencil<2, double> s1(stencils::heat_shape<2>());
  s1.register_arrays(u1);
  s1.run(steps, kern);
  Stencil<2, double> s2(stencils::heat_shape<2>());
  s2.register_arrays(u2);
  s2.run_loops_checked_everywhere(steps, kern);
  for (std::int64_t x = 0; x < n; ++x) {
    for (std::int64_t y = 0; y < n; ++y) {
      ASSERT_EQ(u1.interior(s1.result_time(), x, y),
                u2.interior(s2.result_time(), x, y));
    }
  }
}

}  // namespace
}  // namespace pochoir
