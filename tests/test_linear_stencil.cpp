// Tests for the split-pointer path (LinearStencil, Figure 12(c)): the
// pointer-walking base case must agree bitwise with the generic kernel.
#include <gtest/gtest.h>

#include "core/boundary.hpp"
#include "core/linear_stencil.hpp"
#include "core/stencil.hpp"
#include "stencils/heat.hpp"
#include "stencils/wave.hpp"

namespace pochoir {
namespace {

TEST(LinearStencil, ShapeDerivation) {
  const auto lin = stencils::heat_linear<2>({0.1, 0.2});
  const Shape<2> s = lin.shape();
  EXPECT_EQ(s.home_dt(), 1);
  EXPECT_EQ(s.depth(), 1);
  EXPECT_EQ(s.sigma(0), 1);
  EXPECT_EQ(s.sigma(1), 1);
  EXPECT_EQ(s.cells().size(), 6u);
}

TEST(LinearStencil, MatchesGenericKernel2D) {
  const std::int64_t n = 64, steps = 33;
  const stencils::HeatCoeffs<2> c = {0.11, 0.13};
  auto init = [](const std::array<std::int64_t, 2>& i) {
    return 0.01 * static_cast<double>((i[0] * 7 + i[1] * 3) % 41);
  };
  Array<double, 2> u1({n, n}, 1);
  Array<double, 2> u2({n, n}, 1);
  for (auto* u : {&u1, &u2}) {
    u->register_boundary(periodic_boundary<double, 2>());
    u->fill_time(0, init);
  }
  Options<2> opts;
  opts.dt_threshold = 4;
  opts.dx_threshold = {12, 12};
  Stencil<2, double> s1(stencils::heat_shape<2>(), opts);
  s1.register_arrays(u1);
  s1.run_linear(steps, stencils::heat_linear<2>(c));
  Stencil<2, double> s2(stencils::heat_shape<2>(), opts);
  s2.register_arrays(u2);
  s2.run(steps, stencils::heat_kernel_2d(c));
  for (std::int64_t x = 0; x < n; ++x) {
    for (std::int64_t y = 0; y < n; ++y) {
      // The tap form folds the center coefficient, so floating-point
      // association differs from the generic kernel: compare to 1e-12.
      ASSERT_NEAR(u1.interior(s1.result_time(), x, y),
                  u2.interior(s2.result_time(), x, y), 1e-12)
          << x << "," << y;
    }
  }
}

TEST(LinearStencil, MatchesGenericKernel1D) {
  const std::int64_t n = 200, steps = 50;
  Array<double, 1> u1({n}, 1);
  Array<double, 1> u2({n}, 1);
  for (auto* u : {&u1, &u2}) {
    u->register_boundary(dirichlet_boundary<double, 1>(0.25));
    u->fill_time(0, [](const std::array<std::int64_t, 1>& i) {
      return 0.005 * static_cast<double>(i[0] % 37);
    });
  }
  Options<1> opts;
  opts.dt_threshold = 8;
  opts.dx_threshold = {32};
  Stencil<1, double> s1(stencils::heat_shape<1>(), opts);
  s1.register_arrays(u1);
  s1.run_linear(steps, stencils::heat_linear<1>({0.23}));
  Stencil<1, double> s2(stencils::heat_shape<1>(), opts);
  s2.register_arrays(u2);
  s2.run(steps, stencils::heat_kernel_1d({0.23}));
  for (std::int64_t x = 0; x < n; ++x) {
    ASSERT_NEAR(u1.interior(s1.result_time(), x),
                u2.interior(s2.result_time(), x), 1e-12);
  }
}

TEST(LinearStencil, DepthTwoWave3D) {
  const std::array<std::int64_t, 3> ext = {14, 12, 16};
  auto init = [](const std::array<std::int64_t, 3>& i) {
    return 0.02 * static_cast<double>((i[0] + 2 * i[1] + 3 * i[2]) % 19);
  };
  Array<double, 3> u1(ext, 2);
  Array<double, 3> u2(ext, 2);
  for (auto* u : {&u1, &u2}) {
    u->register_boundary(periodic_boundary<double, 3>());
    u->fill_time(0, init);
    u->fill_time(1, init);
  }
  Options<3> opts;
  opts.dt_threshold = 2;
  opts.dx_threshold = {3, 3, 4};
  const double c2 = 0.07;
  Stencil<3, double> s1(stencils::wave_shape(), opts);
  s1.register_arrays(u1);
  s1.run_linear(9, stencils::wave_linear(c2));
  Stencil<3, double> s2(stencils::wave_shape(), opts);
  s2.register_arrays(u2);
  s2.run(9, stencils::wave_kernel(c2));
  for (std::int64_t x = 0; x < ext[0]; ++x) {
    for (std::int64_t y = 0; y < ext[1]; ++y) {
      for (std::int64_t z = 0; z < ext[2]; ++z) {
        ASSERT_NEAR(u1.interior(s1.result_time(), x, y, z),
                    u2.interior(s2.result_time(), x, y, z), 1e-12);
      }
    }
  }
}

TEST(LinearStencil, SerialAndParallelAgree) {
  const std::int64_t n = 96, steps = 20;
  Array<double, 2> u1({n, n}, 1);
  Array<double, 2> u2({n, n}, 1);
  for (auto* u : {&u1, &u2}) {
    u->register_boundary(neumann_boundary<double, 2>());
    u->fill_time(0, [](const std::array<std::int64_t, 2>& i) {
      return static_cast<double>((i[0] ^ i[1]) % 13);
    });
  }
  const auto lin = stencils::heat_linear<2>({0.2, 0.15});
  Stencil<2, double> s1(stencils::heat_shape<2>());
  s1.register_arrays(u1);
  s1.run_linear(steps, lin, /*parallel=*/true);
  Stencil<2, double> s2(stencils::heat_shape<2>());
  s2.register_arrays(u2);
  s2.run_linear(steps, lin, /*parallel=*/false);
  for (std::int64_t x = 0; x < n; ++x) {
    for (std::int64_t y = 0; y < n; ++y) {
      ASSERT_EQ(u1.interior(s1.result_time(), x, y),
                u2.interior(s2.result_time(), x, y));
    }
  }
}

TEST(LinearStencilDeath, HomeDtMismatchRejected) {
  Array<double, 1> u({16}, 1);
  u.register_boundary(zero_boundary<double, 1>());
  Stencil<1, double> st(stencils::heat_shape<1>());
  st.register_arrays(u);
  const LinearStencil<double, 1> wrong(2, {{0, {0}, 1.0}});
  EXPECT_DEATH(st.run_linear(1, wrong), "home_dt");
}

}  // namespace
}  // namespace pochoir
