// Geometry tests: zoid definitions of §3.
#include <gtest/gtest.h>

#include <set>
#include <tuple>

#include "geometry/zoid.hpp"
#include "support/rng.hpp"

namespace pochoir {
namespace {

TEST(Zoid, BoxBasics) {
  const auto z = Zoid<2>::box(3, 10, {8, 9});
  EXPECT_EQ(z.height(), 7);
  EXPECT_EQ(z.bottom_width(0), 8);
  EXPECT_EQ(z.top_width(0), 8);
  EXPECT_EQ(z.width(1), 9);
  EXPECT_TRUE(z.upright(0));
  EXPECT_TRUE(z.well_defined());
  EXPECT_EQ(z.volume(), 7 * 8 * 9);
}

TEST(Zoid, UprightAndInverted) {
  Zoid<1> z;
  z.t0 = 0;
  z.t1 = 4;
  z.x0 = {0};
  z.x1 = {16};
  z.dx0 = {1};
  z.dx1 = {-1};
  EXPECT_TRUE(z.upright(0));          // shrinking: bottom is longer
  EXPECT_EQ(z.top_width(0), 16 - 8);  // 16 - 2*4
  z.dx0 = {-1};
  z.dx1 = {1};
  EXPECT_FALSE(z.upright(0));  // growing: top is longer
  EXPECT_EQ(z.width(0), 16 + 8);
}

TEST(Zoid, WellDefinedRejectsBadShapes) {
  Zoid<1> z;
  z.t0 = 0;
  z.t1 = 0;  // zero height
  z.x0 = {0};
  z.x1 = {4};
  EXPECT_FALSE(z.well_defined());
  z.t1 = 2;
  z.x1 = {0};
  z.dx0 = {-1};
  z.dx1 = {1};
  EXPECT_TRUE(z.well_defined());  // minimal inverted triangle
  z.dx0 = {1};
  z.dx1 = {-1};
  EXPECT_FALSE(z.well_defined());  // negative top base
}

TEST(Zoid, MinimalTriangleVolume) {
  // Gray triangle: empty bottom, grows by sigma=1 on both sides.
  Zoid<1> z;
  z.t0 = 0;
  z.t1 = 4;
  z.x0 = {10};
  z.x1 = {10};
  z.dx0 = {-1};
  z.dx1 = {1};
  // widths per time step: 0, 2, 4, 6
  EXPECT_EQ(z.volume(), 0 + 2 + 4 + 6);
}

TEST(Zoid, MinLoMaxHiTrackSlopedSides) {
  Zoid<1> z;
  z.t0 = 0;
  z.t1 = 5;
  z.x0 = {10};
  z.x1 = {20};
  z.dx0 = {-2};
  z.dx1 = {1};
  EXPECT_EQ(z.min_lo(0), 10 - 2 * 4);
  EXPECT_EQ(z.max_hi(0), 20 + 4);
}

TEST(ForEachPoint, MatchesSetDefinition2D) {
  Zoid<2> z;
  z.t0 = 2;
  z.t1 = 6;
  z.x0 = {0, 3};
  z.x1 = {8, 9};
  z.dx0 = {1, 0};
  z.dx1 = {-1, 1};
  std::set<std::tuple<std::int64_t, std::int64_t, std::int64_t>> visited;
  for_each_point(z, [&](std::int64_t t, const std::array<std::int64_t, 2>& i) {
    auto [it, fresh] = visited.insert({t, i[0], i[1]});
    EXPECT_TRUE(fresh) << "duplicate point";
  });
  // Brute-force check against the set definition.
  std::int64_t expected = 0;
  for (std::int64_t t = z.t0; t < z.t1; ++t) {
    for (std::int64_t x = -32; x < 32; ++x) {
      for (std::int64_t y = -32; y < 32; ++y) {
        const std::int64_t s = t - z.t0;
        const bool inside = x >= z.x0[0] + z.dx0[0] * s &&
                            x < z.x1[0] + z.dx1[0] * s &&
                            y >= z.x0[1] + z.dx0[1] * s &&
                            y < z.x1[1] + z.dx1[1] * s;
        if (inside) {
          ++expected;
          EXPECT_TRUE(visited.count({t, x, y})) << t << "," << x << "," << y;
        }
      }
    }
  }
  EXPECT_EQ(static_cast<std::int64_t>(visited.size()), expected);
  EXPECT_EQ(z.volume(), expected);
}

TEST(ForEachPoint, TimeMajorOrder) {
  const auto z = Zoid<1>::box(0, 3, {4});
  std::int64_t last_t = -1;
  for_each_point(z, [&](std::int64_t t, const std::array<std::int64_t, 1>&) {
    EXPECT_GE(t, last_t);
    last_t = t;
  });
  EXPECT_EQ(last_t, 2);
}

TEST(ZoidVolume, RandomZoidsMatchBruteForce) {
  Rng rng(99);
  for (int trial = 0; trial < 200; ++trial) {
    Zoid<1> z;
    z.t0 = 0;
    z.t1 = 1 + rng.next_below(6);
    z.x0 = {rng.next_below(20)};
    z.x1 = {z.x0[0] + rng.next_below(30)};
    z.dx0 = {rng.next_below(5) - 2};
    z.dx1 = {rng.next_below(5) - 2};
    if (!z.well_defined()) continue;
    std::int64_t count = 0;
    for_each_point(z, [&](std::int64_t, const std::array<std::int64_t, 1>&) {
      ++count;
    });
    ASSERT_EQ(count, z.volume());
  }
}

}  // namespace
}  // namespace pochoir
