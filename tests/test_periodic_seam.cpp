// Dependency-order property tests.
//
// The strongest invariant of the decomposition: when the walker computes a
// grid point, every space-time point it (periodically) depends on must
// already have been computed.  This is exactly Lemma 1 plus the torus seam
// handling of §4, and it is verified here by instrumenting the kernel with
// completion flags.  A decomposition that cut a full-circumference
// dimension with a plain trisection (no seam cut) fails this test.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <vector>

#include "core/boundary.hpp"
#include "core/stencil.hpp"
#include "stencils/heat.hpp"
#include "support/math_util.hpp"

namespace pochoir {
namespace {

class SeamOrder : public ::testing::TestWithParam<
                      std::tuple<Algorithm, std::int64_t, std::int64_t,
                                 std::int64_t, std::int64_t>> {};

TEST_P(SeamOrder, DependenciesCompleteBeforeUse) {
  const auto [alg, n, steps, dt_thresh, dx_thresh] = GetParam();

  Array<double, 2> u({n, n}, 1);
  u.register_boundary(periodic_boundary<double, 2>());
  u.fill_time(0, [](const std::array<std::int64_t, 2>&) { return 0.0; });

  Options<2> opts;
  opts.dt_threshold = dt_thresh;
  opts.dx_threshold = {dx_thresh, dx_thresh};
  Stencil<2, double> st(stencils::heat_shape<2>(), opts);
  st.register_arrays(u);

  // done[t * n * n + x * n + y] is set once invocation (t, x, y) finished.
  std::vector<std::atomic<std::uint8_t>> done(
      static_cast<std::size_t>(steps * n * n));
  std::atomic<std::int64_t> violations{0};
  std::atomic<std::int64_t> invocations{0};

  const std::int64_t num = n;
  auto kernel = [&, num](std::int64_t t, std::int64_t x, std::int64_t y,
                         auto uu) {
    if (t > 0) {
      for (std::int64_t dx = -1; dx <= 1; ++dx) {
        for (std::int64_t dy = -1; dy <= 1; ++dy) {
          if (dx != 0 && dy != 0) continue;  // five-point footprint
          const std::int64_t px = mod_floor(x + dx, num);
          const std::int64_t py = mod_floor(y + dy, num);
          const std::size_t slot = static_cast<std::size_t>(
              (t - 1) * num * num + px * num + py);
          if (done[slot].load(std::memory_order_acquire) == 0) {
            violations.fetch_add(1, std::memory_order_relaxed);
          }
        }
      }
    }
    uu(t + 1, x, y) = uu(t, x, y);  // keep the data path realistic
    done[static_cast<std::size_t>(t * num * num + x * num + y)].store(
        1, std::memory_order_release);
    invocations.fetch_add(1, std::memory_order_relaxed);
  };

  if (alg == Algorithm::kLoopsSerial) {
    st.run_serial(alg, steps, kernel);
  } else {
    st.run(alg, steps, kernel);
  }

  EXPECT_EQ(violations.load(), 0);
  EXPECT_EQ(invocations.load(), steps * n * n);  // every point exactly once
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, SeamOrder,
    ::testing::Values(
        std::make_tuple(Algorithm::kTrap, std::int64_t{16}, std::int64_t{16},
                        std::int64_t{1}, std::int64_t{1}),
        std::make_tuple(Algorithm::kTrap, std::int64_t{32}, std::int64_t{24},
                        std::int64_t{2}, std::int64_t{4}),
        std::make_tuple(Algorithm::kTrap, std::int64_t{17}, std::int64_t{9},
                        std::int64_t{1}, std::int64_t{2}),
        std::make_tuple(Algorithm::kStrap, std::int64_t{16}, std::int64_t{16},
                        std::int64_t{1}, std::int64_t{1}),
        std::make_tuple(Algorithm::kStrap, std::int64_t{32}, std::int64_t{12},
                        std::int64_t{2}, std::int64_t{3}),
        std::make_tuple(Algorithm::kLoopsParallel, std::int64_t{16},
                        std::int64_t{8}, std::int64_t{1}, std::int64_t{1})));

TEST(SeamPieces, NormalizeShiftsBeyondSeamZoids) {
  WalkContext<2> ctx;
  ctx.grid = {16, 16};
  Zoid<2> z = Zoid<2>::box(0, 2, {4, 4});
  z.x0[0] += 17;  // entirely beyond the seam in dim 0
  z.x1[0] += 17;
  const Zoid<2> norm = ctx.normalize(z);
  EXPECT_EQ(norm.x0[0], 1);
  EXPECT_EQ(norm.x1[0], 5);
  EXPECT_EQ(norm.x0[1], 0);  // other dim untouched
}

TEST(SeamPieces, CrossingZoidIsNotShifted) {
  WalkContext<2> ctx;
  ctx.grid = {16, 16};
  Zoid<2> z = Zoid<2>::box(0, 2, {4, 4});
  z.x0[0] = 15;  // crosses the seam: [15, 19)
  z.x1[0] = 19;
  const Zoid<2> norm = ctx.normalize(z);
  EXPECT_EQ(norm.x0[0], 15);
}

TEST(SeamPieces, InteriorTestRejectsVirtualZoids) {
  WalkContext<2> ctx;
  ctx.grid = {16, 16};
  ctx.reach = {1, 1};
  Zoid<2> z = Zoid<2>::box(0, 2, {4, 4});
  z.x0 = {8, 8};
  z.x1 = {12, 12};
  EXPECT_TRUE(ctx.is_interior(z));
  z.x0[0] = 15;
  z.x1[0] = 19;  // wraps: must use the boundary clone
  EXPECT_FALSE(ctx.is_interior(z));
  z.x0[0] = 0;  // touches the edge: reads go off-grid
  z.x1[0] = 4;
  EXPECT_FALSE(ctx.is_interior(z));
}

}  // namespace
}  // namespace pochoir
