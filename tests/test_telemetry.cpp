// Telemetry-layer tests: counter consistency (points updated == grid x
// steps; TRAP vs loops agree; scheduler spawns == tasks run), trace-JSON
// well-formedness and span nesting, registry/export round trips through
// the JSON linter, the off-by-default allocation-free guarantee, and the
// RunReport timing fields of supervised runs.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <new>
#include <numeric>
#include <sstream>
#include <string>
#include <vector>

#include "core/boundary.hpp"
#include "core/stencil.hpp"
#include "runtime/scheduler.hpp"
#include "stencils/common.hpp"
#include "stencils/heat.hpp"
#include "stencils/wave.hpp"
#include "support/json_lint.hpp"
#include "telemetry/export.hpp"
#include "telemetry/stats.hpp"
#include "telemetry/trace.hpp"

namespace {

// These tests control telemetry state explicitly; stray environment from
// the invoking shell must not leak in.  Runs during static init, before
// the lazily-initialized enabled() flag is first read.
const bool g_env_cleared = [] {
  unsetenv("POCHOIR_TELEMETRY");
  unsetenv("POCHOIR_TRACE");
  unsetenv("POCHOIR_TELEMETRY_JSON");
  unsetenv("POCHOIR_TRACE_ZOID_DEPTH");
  return true;
}();

std::atomic<bool> g_counting{false};
std::atomic<std::int64_t> g_allocs{0};

}  // namespace

// Counting global allocator hooks (same pattern as test_walk_equivalence):
// active only while g_counting is set, so gtest/harness allocations outside
// the measured region are ignored.
void* operator new(std::size_t size) {
  if (g_counting.load(std::memory_order_relaxed)) {
    g_allocs.fetch_add(1, std::memory_order_relaxed);
  }
  if (void* p = std::malloc(size != 0 ? size : 1)) return p;
  throw std::bad_alloc();
}

void* operator new[](std::size_t size) { return ::operator new(size); }

void operator delete(void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace pochoir {
namespace {

namespace tel = telemetry;

/// RAII guard: forces the counter flag for one scope, restoring the
/// previous state afterwards (tests must not leak state into each other).
class EnabledScope {
 public:
  explicit EnabledScope(bool on) : prev_(tel::enabled()) {
    tel::set_enabled(on);
  }
  ~EnabledScope() { tel::set_enabled(prev_); }

 private:
  bool prev_;
};

std::uint64_t hist_sum(const std::array<std::uint64_t, tel::kHistogramBuckets>& h) {
  return std::accumulate(h.begin(), h.end(), std::uint64_t{0});
}

/// Runs the 2D heat kernel for `steps` on an n x n grid with the given
/// algorithm and returns the walk-counter delta.
tel::WalkCounters run_heat2(std::int64_t n, std::int64_t steps, Algorithm alg,
                            bool periodic) {
  Array<double, 2> a({n, n}, stencils::heat_shape<2>().depth());
  if (periodic) {
    a.register_boundary(periodic_boundary<double, 2>());
  } else {
    a.register_boundary(dirichlet_boundary<double, 2>(0.0));
  }
  stencils::fill_random(a, 0, 0.0, 1.0);
  Stencil<2, double> heat(stencils::heat_shape<2>());
  heat.register_arrays(a);
  auto kern = stencils::heat_kernel_2d({0.125, 0.125});
  const tel::WalkCounters before = tel::walk_stats().snapshot();
  heat.run_serial(alg, steps, kern);
  return tel::walk_stats().snapshot() - before;
}

TEST(TelemetryCounters, DisabledByDefault) {
  ASSERT_TRUE(g_env_cleared);
  EXPECT_FALSE(tel::enabled());
  // With the flag off, context() must not attach the stats sink, so a run
  // leaves the global counters untouched.
  const tel::WalkCounters delta =
      run_heat2(16, 4, Algorithm::kTrap, /*periodic=*/false);
  EXPECT_EQ(delta.points_total(), 0u);
  EXPECT_EQ(delta.base_cases(), 0u);
}

TEST(TelemetryCounters, TrapPointsMatchGridTimesSteps) {
  EnabledScope on(true);
  const std::int64_t n = 24, steps = 10;
  const tel::WalkCounters d =
      run_heat2(n, steps, Algorithm::kTrap, /*periodic=*/false);
  const std::uint64_t expected =
      static_cast<std::uint64_t>(n * n * steps);
  EXPECT_EQ(d.points_interior + d.points_boundary, expected);
  EXPECT_EQ(d.points_loops, 0u);
  EXPECT_GT(d.base_cases(), 0u);
  EXPECT_GT(d.base_boundary, 0u);  // grid edges always need the checked clone
  // Each base case lands in exactly one bucket of each histogram.
  EXPECT_EQ(hist_sum(d.zoid_points_hist), d.base_cases());
  EXPECT_EQ(hist_sum(d.zoid_height_hist), d.base_cases());
  // A 24^2 x 10 box cannot be a single base case with default coarsening.
  EXPECT_GT(d.space_cuts + d.time_cuts, 0u);
}

TEST(TelemetryCounters, TrapAndLoopsAgreeOnPoints) {
  EnabledScope on(true);
  const std::int64_t n = 20, steps = 8;
  const std::uint64_t expected =
      static_cast<std::uint64_t>(n * n * steps);
  const tel::WalkCounters trap =
      run_heat2(n, steps, Algorithm::kTrap, /*periodic=*/true);
  const tel::WalkCounters loops =
      run_heat2(n, steps, Algorithm::kLoopsSerial, /*periodic=*/true);
  EXPECT_EQ(trap.points_total(), expected);
  EXPECT_EQ(loops.points_total(), expected);
  EXPECT_EQ(loops.points_loops, expected);
  EXPECT_EQ(loops.loops_steps, static_cast<std::uint64_t>(steps));
  EXPECT_EQ(loops.base_cases(), 0u);
}

TEST(TelemetryCounters, Wave3DPointsConsistent) {
  EnabledScope on(true);
  const std::int64_t n = 10, steps = 4;
  Array<double, 3> a({n, n, n}, stencils::wave_shape().depth());
  a.register_boundary(periodic_boundary<double, 3>());
  a.fill_time(0, [](const auto&) { return 2.5; });
  a.fill_time(1, [](const auto&) { return 2.5; });
  Stencil<3, double> wave(stencils::wave_shape());
  wave.register_arrays(a);
  auto kern = stencils::wave_kernel(0.1);
  const tel::WalkCounters before = tel::walk_stats().snapshot();
  wave.run_serial(Algorithm::kTrap, steps, kern);
  const tel::WalkCounters d = tel::walk_stats().snapshot() - before;
  EXPECT_EQ(d.points_total(), static_cast<std::uint64_t>(n * n * n * steps));
  EXPECT_EQ(hist_sum(d.zoid_points_hist), d.base_cases());
}

TEST(TelemetryCounters, SchedulerSpawnsEqualTasksRun) {
  EnabledScope on(true);
  rt::Scheduler& sched = rt::Scheduler::instance();
  const tel::SchedulerCounters before = rt::Scheduler::counters_now();
  constexpr int kTasks = 64;
  std::atomic<int> ran{0};
  rt::TaskGroup group;
  for (int i = 0; i < kTasks; ++i) {
    group.spawn([&ran] { ran.fetch_add(1, std::memory_order_relaxed); });
  }
  group.wait();
  (void)sched;
  const tel::SchedulerCounters d = rt::Scheduler::counters_now() - before;
  EXPECT_EQ(ran.load(), kTasks);
  EXPECT_EQ(d.spawns, static_cast<std::uint64_t>(kTasks));
  EXPECT_EQ(d.tasks_run, d.spawns);  // every spawned task ran exactly once
  EXPECT_LE(d.steals, d.tasks_run);
}

TEST(TelemetryTrace, SpansNestAndExportIsValidJson) {
  trace::Tracer& tracer = trace::Tracer::instance();
  tracer.reset();
  tracer.set_active(true);
  {
    trace::Span outer("outer", 1);
    {
      trace::Span middle("middle", 2);
      trace::Span inner("inner", 3);
    }
    trace::Span sibling("sibling", 4);
  }
  tracer.set_active(false);

  const auto logs = tracer.drain_copy();
  std::size_t total = 0;
  for (const auto& log : logs) {
    total += log.events.size();
    // Events sorted by begin; RAII spans must nest properly per thread:
    // a span beginning inside another must also end inside it.
    std::vector<trace::Event> evs = log.events;
    std::sort(evs.begin(), evs.end(),
              [](const trace::Event& a, const trace::Event& b) {
                return a.begin_ns < b.begin_ns;
              });
    std::vector<std::uint64_t> stack;
    for (const auto& ev : evs) {
      EXPECT_LE(ev.begin_ns, ev.end_ns);
      while (!stack.empty() && stack.back() <= ev.begin_ns) stack.pop_back();
      if (!stack.empty()) {
        EXPECT_LE(ev.end_ns, stack.back());
      }
      stack.push_back(ev.end_ns);
    }
  }
  EXPECT_EQ(total, 4u);

  const std::string path = "telemetry_test_trace.json";
  ASSERT_TRUE(trace::write_chrome_trace(path));
  std::ifstream in(path, std::ios::binary);
  ASSERT_TRUE(in.good());
  std::ostringstream buf;
  buf << in.rdbuf();
  const std::string text = buf.str();
  const auto lint = json::lint(text);
  EXPECT_TRUE(lint.ok) << lint.error << " at byte " << lint.pos;
  EXPECT_NE(text.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(text.find("\"outer\""), std::string::npos);
  EXPECT_NE(text.find("\"ph\": \"X\""), std::string::npos);
  std::filesystem::remove(path);
  tracer.reset();
}

TEST(TelemetryTrace, TracedWalkEmitsZoidSpans) {
  EnabledScope on(true);
  trace::Tracer& tracer = trace::Tracer::instance();
  tracer.reset();
  tracer.set_active(true);
  run_heat2(24, 8, Algorithm::kTrap, /*periodic=*/false);
  tracer.set_active(false);
  const auto logs = tracer.drain_copy();
  std::size_t zoids = 0, runs = 0;
  int max_depth = -1;
  for (const auto& log : logs) {
    for (const auto& ev : log.events) {
      const std::string name = ev.name;
      if (name == "zoid") {
        ++zoids;
        max_depth = ev.arg > max_depth ? static_cast<int>(ev.arg) : max_depth;
      }
      if (name == "stencil_run") ++runs;
    }
  }
  EXPECT_EQ(runs, 1u);
  EXPECT_GT(zoids, 0u);
  // The depth threshold bounds what gets recorded.
  EXPECT_LE(max_depth, trace::zoid_depth_limit());
  tracer.reset();
}

TEST(TelemetryExport, SessionAndRegistrySnapshotAreValidJson) {
  {
    trace::Session session("test/heat2", /*force_enable=*/true);
    run_heat2(16, 4, Algorithm::kTrap, /*periodic=*/false);
    const tel::RunTelemetry t = session.finish();
    EXPECT_EQ(t.label, "test/heat2");
    EXPECT_GT(t.seconds, 0.0);
    EXPECT_EQ(t.points(), static_cast<std::uint64_t>(16 * 16 * 4));
    EXPECT_GT(t.points_per_s(), 0.0);
    const auto lint = json::lint(tel::to_json(t));
    EXPECT_TRUE(lint.ok) << lint.error;
  }
  // Session restored the flag (it was off at construction).
  EXPECT_FALSE(tel::enabled());

  const std::string path = "telemetry_test_snapshot.json";
  ASSERT_TRUE(tel::Registry::instance().export_json(path));
  std::ifstream in(path, std::ios::binary);
  ASSERT_TRUE(in.good());
  std::ostringstream buf;
  buf << in.rdbuf();
  const auto lint = json::lint(buf.str());
  EXPECT_TRUE(lint.ok) << lint.error << " at byte " << lint.pos;
  EXPECT_NE(buf.str().find("pochoir-telemetry-v1"), std::string::npos);
  std::filesystem::remove(path);
}

TEST(TelemetryOverhead, DisabledAndCounterOnlyPathsAreAllocationFree) {
  const std::int64_t n = 32, steps = 8;
  Array<double, 2> a({n, n}, stencils::heat_shape<2>().depth());
  a.register_boundary(dirichlet_boundary<double, 2>(0.0));
  stencils::fill_random(a, 0, 0.0, 1.0);
  Stencil<2, double> heat(stencils::heat_shape<2>());
  heat.register_arrays(a);
  auto kern = stencils::heat_kernel_2d({0.125, 0.125});
  // Warm up lazily-created singletons (walk stats, tracer) outside the
  // measured region.
  (void)tel::walk_stats().snapshot();
  (void)trace::Tracer::instance().active();

  // Telemetry off (the default): the serial walk stays allocation-free.
  {
    ASSERT_FALSE(tel::enabled());
    g_allocs.store(0);
    g_counting.store(true);
    heat.run_serial(Algorithm::kTrap, steps, kern);
    g_counting.store(false);
    EXPECT_EQ(g_allocs.load(), 0);
  }
  // Counters on, tracing off: relaxed atomics only — still no allocation.
  {
    EnabledScope on(true);
    g_allocs.store(0);
    g_counting.store(true);
    heat.run_serial(Algorithm::kTrap, steps, kern);
    g_counting.store(false);
    EXPECT_EQ(g_allocs.load(), 0);
  }
}

TEST(TelemetrySupervised, RunReportCarriesSlabAndCheckpointTelemetry) {
  namespace fs = std::filesystem;
  const fs::path dir = fs::path("telemetry_test_ckpt");
  fs::create_directories(dir);
  const std::int64_t n = 16, steps = 8;
  Array<double, 2> a({n, n}, stencils::heat_shape<2>().depth());
  a.register_boundary(dirichlet_boundary<double, 2>(0.0));
  stencils::fill_random(a, 0, 0.0, 1.0);
  Stencil<2, double> heat(stencils::heat_shape<2>());
  heat.register_arrays(a);
  auto kern = stencils::heat_kernel_2d({0.125, 0.125});

  resilience::SupervisorOptions opts;
  opts.slab_steps = 2;
  opts.checkpoint_path = (dir / "ck").string();
  const resilience::RunReport rep = heat.run_supervised(steps, kern, opts);
  ASSERT_TRUE(rep.ok()) << rep.message;
  EXPECT_EQ(rep.steps_completed, steps);
  EXPECT_EQ(rep.slabs_completed, 4);
  EXPECT_EQ(rep.checkpoints_written, 4);
  EXPECT_GT(rep.slab_seconds, 0.0);
  EXPECT_GE(rep.checkpoint_seconds, 0.0);
  // Each checkpoint snapshots the full array (all time levels).
  const std::int64_t bytes_per_ckpt =
      static_cast<std::int64_t>(a.total_size()) *
      static_cast<std::int64_t>(sizeof(double));
  EXPECT_EQ(rep.checkpoint_bytes, rep.checkpoints_written * bytes_per_ckpt);
  fs::remove_all(dir);
}

TEST(JsonLint, AcceptsValidDocuments) {
  const char* good[] = {
      "{}",
      "[]",
      "null",
      "true",
      "-12.5e3",
      "\"str with \\\"escape\\\" and \\u00e9\"",
      "{\"a\": [1, 2, {\"b\": null}], \"c\": -0.5}",
      "  [1, 2, 3]\n",
  };
  for (const char* doc : good) {
    const auto r = json::lint(doc);
    EXPECT_TRUE(r.ok) << doc << " -> " << r.error;
  }
}

TEST(JsonLint, RejectsMalformedDocuments) {
  const char* bad[] = {
      "",
      "{",
      "[1, 2,]",
      "{\"a\" 1}",
      "{\"a\": 1,}",
      "nul",
      "01",
      "1.",
      "\"unterminated",
      "\"bad \\x escape\"",
      "[1] trailing",
      "{'single': 1}",
  };
  for (const char* doc : bad) {
    const auto r = json::lint(doc);
    EXPECT_FALSE(r.ok) << doc << " unexpectedly accepted";
  }
}

}  // namespace
}  // namespace pochoir
