// Tests for the ideal-cache (fully associative LRU) simulator.
#include <gtest/gtest.h>

#include <vector>

#include "analysis/cache_sim.hpp"

namespace pochoir {
namespace {

TEST(CacheSim, ColdMissesThenHits) {
  CacheSim sim(1024, 64);  // 16 lines
  std::vector<char> mem(512);
  sim.touch(mem.data(), 1);
  EXPECT_EQ(sim.references(), 1u);
  EXPECT_EQ(sim.misses(), 1u);
  sim.touch(mem.data() + 1, 1);  // same line
  EXPECT_EQ(sim.references(), 2u);
  EXPECT_EQ(sim.misses(), 1u);
}

TEST(CacheSim, StraddlingAccessTouchesTwoLines) {
  CacheSim sim(1024, 64);
  alignas(64) char mem[256];
  sim.touch(mem + 60, 8);  // crosses a line boundary
  EXPECT_EQ(sim.references(), 2u);
  EXPECT_EQ(sim.misses(), 2u);
}

TEST(CacheSim, LruEviction) {
  CacheSim sim(4 * 64, 64);  // 4 lines
  alignas(64) char mem[64 * 8];
  for (int i = 0; i < 5; ++i) sim.touch(mem + 64 * i, 1);  // fills + evicts line 0
  EXPECT_EQ(sim.misses(), 5u);
  sim.touch(mem + 64 * 4, 1);  // most recent: hit
  EXPECT_EQ(sim.misses(), 5u);
  sim.touch(mem + 64 * 0, 1);  // was evicted: miss again
  EXPECT_EQ(sim.misses(), 6u);
}

TEST(CacheSim, LruKeepsHotLine) {
  CacheSim sim(2 * 64, 64);  // 2 lines
  alignas(64) char mem[64 * 4];
  sim.touch(mem + 0, 1);     // A miss
  sim.touch(mem + 64, 1);    // B miss
  sim.touch(mem + 0, 1);     // A hit (now MRU)
  sim.touch(mem + 128, 1);   // C miss, evicts B
  sim.touch(mem + 0, 1);     // A still resident
  EXPECT_EQ(sim.misses(), 3u);
  sim.touch(mem + 64, 1);    // B was evicted
  EXPECT_EQ(sim.misses(), 4u);
}

TEST(CacheSim, MissRatioBounds) {
  CacheSim sim(1024, 64);
  EXPECT_EQ(sim.miss_ratio(), 0.0);
  alignas(64) char mem[64];
  sim.touch(mem, 1);
  sim.touch(mem, 1);
  EXPECT_DOUBLE_EQ(sim.miss_ratio(), 0.5);
}

TEST(CacheSim, ResetClearsState) {
  CacheSim sim(1024, 64);
  alignas(64) char mem[64];
  sim.touch(mem, 1);
  sim.reset();
  EXPECT_EQ(sim.references(), 0u);
  EXPECT_EQ(sim.misses(), 0u);
  sim.touch(mem, 1);
  EXPECT_EQ(sim.misses(), 1u);  // cold again after reset
}

TEST(CacheSim, SequentialScanMissRatioIsOnePerLine) {
  // Scanning a large array of doubles: one miss per 8 doubles (64B lines).
  CacheSim sim(32 * 1024, 64);
  std::vector<double> data(1 << 16);
  for (double& v : data) sim.touch(&v, sizeof(double));
  EXPECT_NEAR(sim.miss_ratio(), 1.0 / 8.0, 1e-3);
}

TEST(CacheSim, RepeatedScanOfResidentSetHitsAfterWarmup) {
  CacheSim sim(64 * 1024, 64);
  std::vector<double> data(1024);  // 8KB: fits
  for (double& v : data) sim.touch(&v, sizeof(double));
  const auto cold_misses = sim.misses();
  for (int round = 0; round < 9; ++round) {
    for (double& v : data) sim.touch(&v, sizeof(double));
  }
  EXPECT_EQ(sim.misses(), cold_misses);  // fully resident
}

TEST(CacheHierarchy, LevelsTrackIndependently) {
  CacheHierarchy h({CacheSim(2 * 64, 64), CacheSim(64 * 64, 64)});
  alignas(64) char mem[64 * 8];
  for (int round = 0; round < 2; ++round) {
    for (int i = 0; i < 8; ++i) h.touch(mem + 64 * i, 1);
  }
  // L1 (2 lines) thrashes: every access misses; L2 (64 lines) holds all 8.
  EXPECT_EQ(h.level(0).misses(), 16u);
  EXPECT_EQ(h.level(1).misses(), 8u);
  EXPECT_EQ(h.level(0).references(), h.level(1).references());
}

}  // namespace
}  // namespace pochoir
