// 3D wave equation (depth-2 stencil) sanity tests.
#include <gtest/gtest.h>

#include <cmath>

#include "core/boundary.hpp"
#include "core/stencil.hpp"
#include "stencils/common.hpp"
#include "stencils/wave.hpp"

namespace pochoir {
namespace {

TEST(Wave, ShapeDepthTwo) {
  const auto s = stencils::wave_shape();
  EXPECT_EQ(s.depth(), 2);
  EXPECT_EQ(s.sigma(0), 1);
  EXPECT_EQ(s.cells().size(), 9u);
}

TEST(Wave, UniformFieldIsStationary) {
  // With u(t) == u(t-1) == const, the update keeps the field constant.
  Array<double, 3> u({12, 12, 12}, 2);
  u.register_boundary(periodic_boundary<double, 3>());
  u.fill_time(0, [](const auto&) { return 2.5; });
  u.fill_time(1, [](const auto&) { return 2.5; });
  Stencil<3, double> st(stencils::wave_shape());
  st.register_arrays(u);
  st.run(10, stencils::wave_kernel(0.1));
  for (std::int64_t x = 0; x < 12; ++x) {
    for (std::int64_t y = 0; y < 12; ++y) {
      for (std::int64_t z = 0; z < 12; ++z) {
        EXPECT_DOUBLE_EQ(u.interior(st.result_time(), x, y, z), 2.5);
      }
    }
  }
}

TEST(Wave, PlaneWaveDispersionPeriodic) {
  // A sinusoidal standing-wave mode of the discrete operator stays a mode:
  // u(t,x) = cos(omega t) sin(k x) with the discrete dispersion relation.
  const std::int64_t n = 32;
  const double c2 = 0.25;
  const double k = 2.0 * M_PI / static_cast<double>(n);
  // Discrete dispersion: cos(omega) = 1 - 2 c2 sin^2(k/2) (1D mode in x).
  const double cos_omega = 1 - 2 * c2 * std::sin(k / 2) * std::sin(k / 2);
  const double omega = std::acos(cos_omega);
  Array<double, 3> u({n, 4, 4}, 2);
  u.register_boundary(periodic_boundary<double, 3>());
  auto mode = [&](double t) {
    return [&, t](const std::array<std::int64_t, 3>& i) {
      return std::cos(omega * t) * std::sin(k * static_cast<double>(i[0]));
    };
  };
  u.fill_time(0, mode(0));
  u.fill_time(1, mode(1));
  Stencil<3, double> st(stencils::wave_shape());
  st.register_arrays(u);
  const std::int64_t steps = 20;
  // The discrete 3D laplacian applied to an x-only mode has zero
  // contribution in y and z, but the kernel subtracts 6u, not 2u; correct
  // for that: an x-only mode IS an eigenfunction because the y/z neighbor
  // sums contribute 2u + 2u exactly.
  st.run(steps, stencils::wave_kernel(c2));
  const std::int64_t rt = st.result_time();
  double max_err = 0;
  for (std::int64_t x = 0; x < n; ++x) {
    const double want =
        std::cos(omega * static_cast<double>(steps + 1)) *
        std::sin(k * static_cast<double>(x));
    max_err = std::max(max_err, std::abs(u.interior(rt, x, 2, 2) - want));
  }
  EXPECT_LT(max_err, 1e-9);
}

TEST(Wave, EnergyBoundedOverTime) {
  // A stable scheme (CFL satisfied) keeps the solution bounded.
  Array<double, 3> u({16, 16, 16}, 2);
  u.register_boundary(periodic_boundary<double, 3>());
  stencils::fill_random(u, 0, -0.5, 0.5, 11);
  u.fill_time(1, [&](const std::array<std::int64_t, 3>& i) {
    return u.at(0, i);  // zero initial velocity
  });
  Stencil<3, double> st(stencils::wave_shape());
  st.register_arrays(u);
  st.run(100, stencils::wave_kernel(0.15));
  const std::int64_t rt = st.result_time();
  for (std::int64_t x = 0; x < 16; ++x) {
    for (std::int64_t y = 0; y < 16; ++y) {
      for (std::int64_t z = 0; z < 16; ++z) {
        ASSERT_LT(std::abs(u.interior(rt, x, y, z)), 10.0);
      }
    }
  }
}

}  // namespace
}  // namespace pochoir
