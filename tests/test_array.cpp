// Tests for Array<T,D>: layout, circular time levels, checked access (§2).
#include <gtest/gtest.h>

#include <sstream>

#include "core/array.hpp"
#include "core/boundary.hpp"

namespace pochoir {
namespace {

TEST(Array, LayoutRowMajorUnitStrideLast) {
  Array<double, 3> a({4, 5, 6});
  EXPECT_EQ(a.stride(2), 1);
  EXPECT_EQ(a.stride(1), 6);
  EXPECT_EQ(a.stride(0), 30);
  EXPECT_EQ(a.level_size(), 120);
  EXPECT_EQ(a.time_levels(), 2);
  EXPECT_EQ(a.total_size(), 240);
}

TEST(Array, PaperSizeIndexing) {
  // size(0) is the unit-stride dimension (Figure 6: a.size(0) == Y).
  Array<double, 2> a({7, 9});
  EXPECT_EQ(a.size(0), 9);
  EXPECT_EQ(a.size(1), 7);
  EXPECT_EQ(a.extent(0), 7);
  EXPECT_EQ(a.extent(1), 9);
}

TEST(Array, CircularTimeLevels) {
  Array<double, 1> a({4}, /*depth=*/1);
  a.interior(0, 2) = 10;
  a.interior(1, 2) = 20;
  // Level 2 aliases level 0, level 3 aliases level 1.
  EXPECT_EQ(a.interior(2, 2), 10);
  EXPECT_EQ(a.interior(3, 2), 20);
  a.interior(2, 2) = 30;
  EXPECT_EQ(a.interior(0, 2), 30);
}

TEST(Array, DepthTwoHasThreeLevels) {
  Array<double, 1> a({4}, /*depth=*/2);
  EXPECT_EQ(a.time_levels(), 3);
  a.interior(0, 1) = 1;
  a.interior(1, 1) = 2;
  a.interior(2, 1) = 3;
  EXPECT_EQ(a.interior(3, 1), 1);  // 3 mod 3 == 0
}

TEST(Array, NegativeTimeWrapsSafely) {
  Array<double, 1> a({4}, 1);
  a.interior(1, 0) = 5;
  EXPECT_EQ(a.interior(-1, 0), 5);  // -1 mod 2 == 1
}

TEST(Array, InDomain) {
  Array<double, 2> a({3, 4});
  EXPECT_TRUE(a.in_domain({0, 0}));
  EXPECT_TRUE(a.in_domain({2, 3}));
  EXPECT_FALSE(a.in_domain({3, 0}));
  EXPECT_FALSE(a.in_domain({0, 4}));
  EXPECT_FALSE(a.in_domain({-1, 0}));
}

TEST(Array, GetRoutesOffDomainToBoundary) {
  Array<double, 1> a({4});
  a.register_boundary(dirichlet_boundary<double, 1>(-7.5));
  a.interior(0, 0) = 1.0;
  EXPECT_EQ(a.get(0, std::int64_t{0}), 1.0);
  EXPECT_EQ(a.get(0, std::int64_t{-1}), -7.5);
  EXPECT_EQ(a.get(0, std::int64_t{4}), -7.5);
}

TEST(ArrayDeath, OffDomainWithoutBoundaryAborts) {
  Array<double, 1> a({4});
  EXPECT_DEATH((void)a.get(0, std::int64_t{-1}), "Register_Boundary");
}

TEST(Array, ProxyReadWrite) {
  Array<double, 2> a({4, 4});
  a.register_boundary(dirichlet_boundary<double, 2>(0.0));
  a(0, 1, 1) = 3.5;
  const double v = a(0, 1, 1);
  EXPECT_EQ(v, 3.5);
  a(0, 1, 1) += 1.0;
  EXPECT_EQ(static_cast<double>(a(0, 1, 1)), 4.5);
  a(0, 1, 1) *= 2.0;
  EXPECT_EQ(a(0, 1, 1).value(), 9.0);
}

TEST(ArrayDeath, ProxyWriteOffDomainAborts) {
  Array<double, 1> a({4});
  EXPECT_DEATH(a(0, 9) = 1.0, "outside the domain");
}

TEST(Array, FillTimeVisitsEveryCell) {
  Array<double, 2> a({3, 5});
  a.fill_time(0, [](const std::array<std::int64_t, 2>& i) {
    return static_cast<double>(i[0] * 100 + i[1]);
  });
  for (std::int64_t x = 0; x < 3; ++x) {
    for (std::int64_t y = 0; y < 5; ++y) {
      EXPECT_EQ(a.interior(0, x, y), static_cast<double>(x * 100 + y));
    }
  }
}

TEST(Array, LinearIndexMatchesAddress) {
  Array<double, 2> a({8, 8});
  const std::array<std::int64_t, 2> idx{3, 5};
  EXPECT_EQ(&a.at(1, idx), a.data() + a.linear_index(1, idx));
}

TEST(Array, StructCells) {
  struct Cell {
    int a = 0;
    double b = 0;
  };
  Array<Cell, 1> arr({8}, 2);
  arr.interior(0, 3) = {7, 2.5};
  EXPECT_EQ(arr.interior(0, 3).a, 7);
  EXPECT_EQ(arr.interior(0, 3).b, 2.5);
}

TEST(Array, StreamOperatorPrintsSummary) {
  Array<double, 2> a({2, 3});
  std::ostringstream os;
  os << a;
  EXPECT_NE(os.str().find("2x3"), std::string::npos);
}

TEST(Array, SixtyFourByteAligned) {
  Array<double, 1> a({100});
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(a.data()) % 64, 0u);
}

}  // namespace
}  // namespace pochoir
