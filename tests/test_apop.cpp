// American put option pricing: financial sanity + algorithm equivalence.
#include <gtest/gtest.h>

#include <cmath>

#include "core/stencil.hpp"
#include "stencils/apop.hpp"

namespace pochoir {
namespace {

stencils::ApopParams small_params() {
  stencils::ApopParams p;
  p.grid = 512;
  p.steps = 1024;
  p.log_halfwidth = 2.0;
  return p;
}

TEST(Apop, SchemeIsStable) { EXPECT_TRUE(small_params().stable()); }

std::vector<double> run_apop(const stencils::ApopParams& p, Algorithm alg) {
  Array<double, 1> v({p.grid}, 1);
  stencils::apop_register_boundary(v, p);
  v.fill_time(0, [&](const std::array<std::int64_t, 1>& i) {
    return p.payoff(i[0]);
  });
  Stencil<1, double> st(stencils::apop_shape());
  st.register_arrays(v);
  st.run(alg, p.steps, stencils::apop_kernel(p));
  std::vector<double> out(static_cast<std::size_t>(p.grid));
  for (std::int64_t x = 0; x < p.grid; ++x) {
    out[static_cast<std::size_t>(x)] = v.interior(st.result_time(), x);
  }
  return out;
}

TEST(Apop, MatchesSerialReference) {
  const auto p = small_params();
  const auto want = stencils::apop_reference(p);
  const auto got = run_apop(p, Algorithm::kTrap);
  for (std::int64_t x = 0; x < p.grid; ++x) {
    ASSERT_NEAR(got[static_cast<std::size_t>(x)],
                want[static_cast<std::size_t>(x)], 1e-12)
        << "node " << x;
  }
}

TEST(Apop, StrapAndLoopsAgree) {
  const auto p = small_params();
  const auto a = run_apop(p, Algorithm::kStrap);
  const auto b = run_apop(p, Algorithm::kLoopsSerial);
  for (std::size_t x = 0; x < a.size(); ++x) ASSERT_EQ(a[x], b[x]);
}

TEST(Apop, ValueDominatesPayoff) {
  // An American option is always worth at least immediate exercise.
  const auto p = small_params();
  const auto v = run_apop(p, Algorithm::kTrap);
  for (std::int64_t x = 0; x < p.grid; ++x) {
    ASSERT_GE(v[static_cast<std::size_t>(x)] + 1e-12, p.payoff(x));
  }
}

TEST(Apop, ValueDecreasesInSpot) {
  // Put value is non-increasing in the stock price.
  const auto p = small_params();
  const auto v = run_apop(p, Algorithm::kTrap);
  for (std::size_t x = 1; x < v.size(); ++x) {
    ASSERT_LE(v[x], v[x - 1] + 1e-9);
  }
}

TEST(Apop, AmericanWorthAtLeastLongerDatedIntrinsic) {
  // More time to expiry cannot reduce the American option's value.
  auto p_short = small_params();
  p_short.steps = 512;
  p_short.maturity = 0.5;
  const auto v_short = run_apop(p_short, Algorithm::kTrap);
  const auto v_long = run_apop(small_params(), Algorithm::kTrap);
  // Compare near the money (the interesting region).
  const std::size_t mid = static_cast<std::size_t>(small_params().grid / 2);
  EXPECT_GE(v_long[mid] + 1e-9, v_short[mid]);
}

TEST(Apop, DeepItmEqualsIntrinsic) {
  // Far in the money, early exercise is optimal: value == payoff.
  const auto p = small_params();
  const auto v = run_apop(p, Algorithm::kTrap);
  EXPECT_NEAR(v[5], p.payoff(5), 1e-9);
}

}  // namespace
}  // namespace pochoir
