// Tests for the work-stealing runtime (the Cilk substrate).
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <numeric>
#include <vector>

#include "runtime/parallel.hpp"
#include "runtime/scheduler.hpp"
#include "runtime/task_deque.hpp"

namespace pochoir::rt {
namespace {

TEST(TaskDeque, OwnerPushPopLifo) {
  TaskDeque dq(4);  // force growth
  std::vector<Task*> fake;
  for (int i = 0; i < 100; ++i) {
    fake.push_back(reinterpret_cast<Task*>(static_cast<std::uintptr_t>(i + 1)));
  }
  for (Task* t : fake) dq.push(t);
  for (int i = 99; i >= 0; --i) EXPECT_EQ(dq.pop(), fake[static_cast<std::size_t>(i)]);
  EXPECT_EQ(dq.pop(), nullptr);
}

TEST(TaskDeque, StealTakesOldest) {
  TaskDeque dq;
  auto* t1 = reinterpret_cast<Task*>(std::uintptr_t{1});
  auto* t2 = reinterpret_cast<Task*>(std::uintptr_t{2});
  dq.push(t1);
  dq.push(t2);
  EXPECT_EQ(dq.steal(), t1);
  EXPECT_EQ(dq.pop(), t2);
  EXPECT_EQ(dq.steal(), nullptr);
}

TEST(ParallelFor, SumsRange) {
  std::vector<std::int64_t> data(100000, 1);
  std::atomic<std::int64_t> sum{0};
  parallel_for(0, static_cast<std::int64_t>(data.size()), 0,
               [&](std::int64_t i) {
                 sum.fetch_add(data[static_cast<std::size_t>(i)],
                               std::memory_order_relaxed);
               });
  EXPECT_EQ(sum.load(), 100000);
}

TEST(ParallelFor, EmptyAndSingle) {
  int count = 0;
  parallel_for(5, 5, 0, [&](std::int64_t) { ++count; });
  EXPECT_EQ(count, 0);
  parallel_for(5, 6, 0, [&](std::int64_t i) {
    EXPECT_EQ(i, 5);
    ++count;
  });
  EXPECT_EQ(count, 1);
}

TEST(ParallelFor, EveryIndexExactlyOnce) {
  constexpr std::int64_t n = 50000;
  std::vector<std::atomic<int>> hits(n);
  parallel_for(0, n, 7, [&](std::int64_t i) {
    hits[static_cast<std::size_t>(i)].fetch_add(1);
  });
  for (std::int64_t i = 0; i < n; ++i) {
    ASSERT_EQ(hits[static_cast<std::size_t>(i)].load(), 1) << "index " << i;
  }
}

TEST(ParallelInvoke, BothRun) {
  std::atomic<int> flags{0};
  parallel_invoke([&] { flags.fetch_or(1); }, [&] { flags.fetch_or(2); });
  EXPECT_EQ(flags.load(), 3);
  flags = 0;
  parallel_invoke([&] { flags.fetch_or(1); }, [&] { flags.fetch_or(2); },
                  [&] { flags.fetch_or(4); });
  EXPECT_EQ(flags.load(), 7);
}

std::int64_t parallel_fib(int n) {
  if (n < 2) return n;
  if (n < 12) {  // serial cutoff
    return parallel_fib(n - 1) + parallel_fib(n - 2);
  }
  std::int64_t a = 0, b = 0;
  parallel_invoke([&] { a = parallel_fib(n - 1); },
                  [&] { b = parallel_fib(n - 2); });
  return a + b;
}

TEST(Scheduler, NestedForkJoinFib) {
  EXPECT_EQ(parallel_fib(24), 46368);
}

TEST(Scheduler, DeepNestedParallelFor) {
  std::atomic<std::int64_t> total{0};
  parallel_for(0, 64, 1, [&](std::int64_t) {
    parallel_for(0, 64, 1, [&](std::int64_t) {
      total.fetch_add(1, std::memory_order_relaxed);
    });
  });
  EXPECT_EQ(total.load(), 64 * 64);
}

TEST(Scheduler, ManySmallGroups) {
  for (int round = 0; round < 200; ++round) {
    std::atomic<int> n{0};
    TaskGroup g;
    for (int i = 0; i < 8; ++i) g.spawn([&] { n.fetch_add(1); });
    g.wait();
    ASSERT_EQ(n.load(), 8);
  }
}

TEST(Policies, SerialPolicyRunsInline) {
  SerialPolicy pol;
  std::vector<int> order;
  pol.invoke2([&] { order.push_back(1); }, [&] { order.push_back(2); });
  pol.for_all(3, [&](std::int64_t i) { order.push_back(10 + static_cast<int>(i)); });
  ASSERT_EQ(order.size(), 5u);
  EXPECT_EQ(order[0], 1);
  EXPECT_EQ(order[1], 2);
  EXPECT_EQ(order[2], 10);
  EXPECT_EQ(order[4], 12);
}

TEST(Policies, ParallelPolicyCompletesAll) {
  ParallelPolicy pol;
  std::atomic<int> n{0};
  pol.for_all(100, [&](std::int64_t) { n.fetch_add(1); });
  EXPECT_EQ(n.load(), 100);
  std::atomic<int> m{0};
  pol.for_range(10, 110, 0, [&](std::int64_t) { m.fetch_add(1); });
  EXPECT_EQ(m.load(), 100);
}

}  // namespace
}  // namespace pochoir::rt
