// Randomized cross-checking: arbitrary stencil shapes (random slopes,
// depths, asymmetric offsets), random boundary conditions and coarsenings —
// TRAP must agree with the serial loop baseline bit-for-bit on every trial.
// This is the broadest net over the decomposition: any wrong cut, ordering
// or interior test shows up as a value difference.
#include <gtest/gtest.h>

#include <vector>

#include "core/boundary.hpp"
#include "core/stencil.hpp"
#include "support/rng.hpp"

namespace pochoir {
namespace {

struct FuzzTap {
  std::int64_t dt;
  std::int64_t dx;
  std::int64_t dy;
  double coeff;
};

TEST(ShapeFuzz, RandomShapes2DMatchLoops) {
  Rng rng(20260610);
  for (int trial = 0; trial < 25; ++trial) {
    // Random shape: depth 1-2, up to 7 read taps with offsets in [-2, 2].
    const std::int64_t depth = 1 + rng.next_below(2);
    const std::int64_t home_dt = 1;
    std::vector<FuzzTap> taps;
    const int ntaps = 2 + static_cast<int>(rng.next_below(6));
    std::vector<ShapeCell<2>> cells;
    cells.push_back({home_dt, {0, 0}});
    for (int k = 0; k < ntaps; ++k) {
      FuzzTap tap;
      tap.dt = home_dt - 1 - rng.next_below(depth);
      tap.dx = rng.next_below(5) - 2;
      tap.dy = rng.next_below(5) - 2;
      tap.coeff = 0.05 + 0.1 * rng.next_double();
      taps.push_back(tap);
      cells.push_back({tap.dt, {tap.dx, tap.dy}});
    }
    const Shape<2> shape(cells);

    const std::int64_t n = 12 + rng.next_below(28);
    const std::int64_t steps = 3 + rng.next_below(14);
    Options<2> opts;
    opts.dt_threshold = 1 + rng.next_below(4);
    opts.dx_threshold = {1 + rng.next_below(8), 1 + rng.next_below(8)};

    BoundaryFn<double, 2> boundary;
    switch (rng.next_below(3)) {
      case 0:
        boundary = periodic_boundary<double, 2>();
        break;
      case 1:
        boundary = dirichlet_boundary<double, 2>(0.25);
        break;
      default:
        boundary = neumann_boundary<double, 2>();
        break;
    }

    auto make = [&] {
      Array<double, 2> u({n, n}, shape.depth());
      u.register_boundary(boundary);
      Rng init(1000 + static_cast<std::uint64_t>(trial));
      for (std::int64_t lvl = 0; lvl < shape.depth(); ++lvl) {
        u.fill_time(lvl, [&](const std::array<std::int64_t, 2>&) {
          return init.uniform(-1.0, 1.0);
        });
      }
      return u;
    };

    // The kernel: a random linear combination of the taps, damped so values
    // stay finite.
    auto kernel = [taps](std::int64_t t, std::int64_t x, std::int64_t y,
                         auto u) {
      double acc = 0;
      for (const FuzzTap& tap : taps) {
        acc += tap.coeff * u(t + tap.dt, x + tap.dx, y + tap.dy);
      }
      u(t + 1, x, y) = 0.5 * acc;
    };

    auto u1 = make();
    Stencil<2, double> s1(shape, opts);
    s1.register_arrays(u1);
    s1.run(steps, kernel);

    auto u2 = make();
    Stencil<2, double> s2(shape, opts);
    s2.register_arrays(u2);
    s2.run(Algorithm::kLoopsSerial, steps, kernel);

    const std::int64_t rt = s1.result_time();
    ASSERT_EQ(rt, s2.result_time());
    for (std::int64_t x = 0; x < n; ++x) {
      for (std::int64_t y = 0; y < n; ++y) {
        ASSERT_EQ(u1.interior(rt, x, y), u2.interior(rt, x, y))
            << "trial " << trial << " point (" << x << "," << y
            << ") shape sigma=(" << shape.sigma(0) << "," << shape.sigma(1)
            << ") depth=" << shape.depth();
      }
    }
  }
}

TEST(ShapeFuzz, RandomShapes1DAllAlgorithmsAgree) {
  Rng rng(424242);
  for (int trial = 0; trial < 30; ++trial) {
    const std::int64_t depth = 1 + rng.next_below(3);  // up to depth 3
    std::vector<ShapeCell<1>> cells;
    cells.push_back({1, {0}});
    const int ntaps = 2 + static_cast<int>(rng.next_below(4));
    std::vector<FuzzTap> taps;
    for (int k = 0; k < ntaps; ++k) {
      FuzzTap tap;
      tap.dt = -rng.next_below(depth);
      tap.dx = rng.next_below(7) - 3;  // slopes up to 3
      tap.dy = 0;
      tap.coeff = 0.1 + 0.1 * rng.next_double();
      taps.push_back(tap);
      cells.push_back({tap.dt, {tap.dx}});
    }
    const Shape<1> shape(cells);

    const std::int64_t n = 16 + rng.next_below(100);
    const std::int64_t steps = 2 + rng.next_below(24);
    Options<1> opts;
    opts.dt_threshold = 1 + rng.next_below(5);
    opts.dx_threshold = {1 + rng.next_below(12)};

    auto kernel = [taps](std::int64_t t, std::int64_t x, auto u) {
      double acc = 0;
      for (const FuzzTap& tap : taps) {
        acc += tap.coeff * u(t + tap.dt, x + tap.dx);
      }
      u(t + 1, x) = 0.4 * acc;
    };

    auto run_one = [&](Algorithm alg) {
      Array<double, 1> u({n}, shape.depth());
      u.register_boundary(periodic_boundary<double, 1>());
      Rng init(7 + static_cast<std::uint64_t>(trial));
      for (std::int64_t lvl = 0; lvl < shape.depth(); ++lvl) {
        u.fill_time(lvl, [&](const std::array<std::int64_t, 1>&) {
          return init.uniform(-1.0, 1.0);
        });
      }
      Stencil<1, double> st(shape, opts);
      st.register_arrays(u);
      st.run(alg, steps, kernel);
      std::vector<double> out(static_cast<std::size_t>(n));
      for (std::int64_t x = 0; x < n; ++x) {
        out[static_cast<std::size_t>(x)] = u.interior(st.result_time(), x);
      }
      return out;
    };

    const auto trap = run_one(Algorithm::kTrap);
    const auto strap = run_one(Algorithm::kStrap);
    const auto loops = run_one(Algorithm::kLoopsSerial);
    ASSERT_EQ(trap, loops) << "trial " << trial << " sigma=" << shape.sigma(0)
                           << " depth=" << shape.depth();
    ASSERT_EQ(strap, loops) << "trial " << trial;
  }
}

}  // namespace
}  // namespace pochoir
