// Lattice Boltzmann (D3Q19): conservation laws and algorithm equivalence
// for the paper's many-state struct-cell benchmark.
#include <gtest/gtest.h>

#include <cmath>

#include "core/boundary.hpp"
#include "core/stencil.hpp"
#include "stencils/lbm.hpp"

namespace pochoir {
namespace {

using stencils::LbmCell;

TEST(Lbm, VelocitySetIsBalanced) {
  // Velocities sum to zero; weights sum to one.
  int sum[3] = {0, 0, 0};
  double wsum = 0;
  for (int q = 0; q < stencils::lbm_q; ++q) {
    for (int d = 0; d < 3; ++d) sum[d] += stencils::lbm_e[static_cast<std::size_t>(q)][d];
    wsum += stencils::lbm_w[static_cast<std::size_t>(q)];
  }
  EXPECT_EQ(sum[0], 0);
  EXPECT_EQ(sum[1], 0);
  EXPECT_EQ(sum[2], 0);
  EXPECT_NEAR(wsum, 1.0, 1e-15);
}

TEST(Lbm, EquilibriumMomentsMatch) {
  const std::array<double, 3> vel = {0.05, -0.02, 0.01};
  double rho = 0;
  std::array<double, 3> mom{};
  for (int q = 0; q < stencils::lbm_q; ++q) {
    const double f = stencils::lbm_feq(q, 1.2, vel);
    rho += f;
    for (int d = 0; d < 3; ++d) {
      mom[static_cast<std::size_t>(d)] +=
          f * stencils::lbm_e[static_cast<std::size_t>(q)][static_cast<std::size_t>(d)];
    }
  }
  EXPECT_NEAR(rho, 1.2, 1e-12);
  for (int d = 0; d < 3; ++d) {
    EXPECT_NEAR(mom[static_cast<std::size_t>(d)],
                1.2 * vel[static_cast<std::size_t>(d)], 1e-12);
  }
}

TEST(Lbm, MassAndMomentumConservedOnTorus) {
  const std::array<std::int64_t, 3> ext = {12, 12, 8};
  Array<LbmCell, 3> grid(ext, 1);
  grid.register_boundary(periodic_boundary<LbmCell, 3>());
  stencils::lbm_init(grid, 0);
  auto totals = [&](std::int64_t t) {
    double mass = 0;
    std::array<double, 3> mom{};
    for (std::int64_t x = 0; x < ext[0]; ++x) {
      for (std::int64_t y = 0; y < ext[1]; ++y) {
        for (std::int64_t z = 0; z < ext[2]; ++z) {
          const LbmCell& c = grid.at(t, {x, y, z});
          for (int q = 0; q < stencils::lbm_q; ++q) {
            const double f = c.f[static_cast<std::size_t>(q)];
            mass += f;
            for (int d = 0; d < 3; ++d) {
              mom[static_cast<std::size_t>(d)] +=
                  f * stencils::lbm_e[static_cast<std::size_t>(q)][static_cast<std::size_t>(d)];
            }
          }
        }
      }
    }
    return std::make_pair(mass, mom);
  };
  const auto [mass0, mom0] = totals(0);
  Stencil<3, LbmCell> st(stencils::lbm_shape());
  st.register_arrays(grid);
  st.run(12, stencils::lbm_kernel(0.8));
  const auto [mass1, mom1] = totals(st.result_time());
  EXPECT_NEAR(mass1, mass0, 1e-9 * std::abs(mass0));
  for (int d = 0; d < 3; ++d) {
    EXPECT_NEAR(mom1[static_cast<std::size_t>(d)],
                mom0[static_cast<std::size_t>(d)], 1e-9 * std::abs(mass0));
  }
}

TEST(Lbm, TrapMatchesLoops) {
  const std::array<std::int64_t, 3> ext = {10, 8, 6};
  auto make = [&] {
    Array<LbmCell, 3> g(ext, 1);
    g.register_boundary(periodic_boundary<LbmCell, 3>());
    stencils::lbm_init(g, 0);
    return g;
  };
  auto g1 = make();
  auto g2 = make();
  Options<3> opts;
  opts.dt_threshold = 2;
  opts.dx_threshold = {2, 2, 2};
  Stencil<3, LbmCell> s1(stencils::lbm_shape(), opts);
  s1.register_arrays(g1);
  s1.run(7, stencils::lbm_kernel(0.7));
  Stencil<3, LbmCell> s2(stencils::lbm_shape(), opts);
  s2.register_arrays(g2);
  s2.run(Algorithm::kLoopsSerial, 7, stencils::lbm_kernel(0.7));
  for (std::int64_t x = 0; x < ext[0]; ++x) {
    for (std::int64_t y = 0; y < ext[1]; ++y) {
      for (std::int64_t z = 0; z < ext[2]; ++z) {
        const LbmCell& a = g1.at(s1.result_time(), {x, y, z});
        const LbmCell& b = g2.at(s2.result_time(), {x, y, z});
        for (int q = 0; q < stencils::lbm_q; ++q) {
          ASSERT_EQ(a.f[static_cast<std::size_t>(q)],
                    b.f[static_cast<std::size_t>(q)]);
        }
      }
    }
  }
}

TEST(Lbm, ShearDecaysTowardUniformFlow) {
  // With BGK relaxation the shear perturbation decays (viscous damping).
  const std::array<std::int64_t, 3> ext = {16, 16, 4};
  Array<LbmCell, 3> grid(ext, 1);
  grid.register_boundary(periodic_boundary<LbmCell, 3>());
  stencils::lbm_init(grid, 0);
  auto shear_energy = [&](std::int64_t t) {
    double e = 0;
    for (std::int64_t x = 0; x < ext[0]; ++x) {
      for (std::int64_t y = 0; y < ext[1]; ++y) {
        for (std::int64_t z = 0; z < ext[2]; ++z) {
          const LbmCell& c = grid.at(t, {x, y, z});
          double rho = 0, ux = 0;
          for (int q = 0; q < stencils::lbm_q; ++q) {
            rho += c.f[static_cast<std::size_t>(q)];
            ux += c.f[static_cast<std::size_t>(q)] *
                  stencils::lbm_e[static_cast<std::size_t>(q)][0];
          }
          e += (ux / rho) * (ux / rho);
        }
      }
    }
    return e;
  };
  const double e0 = shear_energy(0);
  Stencil<3, LbmCell> st(stencils::lbm_shape());
  st.register_arrays(grid);
  st.run(60, stencils::lbm_kernel(0.6));
  EXPECT_LT(shear_energy(st.result_time()), e0);
}

}  // namespace
}  // namespace pochoir
