// LCS and PSA: the dynamic-programming-as-stencil benchmarks.  The stencil
// execution (any algorithm, any schedule) must reproduce the classic
// row-sweep DP exactly.
#include <gtest/gtest.h>

#include "core/boundary.hpp"
#include "core/stencil.hpp"
#include "stencils/common.hpp"
#include "stencils/lcs.hpp"
#include "stencils/psa.hpp"

namespace pochoir {
namespace {

using stencils::LcsCell;
using stencils::PsaCell;

LcsCell run_lcs_stencil(const std::vector<int>& a, const std::vector<int>& b,
                        Algorithm alg) {
  const auto rows = static_cast<std::int64_t>(a.size());
  const auto cols = static_cast<std::int64_t>(b.size());
  Array<LcsCell, 1> grid({rows + 1}, 2);
  grid.register_boundary(zero_boundary<LcsCell, 1>());
  grid.fill_time(0, [](const auto&) { return 0; });
  grid.fill_time(1, [](const auto&) { return 0; });
  Stencil<1, LcsCell> st(stencils::lcs_shape());
  st.register_arrays(grid);
  st.run(alg, rows + cols - 1, stencils::lcs_kernel(a, b));
  return grid.interior(rows + cols, rows);
}

TEST(Lcs, TinyKnownAnswer) {
  // LCS("ABCBDAB", "BDCABA") = 4 (e.g. "BCBA"), with A=0,B=1,C=2,D=3.
  const std::vector<int> a = {0, 1, 2, 1, 3, 0, 1};
  const std::vector<int> b = {1, 3, 2, 0, 1, 0};
  EXPECT_EQ(stencils::lcs_reference(a, b), 4);
  EXPECT_EQ(run_lcs_stencil(a, b, Algorithm::kTrap), 4);
}

TEST(Lcs, IdenticalAndDisjointSequences) {
  const std::vector<int> s = {1, 2, 3, 4, 5};
  EXPECT_EQ(run_lcs_stencil(s, s, Algorithm::kTrap), 5);
  const std::vector<int> t = {6, 7, 8, 9, 10};
  EXPECT_EQ(run_lcs_stencil(s, t, Algorithm::kTrap), 0);
}

TEST(Lcs, RandomSequencesMatchReferenceAllAlgorithms) {
  for (std::uint64_t seed : {1u, 2u, 3u}) {
    const auto a = stencils::random_sequence(120, 4, seed);
    const auto b = stencils::random_sequence(140, 4, seed + 100);
    const LcsCell want = stencils::lcs_reference(a, b);
    EXPECT_EQ(run_lcs_stencil(a, b, Algorithm::kTrap), want);
    EXPECT_EQ(run_lcs_stencil(a, b, Algorithm::kStrap), want);
    EXPECT_EQ(run_lcs_stencil(a, b, Algorithm::kLoopsSerial), want);
  }
}

TEST(Lcs, UnequalLengths) {
  const auto a = stencils::random_sequence(37, 3, 9);
  const auto b = stencils::random_sequence(211, 3, 10);
  EXPECT_EQ(run_lcs_stencil(a, b, Algorithm::kTrap),
            stencils::lcs_reference(a, b));
}

std::int32_t run_psa_stencil(const std::vector<int>& a,
                             const std::vector<int>& b, Algorithm alg) {
  const auto rows = static_cast<std::int64_t>(a.size());
  const auto cols = static_cast<std::int64_t>(b.size());
  Array<PsaCell, 1> grid({rows + 1}, 2);
  grid.register_boundary(dirichlet_boundary<PsaCell, 1>(
      {stencils::psa_neg_inf, stencils::psa_neg_inf, stencils::psa_neg_inf}));
  const PsaCell border{stencils::psa_neg_inf, stencils::psa_neg_inf,
                       stencils::psa_neg_inf};
  grid.fill_time(0, [&](const std::array<std::int64_t, 1>& i) {
    return i[0] == 0 ? PsaCell{0, stencils::psa_neg_inf, stencils::psa_neg_inf}
                     : border;
  });
  grid.fill_time(1, [&](const std::array<std::int64_t, 1>& i) {
    // Antidiagonal 1: (0,1) and (1,0) — the first gap cells.
    if (i[0] == 0) {
      return PsaCell{stencils::psa_neg_inf, stencils::psa_neg_inf, -3};
    }
    if (i[0] == 1) {
      return PsaCell{stencils::psa_neg_inf, -3, stencils::psa_neg_inf};
    }
    return border;
  });
  Stencil<1, PsaCell> st(stencils::psa_shape());
  st.register_arrays(grid);
  st.run(alg, rows + cols - 1, stencils::psa_kernel(a, b));
  return stencils::psa_score(grid.interior(rows + cols, rows));
}

TEST(Psa, IdenticalSequencesScoreAllMatches) {
  const std::vector<int> s = {0, 1, 2, 3, 0, 1, 2, 3};
  EXPECT_EQ(stencils::psa_reference(s, s), 2 * 8);
  EXPECT_EQ(run_psa_stencil(s, s, Algorithm::kTrap), 16);
}

TEST(Psa, GapPenaltyKnownCase) {
  // a = XY, b = X: best is match X (+2) then gap-open for Y: 2 - 3 = -1.
  const std::vector<int> a = {0, 1};
  const std::vector<int> b = {0};
  EXPECT_EQ(stencils::psa_reference(a, b), -1);
  EXPECT_EQ(run_psa_stencil(a, b, Algorithm::kTrap), -1);
}

TEST(Psa, RandomSequencesMatchReference) {
  for (std::uint64_t seed : {11u, 12u, 13u}) {
    const auto a = stencils::random_sequence(90, 4, seed);
    const auto b = stencils::random_sequence(110, 4, seed + 50);
    const std::int32_t want = stencils::psa_reference(a, b);
    EXPECT_EQ(run_psa_stencil(a, b, Algorithm::kTrap), want);
    EXPECT_EQ(run_psa_stencil(a, b, Algorithm::kStrap), want);
    EXPECT_EQ(run_psa_stencil(a, b, Algorithm::kLoopsParallel), want);
  }
}

TEST(Psa, AffineGapPreferredOverRepeatedOpens) {
  // One long gap must beat two short ones under affine scoring.
  // a aligns to b with a 3-symbol insertion.
  const std::vector<int> a = {0, 1, 2, 3, 0, 1};
  const std::vector<int> b = {0, 1, 0, 1};
  const std::int32_t want = stencils::psa_reference(a, b);
  EXPECT_EQ(run_psa_stencil(a, b, Algorithm::kTrap), want);
}

}  // namespace
}  // namespace pochoir
