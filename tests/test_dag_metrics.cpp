// Tests for the work/span analyzer (the Cilkview substrate of Figure 9).
#include <gtest/gtest.h>

#include "analysis/dag_metrics.hpp"
#include "core/options.hpp"
#include "core/walk_context.hpp"
#include "stencils/heat.hpp"

namespace pochoir {
namespace {

WalkContext<2> context2d(std::int64_t n, std::int64_t dt, std::int64_t dx) {
  Options<2> opts;
  opts.dt_threshold = dt;
  opts.dx_threshold = {dx, dx};
  return WalkContext<2>::make(stencils::heat_shape<2>(), {n, n}, opts);
}

TEST(DagMetrics, WorkEqualsVolumePlusOverhead) {
  const auto ctx = context2d(64, 2, 4);
  DagCosts costs;
  costs.node = 0;
  costs.spawn = 0;
  const DagMetrics m = analyze_trap(ctx, 0, 32, costs);
  EXPECT_DOUBLE_EQ(m.work, 64.0 * 64.0 * 32.0);
  EXPECT_GT(m.span, 0.0);
  EXPECT_LE(m.span, m.work);
}

TEST(DagMetrics, StrapSameWorkMoreSpan) {
  const auto ctx = context2d(128, 1, 2);
  DagCosts costs;
  costs.node = 0;
  costs.spawn = 0;
  const DagMetrics trap = analyze_trap(ctx, 0, 64, costs);
  const DagMetrics strap = analyze_strap(ctx, 0, 64, costs);
  EXPECT_DOUBLE_EQ(trap.work, strap.work);
  // TRAP's hyperspace cuts must not have a longer critical path.
  EXPECT_LE(trap.span, strap.span * 1.0000001);
}

TEST(DagMetrics, TrapBeatsStrapParallelismIn2D) {
  // The headline of §3: for d >= 2 hyperspace cuts give asymptotically more
  // parallelism.  At N=512 the ratio should already be comfortably > 1.5.
  const auto ctx = context2d(512, 1, 2);
  const DagMetrics trap = analyze_trap(ctx, 0, 128);
  const DagMetrics strap = analyze_strap(ctx, 0, 128);
  EXPECT_GT(trap.parallelism(), 1.5 * strap.parallelism());
}

TEST(DagMetrics, ParallelismGrowsWithGridSize) {
  double prev = 0;
  for (std::int64_t n : {64, 128, 256, 512}) {
    const auto ctx = context2d(n, 1, 2);
    const double p = analyze_trap(ctx, 0, n / 2).parallelism();
    EXPECT_GT(p, prev);
    prev = p;
  }
}

TEST(DagMetrics, SerialBaseCaseHasUnitParallelism) {
  // Coarsening thresholds so large nothing is ever cut: one base case.
  Options<2> opts;
  opts.dt_threshold = 1000;
  opts.dx_threshold = {100000, 100000};
  const auto ctx = WalkContext<2>::make(stencils::heat_shape<2>(), {32, 32}, opts);
  const DagMetrics m = analyze_trap(ctx, 0, 16);
  EXPECT_DOUBLE_EQ(m.parallelism(), 1.0);
}

TEST(DagMetrics, LoopsModel) {
  const auto ctx = context2d(256, 1, 1);
  DagCosts costs;
  costs.spawn = 0;
  const DagMetrics m = analyze_loops(ctx, 0, 10, costs);
  EXPECT_DOUBLE_EQ(m.work, 10.0 * 256 * 256);
  EXPECT_DOUBLE_EQ(m.span, 10.0 * 256);       // one slab per parallel step
  EXPECT_DOUBLE_EQ(m.parallelism(), 256.0);   // ~N with grain-1 outer loop
}

TEST(DagMetrics, CoarseningReducesOverheadWork) {
  // With per-node costs, an uncoarsened recursion does strictly more
  // overhead work than a coarsened one (the 36x effect of §4 in miniature).
  const auto fine = context2d(128, 1, 1);
  const auto coarse = context2d(128, 5, 16);
  DagCosts costs;
  costs.node = 10;
  costs.spawn = 10;
  const double fine_work = analyze_trap(fine, 0, 64, costs).work;
  const double coarse_work = analyze_trap(coarse, 0, 64, costs).work;
  EXPECT_GT(fine_work, 2 * coarse_work);
}

TEST(DagMetrics, DeterministicAcrossCalls) {
  const auto ctx = context2d(128, 2, 4);
  const DagMetrics a = analyze_trap(ctx, 0, 32);
  const DagMetrics b = analyze_trap(ctx, 0, 32);
  EXPECT_DOUBLE_EQ(a.work, b.work);
  EXPECT_DOUBLE_EQ(a.span, b.span);
}

TEST(DagMetrics, OneDimensionalTrapStrapParity) {
  // For d = 1 the paper proves both algorithms have the same asymptotic
  // parallelism; the measured ratio should be close to 1.
  Options<1> opts;
  opts.dt_threshold = 1;
  opts.dx_threshold = {2};
  const auto ctx =
      WalkContext<1>::make(stencils::heat_shape<1>(), {4096}, opts);
  const double pt = analyze_trap(ctx, 0, 1024).parallelism();
  const double ps = analyze_strap(ctx, 0, 1024).parallelism();
  EXPECT_GT(pt / ps, 0.8);
  EXPECT_LT(pt / ps, 2.0);
}

}  // namespace
}  // namespace pochoir
