// Conway's Game of Life: known patterns evolve correctly under TRAP.
#include <gtest/gtest.h>

#include <set>
#include <utility>

#include "core/boundary.hpp"
#include "core/stencil.hpp"
#include "stencils/common.hpp"
#include "stencils/life.hpp"

namespace pochoir {
namespace {

using stencils::LifeCell;

Array<LifeCell, 2> board(std::int64_t n,
                         const std::set<std::pair<int, int>>& alive) {
  Array<LifeCell, 2> u({n, n}, 1);
  u.register_boundary(periodic_boundary<LifeCell, 2>());
  u.fill_time(0, [&](const std::array<std::int64_t, 2>& i) -> LifeCell {
    return alive.count({static_cast<int>(i[0]), static_cast<int>(i[1])}) ? 1 : 0;
  });
  return u;
}

std::set<std::pair<int, int>> cells_at(const Array<LifeCell, 2>& u,
                                       std::int64_t t) {
  std::set<std::pair<int, int>> alive;
  for (std::int64_t x = 0; x < u.extent(0); ++x) {
    for (std::int64_t y = 0; y < u.extent(1); ++y) {
      if (u.at(t, {x, y}) != 0) {
        alive.insert({static_cast<int>(x), static_cast<int>(y)});
      }
    }
  }
  return alive;
}

TEST(Life, BlinkerOscillatesWithPeriodTwo) {
  const std::set<std::pair<int, int>> horizontal = {{8, 7}, {8, 8}, {8, 9}};
  const std::set<std::pair<int, int>> vertical = {{7, 8}, {8, 8}, {9, 8}};
  auto u = board(17, horizontal);
  Stencil<2, LifeCell> st(stencils::life_shape());
  st.register_arrays(u);
  st.run(1, stencils::life_kernel());
  EXPECT_EQ(cells_at(u, st.result_time()), vertical);
  st.run(1, stencils::life_kernel());
  EXPECT_EQ(cells_at(u, st.result_time()), horizontal);
}

TEST(Life, BlockIsStill) {
  const std::set<std::pair<int, int>> block = {{4, 4}, {4, 5}, {5, 4}, {5, 5}};
  auto u = board(12, block);
  Stencil<2, LifeCell> st(stencils::life_shape());
  st.register_arrays(u);
  st.run(7, stencils::life_kernel());
  EXPECT_EQ(cells_at(u, st.result_time()), block);
}

TEST(Life, GliderTranslatesAcrossTorus) {
  // The glider moves one cell diagonally every 4 generations, wrapping.
  const std::set<std::pair<int, int>> glider = {
      {1, 2}, {2, 3}, {3, 1}, {3, 2}, {3, 3}};
  const std::int64_t n = 16;
  auto u = board(n, glider);
  Stencil<2, LifeCell> st(stencils::life_shape());
  st.register_arrays(u);
  st.run(4 * static_cast<std::int64_t>(n), stencils::life_kernel());
  // After 4n generations the glider has shifted by (n, n): back to start.
  EXPECT_EQ(cells_at(u, st.result_time()), glider);
}

TEST(Life, TrapMatchesLoopsOnRandomSoup) {
  const std::int64_t n = 48;
  Rng rng(2024);
  auto init = [&](std::uint64_t seed) {
    Rng local(seed);
    Array<LifeCell, 2> u({n, n}, 1);
    u.register_boundary(periodic_boundary<LifeCell, 2>());
    u.fill_time(0, [&](const std::array<std::int64_t, 2>&) -> LifeCell {
      return local.next_below(3) == 0 ? 1 : 0;
    });
    return u;
  };
  auto u1 = init(5);
  auto u2 = init(5);
  Stencil<2, LifeCell> s1(stencils::life_shape());
  s1.register_arrays(u1);
  s1.run(33, stencils::life_kernel());
  Stencil<2, LifeCell> s2(stencils::life_shape());
  s2.register_arrays(u2);
  s2.run(Algorithm::kLoopsSerial, 33, stencils::life_kernel());
  EXPECT_EQ(cells_at(u1, s1.result_time()), cells_at(u2, s2.result_time()));
  (void)rng;
}

TEST(Life, ShapeHasSlopeOneAndNineCells) {
  const auto s = stencils::life_shape();
  EXPECT_EQ(s.cells().size(), 10u);  // home + 3x3 neighborhood
  EXPECT_EQ(s.sigma(0), 1);
  EXPECT_EQ(s.sigma(1), 1);
  EXPECT_EQ(s.depth(), 1);
}

}  // namespace
}  // namespace pochoir
