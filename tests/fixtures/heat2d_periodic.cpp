// Phase-1 Pochoir source used by the end-to-end compiler test.
//
// This program compiles and runs against the template library as-is
// (Phase 1), and is also fed through pochoirc; the Pochoir Guarantee says
// the postsource must compile and produce the same results (Phase 2).
#include <pochoir/dsl.hpp>

#include <cstdio>

#define mod(r, m) ((r) % (m) + ((r) % (m) < 0 ? (m) : 0))

Pochoir_Boundary_2D(heat_bv, a, t, x, y)
  return a.get(t, mod(x, a.size(1)), mod(y, a.size(0)));
Pochoir_Boundary_End

int main() {
  const int X = 80, Y = 60, T = 30;
  const double CX = 0.11, CY = 0.09;
  Pochoir_Shape_2D heat_shape[] = {{1, 0, 0}, {0, 0, 0}, {0, 1, 0},
                                   {0, -1, 0}, {0, 0, -1}, {0, 0, 1}};
  Pochoir_2D heat(heat_shape);
  Pochoir_Array_2D(double) u(X, Y);
  u.Register_Boundary(heat_bv);
  heat.Register_Array(u);
  Pochoir_Kernel_2D(heat_fn, t, x, y)
    u(t + 1, x, y) = CX * (u(t, x + 1, y) - 2 * u(t, x, y) + u(t, x - 1, y))
                   + CY * (u(t, x, y + 1) - 2 * u(t, x, y) + u(t, x, y - 1))
                   + u(t, x, y);
  Pochoir_Kernel_End
  for (int x = 0; x < X; ++x) {
    for (int y = 0; y < Y; ++y) {
      u(0, x, y) = 0.001 * ((x * 37 + y * 17) % 101) - 0.02 * ((x + y) % 7);
    }
  }
  heat.Run(T, heat_fn);
  double sum = 0;
  for (int x = 0; x < X; ++x) {
    for (int y = 0; y < Y; ++y) {
      sum += u(T, x, y);
    }
  }
  std::printf("checksum %.17g\n", sum);
  std::printf("probe %.17g %.17g %.17g\n", static_cast<double>(u(T, 0, 0)),
              static_cast<double>(u(T, X / 2, Y / 2)),
              static_cast<double>(u(T, X - 1, Y - 1)));
  return 0;
}
