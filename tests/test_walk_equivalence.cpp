// Walk-equivalence and allocation-freedom tests for the trapezoidal
// walkers.  (1) Fuzz: over random shapes, grids and coarsening thresholds,
// the TRAP and STRAP walkers must visit exactly the same (t, idx) multiset
// as the plain loop nest — every space-time point once.  (2) The
// stack-resident SubzoidLevels buckets must agree with the reference
// enumeration.  (3) The serial walk performs zero heap allocations,
// verified with a counting operator new hook — the whole decomposition
// (planning, bucketing, recursion) lives on the stack.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <map>
#include <new>
#include <set>
#include <tuple>
#include <vector>

#include "core/strap.hpp"
#include "core/trap.hpp"
#include "core/walk_context.hpp"
#include "geometry/cuts.hpp"
#include "geometry/zoid.hpp"
#include "runtime/parallel.hpp"
#include "support/math_util.hpp"
#include "support/rng.hpp"

namespace {

std::atomic<bool> g_counting{false};
std::atomic<std::int64_t> g_allocs{0};

}  // namespace

// Counting global allocator hooks: active only while g_counting is set, so
// gtest/harness allocations outside the measured region are ignored.
void* operator new(std::size_t size) {
  if (g_counting.load(std::memory_order_relaxed)) {
    g_allocs.fetch_add(1, std::memory_order_relaxed);
  }
  if (void* p = std::malloc(size != 0 ? size : 1)) return p;
  throw std::bad_alloc();
}

void* operator new[](std::size_t size) { return ::operator new(size); }

void operator delete(void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace pochoir {
namespace {

template <int D>
using PointKey = std::pair<std::int64_t, std::array<std::int64_t, D>>;

/// Records every point a walker base case touches, normalized into true
/// (mod-grid) coordinates exactly as the stencil's boundary clone does.
template <int D>
struct PointRecorder {
  const WalkContext<D>* ctx;
  std::map<PointKey<D>, int>* counts;

  void operator()(const Zoid<D>& z) const {
    for_each_point(z, [&](std::int64_t t,
                          const std::array<std::int64_t, D>& idx) {
      std::array<std::int64_t, D> true_idx;
      for (int i = 0; i < D; ++i) {
        true_idx[static_cast<std::size_t>(i)] = mod_floor(
            idx[static_cast<std::size_t>(i)],
            ctx->grid[static_cast<std::size_t>(i)]);
      }
      ++(*counts)[{t, true_idx}];
    });
  }
};

/// Every (t, x) of [0, T) x grid must be visited exactly once.
template <int D>
void expect_exact_cover(const WalkContext<D>& ctx, std::int64_t T,
                        const std::map<PointKey<D>, int>& counts) {
  std::int64_t cells = 1;
  for (int i = 0; i < D; ++i) cells *= ctx.grid[static_cast<std::size_t>(i)];
  ASSERT_EQ(static_cast<std::int64_t>(counts.size()), T * cells);
  for (const auto& [key, n] : counts) {
    ASSERT_EQ(n, 1) << "point t=" << key.first << " visited " << n << " times";
    EXPECT_GE(key.first, 0);
    EXPECT_LT(key.first, T);
    for (int i = 0; i < D; ++i) {
      EXPECT_GE(key.second[static_cast<std::size_t>(i)], 0);
      EXPECT_LT(key.second[static_cast<std::size_t>(i)],
                ctx.grid[static_cast<std::size_t>(i)]);
    }
  }
}

template <int D>
WalkContext<D> random_context(Rng& rng) {
  WalkContext<D> ctx;
  for (int i = 0; i < D; ++i) {
    const auto s = static_cast<std::size_t>(i);
    ctx.sigma[s] = rng.next_below(3);  // 0 (no dependency), 1, or 2
    ctx.reach[s] = ctx.sigma[s];
    ctx.grid[s] = 4 + rng.next_below(D == 1 ? 40 : 14);
    ctx.dx_threshold[s] = 1 + rng.next_below(8);
  }
  ctx.dt_threshold = 1 + rng.next_below(6);
  return ctx;
}

TEST(WalkEquivalence, TrapFuzz1D) {
  Rng rng(42);
  for (int trial = 0; trial < 120; ++trial) {
    const WalkContext<1> ctx = random_context<1>(rng);
    const std::int64_t T = 1 + rng.next_below(12);
    std::map<PointKey<1>, int> counts;
    PointRecorder<1> rec{&ctx, &counts};
    run_trap(ctx, rt::SerialPolicy{}, 0, T, rec, rec);
    expect_exact_cover<1>(ctx, T, counts);
  }
}

TEST(WalkEquivalence, StrapFuzz1D) {
  Rng rng(43);
  for (int trial = 0; trial < 120; ++trial) {
    const WalkContext<1> ctx = random_context<1>(rng);
    const std::int64_t T = 1 + rng.next_below(12);
    std::map<PointKey<1>, int> counts;
    PointRecorder<1> rec{&ctx, &counts};
    run_strap(ctx, rt::SerialPolicy{}, 0, T, rec, rec);
    expect_exact_cover<1>(ctx, T, counts);
  }
}

TEST(WalkEquivalence, TrapFuzz2D) {
  Rng rng(44);
  for (int trial = 0; trial < 60; ++trial) {
    const WalkContext<2> ctx = random_context<2>(rng);
    const std::int64_t T = 1 + rng.next_below(9);
    std::map<PointKey<2>, int> counts;
    PointRecorder<2> rec{&ctx, &counts};
    run_trap(ctx, rt::SerialPolicy{}, 0, T, rec, rec);
    expect_exact_cover<2>(ctx, T, counts);
  }
}

TEST(WalkEquivalence, StrapFuzz2D) {
  Rng rng(45);
  for (int trial = 0; trial < 60; ++trial) {
    const WalkContext<2> ctx = random_context<2>(rng);
    const std::int64_t T = 1 + rng.next_below(9);
    std::map<PointKey<2>, int> counts;
    PointRecorder<2> rec{&ctx, &counts};
    run_strap(ctx, rt::SerialPolicy{}, 0, T, rec, rec);
    expect_exact_cover<2>(ctx, T, counts);
  }
}

TEST(WalkEquivalence, TrapFuzz3D) {
  Rng rng(46);
  for (int trial = 0; trial < 20; ++trial) {
    WalkContext<3> ctx = random_context<3>(rng);
    for (auto& g : ctx.grid) g = 3 + (g % 6);  // keep volume testable
    const std::int64_t T = 1 + rng.next_below(6);
    std::map<PointKey<3>, int> counts;
    PointRecorder<3> rec{&ctx, &counts};
    run_trap(ctx, rt::SerialPolicy{}, 0, T, rec, rec);
    expect_exact_cover<3>(ctx, T, counts);
  }
}

/// The stack-resident buckets must hold exactly the zoids the reference
/// enumeration produces, level by level.
TEST(SubzoidLevels, MatchesReferenceEnumeration) {
  Rng rng(77);
  int nonempty_plans = 0;
  for (int trial = 0; trial < 200; ++trial) {
    Zoid<2> z;
    z.t0 = 0;
    z.t1 = 1 + rng.next_below(6);
    for (int i = 0; i < 2; ++i) {
      z.x0[i] = rng.next_below(10);
      z.x1[i] = z.x0[i] + rng.next_below(40);
      z.dx0[i] = rng.next_below(3) - 1;
      z.dx1[i] = rng.next_below(3) - 1;
    }
    if (!z.well_defined()) continue;
    const std::array<std::int64_t, 2> sigma = {1, 1};
    const std::array<std::int64_t, 2> thresh = {1, 1};
    const std::array<std::int64_t, 2> grid = {1 << 20, 1 << 20};
    const HyperCut<2> plan = plan_hyperspace_cut(z, sigma, thresh, grid);
    if (plan.empty()) continue;
    ++nonempty_plans;

    std::map<int, std::vector<Zoid<2>>> reference;
    for_each_subzoid(z, plan, [&](const Zoid<2>& sub, int level) {
      reference[level].push_back(sub);
    });

    SubzoidLevels<2> levels;
    collect_subzoids_by_level(z, plan, levels);
    ASSERT_EQ(levels.level_count, plan.level_count());
    for (int l = 0; l < levels.level_count; ++l) {
      const auto it = reference.find(l);
      const std::size_t want = it == reference.end() ? 0 : it->second.size();
      ASSERT_EQ(static_cast<std::size_t>(levels.size(l)), want);
      for (int i = 0; i < levels.size(l); ++i) {
        // Bucket fill preserves enumeration order within a level.
        EXPECT_EQ(levels.at(l, i), it->second[static_cast<std::size_t>(i)]);
      }
    }
  }
  EXPECT_GT(nonempty_plans, 50);
}

/// The tentpole guarantee: a serial TRAP/STRAP walk — planning, bucketing,
/// recursion, base-case dispatch — performs zero heap allocations.
TEST(WalkAllocation, SerialTrapWalkIsAllocationFree) {
  WalkContext<2> ctx;
  ctx.sigma = {1, 1};
  ctx.reach = {1, 1};
  ctx.grid = {64, 64};
  ctx.dt_threshold = 3;
  ctx.dx_threshold = {4, 4};
  std::int64_t visited = 0;
  auto base = [&](const Zoid<2>& z) { visited += z.volume(); };

  g_allocs.store(0);
  g_counting.store(true);
  run_trap(ctx, rt::SerialPolicy{}, 0, 32, base, base);
  g_counting.store(false);

  EXPECT_EQ(visited, 64 * 64 * 32);
  EXPECT_EQ(g_allocs.load(), 0)
      << "the serial TRAP walk must not touch the heap";
}

TEST(WalkAllocation, SerialStrapWalkIsAllocationFree) {
  WalkContext<2> ctx;
  ctx.sigma = {1, 1};
  ctx.reach = {1, 1};
  ctx.grid = {48, 48};
  ctx.dt_threshold = 2;
  ctx.dx_threshold = {3, 3};
  std::int64_t visited = 0;
  auto base = [&](const Zoid<2>& z) { visited += z.volume(); };

  g_allocs.store(0);
  g_counting.store(true);
  run_strap(ctx, rt::SerialPolicy{}, 0, 16, base, base);
  g_counting.store(false);

  EXPECT_EQ(visited, 48 * 48 * 16);
  EXPECT_EQ(g_allocs.load(), 0)
      << "the serial STRAP walk must not touch the heap";
}

TEST(WalkAllocation, SerialTrapWalk4DIsAllocationFree) {
  WalkContext<4> ctx;
  ctx.sigma = {1, 1, 1, 1};
  ctx.reach = {1, 1, 1, 1};
  ctx.grid = {10, 10, 10, 10};
  ctx.dt_threshold = 2;
  ctx.dx_threshold = {2, 2, 2, Options<4>::kNeverCut};
  std::int64_t visited = 0;
  auto base = [&](const Zoid<4>& z) { visited += z.volume(); };

  g_allocs.store(0);
  g_counting.store(true);
  run_trap(ctx, rt::SerialPolicy{}, 0, 8, base, base);
  g_counting.store(false);

  EXPECT_EQ(visited, 10 * 10 * 10 * 10 * 8);
  EXPECT_EQ(g_allocs.load(), 0)
      << "the serial 4D TRAP walk must not touch the heap";
}

}  // namespace
}  // namespace pochoir
