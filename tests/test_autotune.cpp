// Tests for the ISAT-style coarsening autotuner (§4).
#include <gtest/gtest.h>

#include "core/autotune.hpp"
#include "core/boundary.hpp"
#include "core/stencil.hpp"
#include "stencils/heat.hpp"
#include "support/timer.hpp"

namespace pochoir {
namespace {

TEST(Autotune, PicksTheCheapestCandidate) {
  // Synthetic cost: pretend dt=4, dx=64 is the optimum.
  auto fake_cost = [](const Options<2>& o) {
    const double dt_err = static_cast<double>((o.dt_threshold - 4) *
                                              (o.dt_threshold - 4));
    const double dx_err = static_cast<double>((o.dx_threshold[0] - 64) *
                                              (o.dx_threshold[0] - 64));
    return 1.0 + dt_err + dx_err;
  };
  const auto result = autotune_coarsening<2>(
      fake_cost, {1, 2, 4, 8}, {16, 64, 256}, /*protect_unit_stride=*/false);
  EXPECT_EQ(result.best.dt_threshold, 4);
  EXPECT_EQ(result.best.dx_threshold[0], 64);
  EXPECT_EQ(result.samples.size(), 12u);
  EXPECT_DOUBLE_EQ(result.best_seconds, 1.0);
}

TEST(Autotune, ProtectsUnitStrideWhenAsked) {
  auto fake_cost = [](const Options<3>&) { return 1.0; };
  const auto result =
      autotune_coarsening<3>(fake_cost, {2}, {4}, /*protect_unit_stride=*/true);
  EXPECT_EQ(result.best.dx_threshold[0], 4);
  EXPECT_EQ(result.best.dx_threshold[2], Options<3>::kNeverCut);
}

TEST(Autotune, EndToEndOnRealStencil) {
  // Tune a small 2D heat run; whatever wins, the tuned options must still
  // compute correct results and beat-or-match the worst candidate.
  const std::int64_t n = 128, steps = 16;
  auto trial = [&](const Options<2>& opts) {
    Array<double, 2> u({n, n}, 1);
    u.register_boundary(periodic_boundary<double, 2>());
    u.fill_time(0, [](const auto& i) {
      return 0.01 * static_cast<double>((i[0] + i[1]) % 7);
    });
    Stencil<2, double> st(stencils::heat_shape<2>(), opts);
    st.register_arrays(u);
    Timer timer;
    st.run(steps, stencils::heat_kernel_2d({0.1, 0.1}));
    return timer.seconds();
  };
  const auto result = autotune_coarsening<2>(trial, {1, 8}, {2, 64},
                                             /*protect_unit_stride=*/false);
  ASSERT_EQ(result.samples.size(), 4u);
  double worst = 0;
  for (const auto& s : result.samples) worst = std::max(worst, s.seconds);
  EXPECT_LE(result.best_seconds, worst);
}

}  // namespace
}  // namespace pochoir
