// Tests for the Stencil facade: registration, resumable Run (§2), result
// indexing, the Phase-1 shape checker, and traced execution.
#include <gtest/gtest.h>

#include "analysis/cache_sim.hpp"
#include "core/boundary.hpp"
#include "core/stencil.hpp"
#include "stencils/heat.hpp"

namespace pochoir {
namespace {

Array<double, 2> make_grid(std::int64_t n) {
  Array<double, 2> u({n, n}, 1);
  u.register_boundary(periodic_boundary<double, 2>());
  u.fill_time(0, [](const std::array<std::int64_t, 2>& i) {
    return 0.01 * static_cast<double>((i[0] * 13 + i[1] * 7) % 31);
  });
  return u;
}

TEST(Facade, ResultTimeMatchesPaperFormula) {
  // After Run(T) the results live at time T + k - 1 (§2); k = 1 for heat.
  auto u = make_grid(16);
  Stencil<2, double> st(stencils::heat_shape<2>());
  st.register_arrays(u);
  EXPECT_EQ(st.steps_done(), 0);
  st.run(10, stencils::heat_kernel_2d({0.1, 0.1}));
  EXPECT_EQ(st.steps_done(), 10);
  EXPECT_EQ(st.result_time(), 10);
}

TEST(Facade, ResumedRunEqualsSingleRun) {
  // §2: "The programmer may resume the running of the stencil ...
  //  The result ... is then in ... time T + T' + k - 1."
  auto u1 = make_grid(32);
  auto u2 = make_grid(32);
  const auto kern = stencils::heat_kernel_2d({0.1, 0.12});
  Stencil<2, double> s1(stencils::heat_shape<2>());
  s1.register_arrays(u1);
  s1.run(7, kern);
  s1.run(8, kern);
  EXPECT_EQ(s1.result_time(), 15);
  Stencil<2, double> s2(stencils::heat_shape<2>());
  s2.register_arrays(u2);
  s2.run(15, kern);
  for (std::int64_t x = 0; x < 32; ++x) {
    for (std::int64_t y = 0; y < 32; ++y) {
      ASSERT_EQ(u1.interior(15, x, y), u2.interior(15, x, y));
    }
  }
}

TEST(Facade, TimeRangeForDepthTwo) {
  Shape<1> wave_like = {{1, 0}, {0, 0}, {0, 1}, {0, -1}, {-1, 0}};
  Array<double, 1> u({16}, wave_like.depth());
  u.register_boundary(periodic_boundary<double, 1>());
  Stencil<1, double> st(wave_like);
  st.register_arrays(u);
  // depth 2, home_dt 1: first invocation at t = 1 (writes time 2, reads 1, 0).
  const auto [t0, t1] = st.time_range(5);
  EXPECT_EQ(t0, 1);
  EXPECT_EQ(t1, 6);
  EXPECT_EQ(st.result_time() + 5 + 1, t1 + 1);
}

TEST(Facade, HomeDtZeroConvention) {
  // a(t, i) = f(a(t-1, ...)) convention: home_dt = 0, depth 1, so the first
  // invocation is at t = 1.
  Shape<1> s = {{0, 0}, {-1, -1}, {-1, 0}, {-1, 1}};
  Array<double, 1> u({16}, s.depth());
  u.register_boundary(periodic_boundary<double, 1>());
  Stencil<1, double> st(s);
  st.register_arrays(u);
  const auto [t0, t1] = st.time_range(4);
  EXPECT_EQ(t0, 1);
  EXPECT_EQ(t1, 5);
  u.fill_time(0, [](const auto&) { return 1.0; });
  st.run(4, [](std::int64_t t, std::int64_t x, auto uu) {
    uu(t, x) = uu(t - 1, x - 1) + uu(t - 1, x) + uu(t - 1, x + 1);
  });
  EXPECT_EQ(st.result_time(), 4);
  EXPECT_EQ(u.interior(4, 8), 81.0);  // 3^4
}

TEST(Facade, RunDebugAcceptsCompliantKernel) {
  auto u = make_grid(12);
  Stencil<2, double> st(stencils::heat_shape<2>());
  st.register_arrays(u);
  st.run_debug(3, stencils::heat_kernel_2d({0.1, 0.1}));
  EXPECT_EQ(st.steps_done(), 3);
}

TEST(FacadeDeath, RunDebugCatchesShapeViolation) {
  // Kernel reads u(t, x+2, y), which the 5-point shape does not declare:
  // Phase 1 must complain (the Pochoir Guarantee's enforcement side).
  auto u = make_grid(12);
  Stencil<2, double> st(stencils::heat_shape<2>());
  st.register_arrays(u);
  auto bad = [](std::int64_t t, std::int64_t x, std::int64_t y, auto uu) {
    uu(t + 1, x, y) = uu(t, x + 2, y);
  };
  EXPECT_DEATH(st.run_debug(1, bad), "outside the declared Pochoir shape");
}

TEST(FacadeDeath, RunDebugCatchesOffHomeWrite) {
  auto u = make_grid(12);
  Stencil<2, double> st(stencils::heat_shape<2>());
  st.register_arrays(u);
  auto bad = [](std::int64_t t, std::int64_t x, std::int64_t y, auto uu) {
    uu(t + 1, x + 1, y) = uu(t, x, y);
  };
  EXPECT_DEATH(st.run_debug(1, bad), "off-home");
}

TEST(Facade, RunBeforeRegisterThrows) {
  // Misuse of the public API is recoverable: pochoir::Error, not abort.
  Stencil<2, double> st(stencils::heat_shape<2>());
  EXPECT_THROW(st.run(1, stencils::heat_kernel_2d({0.1, 0.1})), Error);
}

TEST(Facade, NonPositiveStepCountThrows) {
  auto u = make_grid(8);
  Stencil<2, double> st(stencils::heat_shape<2>());
  st.register_arrays(u);
  EXPECT_THROW(st.run(0, stencils::heat_kernel_2d({0.1, 0.1})), Error);
  EXPECT_THROW(st.run(-3, stencils::heat_kernel_2d({0.1, 0.1})), Error);
  EXPECT_EQ(st.steps_done(), 0);
}

TEST(Facade, TracedRunCountsReferencesAndMatchesUntraced) {
  auto u1 = make_grid(24);
  auto u2 = make_grid(24);
  const auto kern = stencils::heat_kernel_2d({0.1, 0.1});
  Stencil<2, double> s1(stencils::heat_shape<2>());
  s1.register_arrays(u1);
  CacheSim sim(32 * 1024);
  s1.run_traced(Algorithm::kTrap, 6, kern, sim);
  // The kernel as written performs 7 reads (u(t,x,y) appears three times)
  // plus 1 write per point.  Off-domain reads are served by the boundary
  // function and are not traced: 2*24 edge points per axis read off-grid
  // once each, so 96 reads per step bypass the sink.
  EXPECT_EQ(sim.references(), 24u * 24u * 6u * 8u - 6u * 96u);
  EXPECT_GT(sim.misses(), 0u);
  Stencil<2, double> s2(stencils::heat_shape<2>());
  s2.register_arrays(u2);
  s2.run(6, kern);
  for (std::int64_t x = 0; x < 24; ++x) {
    for (std::int64_t y = 0; y < 24; ++y) {
      ASSERT_EQ(u1.interior(6, x, y), u2.interior(6, x, y));
    }
  }
}

TEST(Facade, PaperStyleAliases) {
  auto u = make_grid(8);
  Stencil<2, double> st(stencils::heat_shape<2>());
  st.Register_Array(u);
  st.Run(2, stencils::heat_kernel_2d({0.1, 0.1}));
  EXPECT_EQ(st.steps_done(), 2);
}

TEST(Facade, MultipleArraysReceiveViewsInOrder) {
  // Two-array stencil: b(t+1) = a(t); a(t+1) = b(t) + 1 — swap with bias.
  Shape<1> s = {{1, 0}, {0, 0}};
  Array<double, 1> a({8}, 1);
  Array<double, 1> b({8}, 1);
  a.register_boundary(zero_boundary<double, 1>());
  b.register_boundary(zero_boundary<double, 1>());
  a.fill_time(0, [](const auto&) { return 1.0; });
  b.fill_time(0, [](const auto&) { return 10.0; });
  Stencil<1, double, double> st(s);
  st.register_arrays(a, b);
  st.run(2, [](std::int64_t t, std::int64_t x, auto va, auto vb) {
    va(t + 1, x) = vb(t, x) + 1;
    vb(t + 1, x) = va(t, x);
  });
  // After 2 steps: a = a0 + 1 = 2? Trace: step1: a1 = b0+1 = 11, b1 = a0 = 1.
  // step2: a2 = b1+1 = 2, b2 = a1 = 11.
  EXPECT_EQ(a.interior(2, 3), 2.0);
  EXPECT_EQ(b.interior(2, 3), 11.0);
}

TEST(Facade, MismatchedExtentsRejected) {
  Shape<1> s = {{1, 0}, {0, 0}};
  Array<double, 1> a({8});
  Array<double, 1> b({9});
  Stencil<1, double, double> st(s);
  EXPECT_THROW(st.register_arrays(a, b), Error);
  // A failed registration leaves the stencil unregistered, not half-bound.
  EXPECT_THROW(st.run(1, [](std::int64_t, std::int64_t, auto, auto) {}),
               Error);
}

TEST(Facade, TooFewTimeLevelsRejected) {
  Shape<1> s = {{1, 0}, {0, 0}, {-1, 0}};  // depth 2
  Array<double, 1> a({8}, /*depth=*/1);    // only 2 levels
  Stencil<1, double> st(s);
  EXPECT_THROW(st.register_arrays(a), Error);
}

TEST(Facade, BadArrayConstructionThrows) {
  EXPECT_THROW((Array<double, 1>({0})), Error);
  EXPECT_THROW((Array<double, 2>({4, -1})), Error);
  EXPECT_THROW((Array<double, 2>({4, 4}, /*depth=*/0)), Error);
  EXPECT_THROW((Array<double, 2>({4})), Error);  // extent count != D
}

}  // namespace
}  // namespace pochoir
