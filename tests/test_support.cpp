// Unit tests for the support utilities.
#include <gtest/gtest.h>

#include <set>

#include "support/aligned_buffer.hpp"
#include "support/math_util.hpp"
#include "support/rng.hpp"
#include "support/table.hpp"

namespace pochoir {
namespace {

TEST(MathUtil, CeilDiv) {
  EXPECT_EQ(ceil_div(0, 4), 0);
  EXPECT_EQ(ceil_div(1, 4), 1);
  EXPECT_EQ(ceil_div(4, 4), 1);
  EXPECT_EQ(ceil_div(5, 4), 2);
  EXPECT_EQ(ceil_div(8, 4), 2);
}

TEST(MathUtil, FloorDivNegative) {
  EXPECT_EQ(floor_div(7, 2), 3);
  EXPECT_EQ(floor_div(-7, 2), -4);
  EXPECT_EQ(floor_div(-8, 2), -4);
  EXPECT_EQ(floor_div(7, -2), -4);
}

TEST(MathUtil, ModFloor) {
  EXPECT_EQ(mod_floor(5, 3), 2);
  EXPECT_EQ(mod_floor(-1, 10), 9);
  EXPECT_EQ(mod_floor(-10, 10), 0);
  EXPECT_EQ(mod_floor(-11, 10), 9);
  EXPECT_EQ(mod_floor(0, 7), 0);
}

TEST(MathUtil, Ilog2) {
  EXPECT_EQ(ilog2(1), 0);
  EXPECT_EQ(ilog2(2), 1);
  EXPECT_EQ(ilog2(3), 1);
  EXPECT_EQ(ilog2(4), 2);
  EXPECT_EQ(ilog2(1023), 9);
  EXPECT_EQ(ilog2(1024), 10);
}

TEST(MathUtil, Ipow) {
  EXPECT_EQ(ipow(3, 0), 1);
  EXPECT_EQ(ipow(3, 1), 3);
  EXPECT_EQ(ipow(3, 4), 81);
  EXPECT_EQ(ipow(2, 10), 1024);
}

TEST(MathUtil, Pow2Helpers) {
  EXPECT_TRUE(is_pow2(1));
  EXPECT_TRUE(is_pow2(64));
  EXPECT_FALSE(is_pow2(0));
  EXPECT_FALSE(is_pow2(6));
  EXPECT_EQ(next_pow2(1), 1);
  EXPECT_EQ(next_pow2(5), 8);
  EXPECT_EQ(next_pow2(64), 64);
}

TEST(Rng, DeterministicAcrossInstances) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) same += a.next_u64() == b.next_u64();
  EXPECT_LT(same, 4);
}

TEST(Rng, UniformInRange) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const double v = rng.uniform(-2.5, 3.5);
    EXPECT_GE(v, -2.5);
    EXPECT_LT(v, 3.5);
  }
}

TEST(Rng, NextBelowInRange) {
  Rng rng(7);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    const std::int64_t v = rng.next_below(17);
    EXPECT_GE(v, 0);
    EXPECT_LT(v, 17);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 17u);  // all residues hit over 1000 draws
}

TEST(AlignedBuffer, AlignmentAndValueInit) {
  AlignedBuffer<double> buf(1000);
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(buf.data()) % 64, 0u);
  for (std::size_t i = 0; i < buf.size(); ++i) EXPECT_EQ(buf[i], 0.0);
}

TEST(AlignedBuffer, CopyAndMove) {
  AlignedBuffer<int> a(16);
  for (std::size_t i = 0; i < 16; ++i) a[i] = static_cast<int>(i);
  AlignedBuffer<int> b(a);
  EXPECT_EQ(b[7], 7);
  AlignedBuffer<int> c(std::move(a));
  EXPECT_EQ(c[7], 7);
  b = c;
  EXPECT_EQ(b[15], 15);
}

TEST(AlignedBuffer, EmptyIsSafe) {
  AlignedBuffer<double> buf;
  EXPECT_EQ(buf.size(), 0u);
  AlignedBuffer<double> copy(buf);
  EXPECT_EQ(copy.size(), 0u);
}

TEST(Table, RendersWithoutCrashing) {
  Table t({"name", "value"});
  t.add_row({"alpha", strf("%.2f", 1.5)});
  t.add_row({"beta", "2"});
  t.print();
  EXPECT_EQ(strf("%d/%d", 3, 4), "3/4");
}

}  // namespace
}  // namespace pochoir
