// Tests for the Figure 6 DSL veneer (Phase-1 macro syntax).
#include <pochoir/dsl.hpp>
#include <pochoir/pochoir.hpp>

#include <gtest/gtest.h>

#define mod(r, m) ((r) % (m) + ((r) % (m) < 0 ? (m) : 0))

Pochoir_Boundary_2D(dsl_periodic_bv, a, t, x, y)
  return a.get(t, mod(x, a.size(1)), mod(y, a.size(0)));
Pochoir_Boundary_End

Pochoir_Boundary_2D(dsl_dirichlet_bv, a, t, x, y)
  return 100.0 + 0.2 * static_cast<double>(t);  // Figure 11(a)
Pochoir_Boundary_End

Pochoir_Boundary_1D(dsl_neumann_bv, a, t, x)
  std::int64_t newx = x;
  if (newx < 0) newx = 0;
  if (newx >= a.size(0)) newx = a.size(0) - 1;
  return a.get(t, newx);
Pochoir_Boundary_End

namespace {

TEST(Dsl, Figure6ProgramRuns) {
  const int X = 40, Y = 40, T = 20;
  const double CX = 0.1, CY = 0.1;
  Pochoir_Shape_2D shape[] = {{1, 0, 0}, {0, 0, 0}, {0, 1, 0},
                              {0, -1, 0}, {0, 0, -1}, {0, 0, 1}};
  Pochoir_2D heat(shape);
  Pochoir_Array_2D(double) u(X, Y);
  u.Register_Boundary(dsl_periodic_bv);
  heat.Register_Array(u);
  Pochoir_Kernel_2D(heat_fn, t, x, y)
    u(t + 1, x, y) = CX * (u(t, x + 1, y) - 2 * u(t, x, y) + u(t, x - 1, y)) +
                     CY * (u(t, x, y + 1) - 2 * u(t, x, y) + u(t, x, y - 1)) +
                     u(t, x, y);
  Pochoir_Kernel_End
  double before = 0;
  for (int x = 0; x < X; ++x) {
    for (int y = 0; y < Y; ++y) {
      u(0, x, y) = 0.01 * (x * 13 + y * 7 % 19);
      before += 0.01 * (x * 13 + y * 7 % 19);
    }
  }
  heat.Run(T, heat_fn);
  double after = 0;
  for (int x = 0; x < X; ++x) {
    for (int y = 0; y < Y; ++y) after += u(T, x, y);
  }
  EXPECT_NEAR(after, before, 1e-7 * before);  // conservative on the torus
}

TEST(Dsl, Phase1MatchesViewsApi) {
  // The DSL (Phase-1, checked accesses) and the views API (cloned) must
  // produce bit-identical results.
  const int n = 32, steps = 12;
  const double c = 0.15;

  Pochoir_Shape_2D shape[] = {{1, 0, 0}, {0, 0, 0}, {0, 1, 0},
                              {0, -1, 0}, {0, 0, -1}, {0, 0, 1}};
  Pochoir_2D st1(shape);
  Pochoir_Array_2D(double) u1(n, n);
  u1.Register_Boundary(dsl_periodic_bv);
  st1.Register_Array(u1);
  Pochoir_Kernel_2D(kern1, t, x, y)
    u1(t + 1, x, y) = u1(t, x, y) +
                      c * (u1(t, x + 1, y) - 2 * u1(t, x, y) + u1(t, x - 1, y)) +
                      c * (u1(t, x, y + 1) - 2 * u1(t, x, y) + u1(t, x, y - 1));
  Pochoir_Kernel_End

  pochoir::Array<double, 2> u2({n, n}, 1);
  u2.register_boundary(pochoir::periodic_boundary<double, 2>());
  pochoir::Stencil<2, double> st2(
      pochoir::Shape<2>{{1, 0, 0}, {0, 0, 0}, {0, 1, 0}, {0, -1, 0},
                        {0, 0, -1}, {0, 0, 1}});
  st2.register_arrays(u2);

  for (int x = 0; x < n; ++x) {
    for (int y = 0; y < n; ++y) {
      const double v = 0.02 * ((x * 31 + y * 3) % 23);
      u1(0, x, y) = v;
      u2.interior(0, x, y) = v;
    }
  }
  st1.Run(steps, kern1);
  st2.run(steps, [c](std::int64_t t, std::int64_t x, std::int64_t y, auto u) {
    u(t + 1, x, y) = u(t, x, y) +
                     c * (u(t, x + 1, y) - 2 * u(t, x, y) + u(t, x - 1, y)) +
                     c * (u(t, x, y + 1) - 2 * u(t, x, y) + u(t, x, y - 1));
  });
  for (int x = 0; x < n; ++x) {
    for (int y = 0; y < n; ++y) {
      ASSERT_EQ(static_cast<double>(u1(steps, x, y)),
                u2.interior(steps, x, y));
    }
  }
}

TEST(Dsl, DirichletBoundaryMacro) {
  Pochoir_Array_2D(double) u(4, 4);
  u.Register_Boundary(dsl_dirichlet_bv);
  EXPECT_EQ(u.get(0, std::int64_t{-1}, std::int64_t{0}), 100.0);
  EXPECT_EQ(u.get(10, std::int64_t{4}, std::int64_t{0}), 102.0);
}

TEST(Dsl, NeumannBoundaryMacro1D) {
  Pochoir_Array_1D(double) u(5);
  u.Register_Boundary(dsl_neumann_bv);
  for (int x = 0; x < 5; ++x) u(0, x) = x * 1.0;
  EXPECT_EQ(u.get(0, std::int64_t{-3}), 0.0);
  EXPECT_EQ(u.get(0, std::int64_t{7}), 4.0);
}

TEST(Dsl, ArrayDepthTemplateParameter) {
  Pochoir_Array_1D(double, 2) u(8);
  EXPECT_EQ(u.time_levels(), 3);
}

}  // namespace
