// §4 ablation — handling boundary conditions by code cloning.
//
// "We coded the 2D heat equation on a periodic torus using Pochoir, and we
//  compared it to a comparable code that simply employs a modulo operation
//  on every array index ... the runtime of the modular-indexing
//  implementation degraded by a factor of 2.3."
//
// Here: TRAP with interior/boundary clones (checks only in boundary zoids)
// versus TRAP with the checked clone everywhere (every access boundary-
// tested and wrapped).
#include <cstdio>

#include "bench_common.hpp"
#include "core/boundary.hpp"
#include "core/stencil.hpp"
#include "core/views.hpp"
#include "stencils/common.hpp"
#include "stencils/heat.hpp"

int main() {
  using namespace pochoir;
  using namespace pochoir::bench;
  using namespace pochoir::stencils;

  print_header("Ablation: boundary handling by code cloning vs modulo "
               "on every access",
               "Tang et al., SPAA'11, Section 4 (factor 2.3 there)");

  const std::int64_t n = scaled(1024, 1.0 / 3);
  const std::int64_t t = scaled(128, 1.0 / 3);
  std::printf("2D periodic heat, %lld^2 x %lld\n\n", static_cast<long long>(n),
              static_cast<long long>(t));

  auto make = [&] {
    Array<double, 2> u({n, n}, 1);
    u.register_boundary(periodic_boundary<double, 2>());
    fill_random(u, 0, 0.0, 1.0);
    return u;
  };

  // Cloned: the library default (fast interior clone + checked boundary).
  auto u1 = make();
  Stencil<2, double> s1(heat_shape<2>());
  s1.register_arrays(u1);
  const double cloned =
      timed([&] { s1.run(t, heat_kernel_2d({0.125, 0.125})); });

  // Modulo everywhere: both clones use checked (wrapping) accesses.
  auto u2 = make();
  Stencil<2, double> s2(heat_shape<2>());
  s2.register_arrays(u2);
  auto checked_kernel = [&u2](std::int64_t tt, std::int64_t x, std::int64_t y) {
    BoundaryView<double, 2> u(u2);
    u(tt + 1, x, y) = u(tt, x, y) +
                      0.125 * (u(tt, x + 1, y) - 2 * u(tt, x, y) + u(tt, x - 1, y)) +
                      0.125 * (u(tt, x, y + 1) - 2 * u(tt, x, y) + u(tt, x, y - 1));
  };
  const double modulo =
      timed([&] { s2.run_cloned(t, checked_kernel, checked_kernel); });

  Table table({"variant", "time", "slowdown"});
  table.add_row({"interior/boundary clones (Pochoir)", strf("%.2fs", cloned),
                 "1.00x"});
  table.add_row({"checked/modulo on every access", strf("%.2fs", modulo),
                 strf("%.2fx", modulo / cloned)});
  table.print();
  std::printf("\npaper: 2.3x degradation at 5000^2 x 5000.\n");
  return 0;
}
