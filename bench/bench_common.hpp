// Shared infrastructure for the paper-reproduction benches.
//
// Every bench prints the corresponding paper table/figure in plain text.
// Grid sizes are scaled down from the paper's 12-core Nehalem testbed to
// run in about a minute; set POCHOIR_BENCH_SCALE=<f> to scale the
// space-time volume up (f > 1) or down.  EXPERIMENTS.md records the
// paper-vs-measured comparison for each experiment.
#pragma once

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "runtime/scheduler.hpp"
#include "support/atomic_file.hpp"
#include "support/table.hpp"
#include "support/timer.hpp"
#include "telemetry/export.hpp"

namespace pochoir::bench {

/// Compiler identity baked into every BENCH_*.json so perf numbers are
/// attributable to a toolchain.
inline std::string compiler_id() {
#if defined(__clang__)
  return "clang " + std::to_string(__clang_major__) + "." +
         std::to_string(__clang_minor__) + "." +
         std::to_string(__clang_patchlevel__);
#elif defined(__GNUC__)
  return "gcc " + std::to_string(__GNUC__) + "." +
         std::to_string(__GNUC_MINOR__) + "." +
         std::to_string(__GNUC_PATCHLEVEL__);
#else
  return "unknown";
#endif
}

/// Optimization flags the bench was built with (injected by CMake).
inline const char* build_flags() {
#ifdef POCHOIR_BUILD_FLAGS
  return POCHOIR_BUILD_FLAGS;
#else
  return "unknown";
#endif
}

/// Git revision of the build tree (injected by CMake at configure time).
inline const char* git_sha() {
#ifdef POCHOIR_GIT_SHA
  return POCHOIR_GIT_SHA;
#else
  return "unknown";
#endif
}

/// Space-time scale factor from POCHOIR_BENCH_SCALE (default 1.0).
inline double scale() {
  if (const char* env = std::getenv("POCHOIR_BENCH_SCALE")) {
    const double v = std::atof(env);
    if (v > 0) return v;
  }
  return 1.0;
}

/// Scales a linear dimension by the cube/sqrt/... root of the volume scale.
inline std::int64_t scaled(std::int64_t base, double exponent) {
  const double v = static_cast<double>(base) *
                   std::pow(scale(), exponent);
  return v < 1 ? 1 : static_cast<std::int64_t>(v);
}

/// Times one run of `fn` in seconds.
template <typename F>
double timed(F&& fn) {
  Timer timer;
  fn();
  return timer.seconds();
}

inline void print_header(const char* what, const char* paper_ref) {
  std::printf("==============================================================\n");
  std::printf("%s\n", what);
  std::printf("reproduces: %s\n", paper_ref);
  std::printf("workers: %d   scale: %.2f\n",
              rt::Scheduler::instance().num_threads(), scale());
  std::printf("==============================================================\n");
}

/// Machine-readable benchmark results, written as a JSON array so the perf
/// trajectory can be tracked as BENCH_<name>.json across PRs.  The output
/// path defaults to BENCH_<name>.json in the working directory; set
/// POCHOIR_BENCH_JSON=<path> to redirect it, or POCHOIR_BENCH_JSON=off to
/// suppress the file.
class JsonReport {
 public:
  explicit JsonReport(std::string bench_name) : bench_(std::move(bench_name)) {}

  /// One measured configuration.  `mpoints` is millions of space-time grid
  /// point updates per wall-clock second.  Pass the session's RunTelemetry
  /// to attach a "telemetry" block to the row.
  void add(const std::string& kernel, const std::string& grid,
           std::int64_t steps, const std::string& config, double seconds,
           double mpoints, const telemetry::RunTelemetry* tel = nullptr) {
    Record r{kernel, grid, steps, config, seconds, mpoints, {}, false};
    if (tel != nullptr) {
      r.tel = *tel;
      r.has_tel = true;
    }
    records_.push_back(std::move(r));
  }

  ~JsonReport() { write(); }

  void write() const {
    std::string path = "BENCH_" + bench_ + ".json";
    if (const char* env = std::getenv("POCHOIR_BENCH_JSON")) {
      if (std::string(env) == "off") return;
      path = env;
    }
    // Temp-then-rename so a crash (or a kill) mid-report never truncates a
    // previously good BENCH_*.json tracked across PRs.
    const auto result = io::atomic_write_file(path, [&](std::FILE* f) {
      if (std::fprintf(f, "[\n") < 0) return false;
      // Row 0 is a metadata stamp so the perf trajectory is attributable
      // to a toolchain + revision; measurement rows follow.
      if (std::fprintf(
              f,
              "  {\"bench\": \"%s\", \"meta\": {\"compiler\": \"%s\", "
              "\"flags\": \"%s\", \"git_sha\": \"%s\", \"threads\": %d, "
              "\"scale\": %.3f}}%s\n",
              bench_.c_str(), compiler_id().c_str(), build_flags(), git_sha(),
              rt::Scheduler::instance().num_threads(), scale(),
              records_.empty() ? "" : ",") < 0) {
        return false;
      }
      for (std::size_t i = 0; i < records_.size(); ++i) {
        const Record& r = records_[i];
        int n = std::fprintf(
            f,
            "  {\"bench\": \"%s\", \"kernel\": \"%s\", \"grid\": "
            "\"%s\", \"steps\": %lld, \"config\": \"%s\", "
            "\"threads\": %d, \"scale\": %.3f, \"seconds\": %.6f, "
            "\"mpoints_per_s\": %.3f",
            bench_.c_str(), r.kernel.c_str(), r.grid.c_str(),
            static_cast<long long>(r.steps), r.config.c_str(),
            rt::Scheduler::instance().num_threads(), scale(), r.seconds,
            r.mpoints);
        if (n < 0) return false;
        if (r.has_tel) {
          const std::string tel =
              telemetry::to_json(r.tel, /*include_label=*/false);
          if (std::fprintf(f, ", \"telemetry\": %s", tel.c_str()) < 0) {
            return false;
          }
        }
        n = std::fprintf(f, "}%s\n", i + 1 < records_.size() ? "," : "");
        if (n < 0) return false;
      }
      return std::fprintf(f, "]\n") >= 0;
    });
    if (result.ok) {
      std::fprintf(stderr, "bench: wrote %zu records to %s\n", records_.size(),
                   path.c_str());
    } else {
      std::fprintf(stderr, "bench: FAILED to write %s: %s\n", path.c_str(),
                   result.error.c_str());
    }
  }

 private:
  struct Record {
    std::string kernel;
    std::string grid;
    std::int64_t steps;
    std::string config;
    double seconds;
    double mpoints;
    telemetry::RunTelemetry tel;
    bool has_tel;
  };

  std::string bench_;
  std::vector<Record> records_;
};

}  // namespace pochoir::bench
