// Shared infrastructure for the paper-reproduction benches.
//
// Every bench prints the corresponding paper table/figure in plain text.
// Grid sizes are scaled down from the paper's 12-core Nehalem testbed to
// run in about a minute; set POCHOIR_BENCH_SCALE=<f> to scale the
// space-time volume up (f > 1) or down.  EXPERIMENTS.md records the
// paper-vs-measured comparison for each experiment.
#pragma once

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <string>

#include "runtime/scheduler.hpp"
#include "support/table.hpp"
#include "support/timer.hpp"

namespace pochoir::bench {

/// Space-time scale factor from POCHOIR_BENCH_SCALE (default 1.0).
inline double scale() {
  if (const char* env = std::getenv("POCHOIR_BENCH_SCALE")) {
    const double v = std::atof(env);
    if (v > 0) return v;
  }
  return 1.0;
}

/// Scales a linear dimension by the cube/sqrt/... root of the volume scale.
inline std::int64_t scaled(std::int64_t base, double exponent) {
  const double v = static_cast<double>(base) *
                   std::pow(scale(), exponent);
  return v < 1 ? 1 : static_cast<std::int64_t>(v);
}

/// Times one run of `fn` in seconds.
template <typename F>
double timed(F&& fn) {
  Timer timer;
  fn();
  return timer.seconds();
}

inline void print_header(const char* what, const char* paper_ref) {
  std::printf("==============================================================\n");
  std::printf("%s\n", what);
  std::printf("reproduces: %s\n", paper_ref);
  std::printf("workers: %d   scale: %.2f\n",
              rt::Scheduler::instance().num_threads(), scale());
  std::printf("==============================================================\n");
}

}  // namespace pochoir::bench
