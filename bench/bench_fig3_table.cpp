// Figure 3 — the paper's main table: ten stencil benchmarks, each run as
//   Pochoir on 1 core, Pochoir on all cores, serial loops, parallel loops,
// reporting times, Pochoir self-speedup, and the loops/Pochoir ratios.
//
// Grids are scaled from the paper's 12-core sizes (e.g. Heat 2 was
// 16,000^2 x 500 there); the *ratios* are the reproduction target.
#include <array>
#include <cmath>
#include <cstdio>
#include <functional>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "core/boundary.hpp"
#include "core/stencil.hpp"
#include "stencils/apop.hpp"
#include "stencils/common.hpp"
#include "stencils/heat.hpp"
#include "stencils/lbm.hpp"
#include "stencils/lcs.hpp"
#include "stencils/life.hpp"
#include "stencils/psa.hpp"
#include "stencils/rna.hpp"
#include "stencils/wave.hpp"

namespace pochoir::bench {
namespace {

struct Row {
  std::string name;
  std::string dims;
  std::string grid;
  std::int64_t steps;
  std::int64_t space_points;  // spatial grid points per time step
  double pochoir_1core;
  double pochoir_pcore;
  double serial_loops;
  double parallel_loops;
  std::string paper_note;  // the paper's reported speedup / ratios
  // Per-config telemetry, populated only when POCHOIR_TELEMETRY (or
  // POCHOIR_TRACE) is set — the default timed path stays untouched.
  std::array<telemetry::RunTelemetry, 4> tel{};
};

/// Runs one benchmark in all four configurations.  Each config runs inside
/// a trace::Session, which is a pair of counter snapshots when telemetry is
/// off and additionally feeds the trace/registry exports when it is on.
template <typename Setup>
Row run_benchmark(const std::string& name, const std::string& dims,
                  const std::string& grid, std::int64_t steps,
                  std::int64_t space_points, Setup&& setup,
                  const std::string& paper_note) {
  Row row{name, dims, grid, steps, space_points, 0, 0, 0, 0, paper_note, {}};
  auto timed_cfg = [&](const char* cfg, Algorithm alg, bool parallel,
                       telemetry::RunTelemetry* out) {
    trace::Session session(name + " " + dims + "/" + cfg);
    const double s = timed([&] {
      auto runner = setup();
      runner(alg, parallel);
    });
    *out = session.finish();
    return s;
  };
  row.pochoir_1core = timed_cfg("trap_1core", Algorithm::kTrap,
                                /*parallel=*/false, &row.tel[0]);
  row.pochoir_pcore = timed_cfg("trap_pcore", Algorithm::kTrap,
                                /*parallel=*/true, &row.tel[1]);
  row.serial_loops = timed_cfg("loops_serial", Algorithm::kLoopsSerial,
                               /*parallel=*/false, &row.tel[2]);
  row.parallel_loops = timed_cfg("loops_parallel", Algorithm::kLoopsParallel,
                                 /*parallel=*/true, &row.tel[3]);
  std::fprintf(stderr, "  done %-8s (%.1fs/%.1fs/%.1fs/%.1fs)\n", name.c_str(),
               row.pochoir_1core, row.pochoir_pcore, row.serial_loops,
               row.parallel_loops);
  return row;
}

/// A runner closure: invokes the stencil with the requested algorithm.
template <int D, typename CellT, typename KernFactory, typename Init>
auto make_runner(Shape<D> shape, std::array<std::int64_t, D> extents,
                 BoundaryFn<CellT, D> boundary, std::int64_t steps,
                 KernFactory kern_factory, Init init) {
  return [=]() {
    auto arr = std::make_shared<Array<CellT, D>>(extents, shape.depth());
    arr->register_boundary(boundary);
    init(*arr);
    auto stencil = std::make_shared<Stencil<D, CellT>>(shape);
    stencil->register_arrays(*arr);
    // `arr` must be named in the capture list: the stencil only holds a raw
    // pointer to it, and [=] would not capture an unreferenced variable.
    return [stencil, arr, steps, kern_factory](Algorithm alg, bool parallel) {
      auto kern = kern_factory();
      if (parallel) {
        stencil->run(alg, steps, kern);
      } else {
        stencil->run_serial(alg, steps, kern);
      }
    };
  };
}

}  // namespace
}  // namespace pochoir::bench

int main() {
  using namespace pochoir;
  using namespace pochoir::bench;
  using namespace pochoir::stencils;

  print_header("Figure 3: benchmark table",
               "Tang et al., SPAA'11, Figure 3 (scaled grids)");

  std::vector<Row> rows;
  const double s13 = 1.0 / 3.0;  // 2D space + time scaling exponents
  (void)s13;

  // ---- Heat 2 (nonperiodic) -------------------------------------------
  {
    const std::int64_t n = scaled(1200, 1.0 / 3), t = scaled(96, 1.0 / 3);
    rows.push_back(run_benchmark(
        "Heat", "2", std::to_string(n) + "^2", t, n * n,
        make_runner<2, double>(
            heat_shape<2>(), {n, n}, dirichlet_boundary<double, 2>(0.0), t,
            [] { return heat_kernel_2d({0.125, 0.125}); },
            [](Array<double, 2>& a) { fill_random(a, 0, 0.0, 1.0); }),
        "paper: speedup 11.5, serial 25.5x, 12-core loops 6.2x"));
  }
  // ---- Heat 2p (periodic torus) ----------------------------------------
  {
    const std::int64_t n = scaled(1200, 1.0 / 3), t = scaled(96, 1.0 / 3);
    rows.push_back(run_benchmark(
        "Heat", "2p", std::to_string(n) + "^2", t, n * n,
        make_runner<2, double>(
            heat_shape<2>(), {n, n}, periodic_boundary<double, 2>(), t,
            [] { return heat_kernel_2d({0.125, 0.125}); },
            [](Array<double, 2>& a) { fill_random(a, 0, 0.0, 1.0); }),
        "paper: speedup 11.7, serial 68.6x, 12-core loops 10.3x"));
  }
  // ---- Heat 4 ------------------------------------------------------------
  {
    const std::int64_t n = scaled(36, 1.0 / 5), t = scaled(24, 1.0 / 5);
    rows.push_back(run_benchmark(
        "Heat", "4", std::to_string(n) + "^4", t, n * n * n * n,
        make_runner<4, double>(
            heat_shape<4>(), {n, n, n, n},
            dirichlet_boundary<double, 4>(0.0), t,
            [] { return heat_kernel_4d({0.06, 0.06, 0.06, 0.06}); },
            [](Array<double, 4>& a) { fill_random(a, 0, 0.0, 1.0); }),
        "paper: speedup 2.9, serial 8.0x, 12-core loops 1.9x"));
  }
  // ---- Life 2p ------------------------------------------------------------
  {
    const std::int64_t n = scaled(800, 1.0 / 3), t = scaled(96, 1.0 / 3);
    rows.push_back(run_benchmark(
        "Life", "2p", std::to_string(n) + "^2", t, n * n,
        make_runner<2, LifeCell>(
            life_shape(), {n, n}, periodic_boundary<LifeCell, 2>(), t,
            [] { return life_kernel(); },
            [](Array<LifeCell, 2>& a) {
              Rng rng(3);
              a.fill_time(0, [&](const auto&) -> LifeCell {
                return rng.next_below(3) == 0 ? 1 : 0;
              });
            }),
        "paper: speedup 12.3, serial 86.4x, 12-core loops 11.9x"));
  }
  // ---- Wave 3 -------------------------------------------------------------
  {
    const std::int64_t n = scaled(120, 1.0 / 4), t = scaled(40, 1.0 / 4);
    rows.push_back(run_benchmark(
        "Wave", "3", std::to_string(n) + "^3", t, n * n * n,
        make_runner<3, double>(
            wave_shape(), {n, n, n}, dirichlet_boundary<double, 3>(0.0), t,
            [] { return wave_kernel(0.1); },
            [](Array<double, 3>& a) {
              fill_random(a, 0, -0.1, 0.1);
              a.fill_time(1, [&](const std::array<std::int64_t, 3>& i) {
                return a.at(0, i);
              });
            }),
        "paper: speedup 6.9, serial 7.1x, 12-core loops 2.4x"));
  }
  // ---- LBM 3 ---------------------------------------------------------------
  {
    const std::int64_t n = scaled(48, 1.0 / 4), nz = scaled(64, 1.0 / 4);
    const std::int64_t t = scaled(40, 1.0 / 4);
    rows.push_back(run_benchmark(
        "LBM", "3", std::to_string(n) + "^2x" + std::to_string(nz), t, n * n * nz,
        make_runner<3, LbmCell>(
            lbm_shape(), {n, n, nz}, periodic_boundary<LbmCell, 3>(), t,
            [] { return lbm_kernel(0.7); },
            [](Array<LbmCell, 3>& a) { lbm_init(a, 0); }),
        "paper: speedup 5.1, serial 4.5x, 12-core loops 3.2x"));
  }
  // ---- RNA 2 ---------------------------------------------------------------
  {
    const std::int64_t n = 300;
    const std::int64_t t = scaled(300, 1.0);
    const auto seq = random_sequence(n, 4, 17);
    rows.push_back(run_benchmark(
        "RNA", "2", std::to_string(n) + "^2", t, n * n,
        make_runner<2, RnaCell>(
            rna_shape(), {n, n}, zero_boundary<RnaCell, 2>(), t,
            [seq] { return rna_kernel(seq); },
            [](Array<RnaCell, 2>& a) {
              a.fill_time(0, [](const auto&) { return 0; });
            }),
        "paper: speedup 4.5, serial 6.1x, 12-core loops 1.3x"));
  }
  // ---- PSA 1 ----------------------------------------------------------------
  {
    const std::int64_t n = scaled(8000, 1.0 / 2);
    const std::int64_t t = 2 * n - 1;
    const auto a_seq = random_sequence(n, 4, 21);
    const auto b_seq = random_sequence(n, 4, 22);
    const PsaCell border{psa_neg_inf, psa_neg_inf, psa_neg_inf};
    rows.push_back(run_benchmark(
        "PSA", "1", std::to_string(n), t, n + 1,
        make_runner<1, PsaCell>(
            psa_shape(), {n + 1}, dirichlet_boundary<PsaCell, 1>(border), t,
            [a_seq, b_seq] { return psa_kernel(a_seq, b_seq); },
            [border](Array<PsaCell, 1>& g) {
              g.fill_time(0, [&](const std::array<std::int64_t, 1>& i) {
                return i[0] == 0 ? PsaCell{0, psa_neg_inf, psa_neg_inf}
                                 : border;
              });
              g.fill_time(1, [&](const std::array<std::int64_t, 1>& i) {
                if (i[0] == 0) return PsaCell{psa_neg_inf, psa_neg_inf, -3};
                if (i[0] == 1) return PsaCell{psa_neg_inf, -3, psa_neg_inf};
                return border;
              });
            }),
        "paper: speedup 5.8, serial 24.0x, 12-core loops 4.3x"));
  }
  // ---- LCS 1 ----------------------------------------------------------------
  {
    const std::int64_t n = scaled(12000, 1.0 / 2);
    const std::int64_t t = 2 * n - 1;
    const auto a_seq = random_sequence(n, 4, 31);
    const auto b_seq = random_sequence(n, 4, 32);
    rows.push_back(run_benchmark(
        "LCS", "1", std::to_string(n), t, n + 1,
        make_runner<1, LcsCell>(
            lcs_shape(), {n + 1}, zero_boundary<LcsCell, 1>(), t,
            [a_seq, b_seq] { return lcs_kernel(a_seq, b_seq); },
            [](Array<LcsCell, 1>& g) {
              g.fill_time(0, [](const auto&) { return 0; });
              g.fill_time(1, [](const auto&) { return 0; });
            }),
        "paper: speedup 6.3, serial 11.7x, 12-core loops 3.0x"));
  }
  // ---- APOP 1 ----------------------------------------------------------------
  {
    ApopParams p;
    p.grid = scaled(65536, 1.0 / 2);
    p.steps = scaled(2048, 1.0 / 2);
    p.log_halfwidth = 4.0;
    // Keep the explicit scheme CFL-stable at this resolution.
    p.maturity = 0.9 / (p.dxi() > 0 ? (p.sigma * p.sigma / (p.dxi() * p.dxi()) + p.rate)
                                    : 1.0) * static_cast<double>(p.steps);
    rows.push_back(run_benchmark(
        "APOP", "1", std::to_string(p.grid), p.steps, p.grid,
        make_runner<1, double>(
            apop_shape(), {p.grid},
            BoundaryFn<double, 1>(
                [p](const Array<double, 1>&, std::int64_t,
                    const std::array<std::int64_t, 1>& idx) -> double {
                  return idx[0] < 0 ? p.payoff(idx[0]) : 0.0;
                }),
            p.steps, [p] { return apop_kernel(p); },
            [p](Array<double, 1>& v) {
              v.fill_time(0, [&](const std::array<std::int64_t, 1>& i) {
                return p.payoff(i[0]);
              });
            }),
        "paper: speedup 10.7, serial 128.8x, 12-core loops 12.0x"));
  }

  // ---- render the table -----------------------------------------------------
  Table table({"Benchmark", "Dims", "Grid", "Steps", "Pochoir 1c", "Pochoir Pc",
               "self-speedup", "serial loops", "ratio", "par loops", "ratio"});
  for (const Row& r : rows) {
    table.add_row({r.name, r.dims, r.grid, std::to_string(r.steps),
                   strf("%.2fs", r.pochoir_1core), strf("%.2fs", r.pochoir_pcore),
                   strf("%.2f", r.pochoir_1core / r.pochoir_pcore),
                   strf("%.2fs", r.serial_loops),
                   strf("%.1f", r.serial_loops / r.pochoir_pcore),
                   strf("%.2fs", r.parallel_loops),
                   strf("%.1f", r.parallel_loops / r.pochoir_pcore)});
  }
  table.print();
  std::printf("\npaper reference (12-core Nehalem):\n");
  for (const Row& r : rows) {
    std::printf("  %-5s %-3s %s\n", r.name.c_str(), r.dims.c_str(),
                r.paper_note.c_str());
  }
  std::printf("\nNote: 'ratio' columns are loops-time / Pochoir-all-cores "
              "time, the paper's 'ratio' definition.\n");

  JsonReport report("fig3_table");
  for (const Row& r : rows) {
    const double mpts = static_cast<double>(r.space_points) *
                        static_cast<double>(r.steps) / 1e6;
    const std::string kernel = r.name + " " + r.dims;
    const char* configs[4] = {"trap_1core", "trap_pcore", "loops_serial",
                              "loops_parallel"};
    const double secs[4] = {r.pochoir_1core, r.pochoir_pcore, r.serial_loops,
                            r.parallel_loops};
    for (int c = 0; c < 4; ++c) {
      // Counter deltas are all zero when telemetry was off; only attach
      // the block when it carries real data.
      const telemetry::RunTelemetry* tel =
          r.tel[static_cast<std::size_t>(c)].points() > 0
              ? &r.tel[static_cast<std::size_t>(c)]
              : nullptr;
      report.add(kernel, r.grid, r.steps, configs[c], secs[c],
                 mpts / secs[c], tel);
    }
  }
  return 0;
}
