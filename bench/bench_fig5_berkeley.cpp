// Figure 5 — comparison with the Berkeley autotuner's published numbers on
// the 3D 7-point and 27-point stencils (GStencil/s and GFLOPS).
//
// The Berkeley system is closed-source reference data; we reproduce the
// *benchmarks* with Pochoir's algorithm and print our throughput beside
// both published columns (the paper itself also compares against reported
// numbers rather than a side-by-side rerun).
#include <cstdio>

#include "bench_common.hpp"
#include "core/boundary.hpp"
#include "core/stencil.hpp"
#include "stencils/common.hpp"
#include "stencils/points.hpp"

int main() {
  using namespace pochoir;
  using namespace pochoir::bench;
  using namespace pochoir::stencils;

  print_header("Figure 5: 3D 7-point / 27-point stencils",
               "Tang et al., SPAA'11, Figure 5 (258^3 with ghost cells there)");

  const std::int64_t n = scaled(128, 1.0 / 4);
  const std::int64_t t = scaled(32, 1.0 / 4);
  std::printf("grid %lld^3, %lld time steps, ghost-cell equivalent "
              "(constant Dirichlet halo)\n\n",
              static_cast<long long>(n), static_cast<long long>(t));

  auto run_points = [&](const Shape<3>& shape, auto kern, int flops) {
    Array<double, 3> u({n, n, n}, shape.depth());
    u.register_boundary(dirichlet_boundary<double, 3>(0.0));
    fill_random(u, 0, 0.0, 1.0);
    Stencil<3, double> st(shape);
    st.register_arrays(u);
    const double secs = timed([&] { st.run(t, kern); });
    const double updates = static_cast<double>(n) * n * n * t;
    return std::make_pair(updates / secs / 1e9, updates * flops / secs / 1e9);
  };

  // 7-point: u' = alpha u + beta * sum(6 neighbors) — 8 flops/point.
  const auto [gs7, gf7] =
      run_points(pt7_shape(), pt7_kernel(0.4, 0.1), pt7_flops_per_point);
  // 27-point: 30 flops/point.
  const auto [gs27, gf27] = run_points(
      pt27_shape(), pt27_kernel(0.5, 0.05, 0.02, 0.01), pt27_flops_per_point);

  Table table({"stencil", "this machine", "", "paper: Berkeley (8c)",
               "paper: Pochoir (8c/12c)"});
  table.add_row({"3D 7-point", strf("%.3f GStencil/s", gs7),
                 strf("%.2f GFLOPS", gf7), "2.0 GSt/s | 15.8 GF",
                 "2.49 GSt/s | 19.92 GF"});
  table.add_row({"3D 27-point", strf("%.3f GStencil/s", gs27),
                 strf("%.2f GFLOPS", gf27), "0.95 GSt/s | 28.5 GF",
                 "0.88 GSt/s | 26.4 GF"});
  table.print();
  std::printf("\nshape check: 27-point throughput should be well below "
              "7-point in GStencil/s but closer in GFLOPS (paper: 27pt is "
              "compute-bound).\n");
  return 0;
}
