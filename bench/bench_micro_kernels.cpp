// Micro-benchmarks (google-benchmark): per-access costs of the three kernel
// access paths (interior clone, boundary clone, Phase-1 proxy), the
// work-stealing deque, and the cache simulator.  These quantify the
// constant factors behind the paper's §4 optimizations.
#include <benchmark/benchmark.h>

#include "analysis/cache_sim.hpp"
#include "core/array.hpp"
#include "core/boundary.hpp"
#include "core/shape.hpp"
#include "core/trap.hpp"
#include "core/views.hpp"
#include "core/walk_context.hpp"
#include "geometry/cuts.hpp"
#include "runtime/parallel.hpp"
#include "runtime/task_deque.hpp"

namespace {

using pochoir::Array;
using pochoir::BoundaryView;
using pochoir::InteriorView;

Array<double, 2>& grid() {
  static Array<double, 2> u = [] {
    Array<double, 2> a({256, 256}, 1);
    a.register_boundary(pochoir::periodic_boundary<double, 2>());
    a.fill_time(0, [](const std::array<std::int64_t, 2>& i) {
      return 0.001 * static_cast<double>(i[0] + i[1]);
    });
    return a;
  }();
  return u;
}

void BM_InteriorViewAccess(benchmark::State& state) {
  auto& u = grid();
  InteriorView<double, 2> v(u);
  std::int64_t x = 1;
  double acc = 0;
  for (auto _ : state) {
    acc += v(0, x, x + 1);
    x = (x + 7) % 250 + 1;
  }
  benchmark::DoNotOptimize(acc);
}
BENCHMARK(BM_InteriorViewAccess);

void BM_BoundaryViewAccessInterior(benchmark::State& state) {
  auto& u = grid();
  BoundaryView<double, 2> v(u);
  std::int64_t x = 1;
  double acc = 0;
  for (auto _ : state) {
    acc += v(0, x, x + 1);
    x = (x + 7) % 250 + 1;
  }
  benchmark::DoNotOptimize(acc);
}
BENCHMARK(BM_BoundaryViewAccessInterior);

void BM_BoundaryViewAccessOffGrid(benchmark::State& state) {
  auto& u = grid();
  BoundaryView<double, 2> v(u);
  std::int64_t x = 1;
  double acc = 0;
  for (auto _ : state) {
    acc += v(0, -x, x);  // always off-domain: boundary function invoked
    x = x % 250 + 1;
  }
  benchmark::DoNotOptimize(acc);
}
BENCHMARK(BM_BoundaryViewAccessOffGrid);

void BM_Phase1ProxyAccess(benchmark::State& state) {
  auto& u = grid();
  std::int64_t x = 1;
  double acc = 0;
  for (auto _ : state) {
    acc += u(0, x, x + 1);
    x = (x + 7) % 250 + 1;
  }
  benchmark::DoNotOptimize(acc);
}
BENCHMARK(BM_Phase1ProxyAccess);

void BM_TaskDequePushPop(benchmark::State& state) {
  pochoir::rt::TaskDeque dq;
  auto* token = reinterpret_cast<pochoir::rt::Task*>(std::uintptr_t{0x10});
  for (auto _ : state) {
    dq.push(token);
    benchmark::DoNotOptimize(dq.pop());
  }
}
BENCHMARK(BM_TaskDequePushPop);

void BM_CacheSimTouch(benchmark::State& state) {
  pochoir::CacheSim sim(256 * 1024);
  const auto& u = grid();
  const double* base = u.data();
  std::size_t i = 0;
  for (auto _ : state) {
    sim.touch(base + i, sizeof(double));
    i = (i + 17) % 65536;
  }
  benchmark::DoNotOptimize(sim.misses());
}
BENCHMARK(BM_CacheSimTouch);

void BM_PlanHyperspaceCut2D(benchmark::State& state) {
  const auto z = pochoir::Zoid<2>::box(0, 8, {512, 512});
  const std::array<std::int64_t, 2> sigma = {1, 1};
  const std::array<std::int64_t, 2> thresh = {1, 1};
  const std::array<std::int64_t, 2> grid_ext = {1024, 1024};
  for (auto _ : state) {
    auto plan = pochoir::plan_hyperspace_cut(z, sigma, thresh, grid_ext);
    benchmark::DoNotOptimize(plan.k);
  }
}
BENCHMARK(BM_PlanHyperspaceCut2D);

// Cost of bucketing one hyperspace cut's 9 subzoids by dependency level —
// the per-recursion-node overhead of the TRAP walker.
void BM_CollectSubzoidsByLevel2D(benchmark::State& state) {
  auto z = pochoir::Zoid<2>::box(0, 8, {512, 512});
  z.x0 = {1, 1};  // off-origin: plain trisection, not a seam cut
  const std::array<std::int64_t, 2> sigma = {1, 1};
  const std::array<std::int64_t, 2> thresh = {1, 1};
  const std::array<std::int64_t, 2> grid_ext = {1 << 20, 1 << 20};
  const auto plan = pochoir::plan_hyperspace_cut(z, sigma, thresh, grid_ext);
  pochoir::SubzoidLevels<2> levels;
  for (auto _ : state) {
    pochoir::collect_subzoids_by_level(z, plan, levels);
    benchmark::DoNotOptimize(levels.total());
  }
}
BENCHMARK(BM_CollectSubzoidsByLevel2D);

// Pure decomposition overhead of a full TRAP walk: no-op base cases, so
// everything measured is cuts, bucketing, and recursion bookkeeping.
// Reported per base-case zoid reached.
void BM_TrapWalkOverhead2D(benchmark::State& state) {
  using namespace pochoir;
  const Shape<2> shape = {{1, 0, 0}, {0, 0, 0}, {0, 1, 0},
                          {0, -1, 0}, {0, 0, -1}, {0, 0, 1}};
  const std::array<std::int64_t, 2> extents = {512, 512};
  const WalkContext<2> ctx =
      WalkContext<2>::make(shape, extents, Options<2>::heuristic());
  std::int64_t zoids = 0;
  for (auto _ : state) {
    auto base = [&](const Zoid<2>&) { ++zoids; };
    run_trap(ctx, rt::SerialPolicy{}, 0, 64, base, base);
    benchmark::DoNotOptimize(zoids);
  }
  state.SetItemsProcessed(zoids);
}
BENCHMARK(BM_TrapWalkOverhead2D);

}  // namespace

BENCHMARK_MAIN();
