// Figure 9 — Cilkview parallelism of TRAP (hyperspace cuts) vs STRAP
// (serial space cuts), uncoarsened base cases:
//   (a) 2D heat, space-time 1000*N^2, N = 100..6400
//   (b) 3D wave, space-time 1000*N^3, N = 100..800
//
// Measured here with the work/span analyzer, which replays the real
// decomposition (see src/analysis/dag_metrics.hpp).  The reproduction
// targets: TRAP's parallelism grows strictly faster with N than STRAP's
// for d >= 2 (Theorems 3 vs 5), with the gap widening in 3D.
#include <cmath>
#include <cstdio>
#include <string>
#include <vector>

#include "analysis/dag_metrics.hpp"
#include "bench_common.hpp"
#include "core/boundary.hpp"
#include "core/stencil.hpp"
#include "stencils/common.hpp"
#include "stencils/heat.hpp"
#include "stencils/wave.hpp"
#include "telemetry/export.hpp"

namespace pochoir::bench {
namespace {

/// Least-squares slope of log(parallelism) vs log(N): the growth exponent.
double fit_exponent(const std::vector<double>& n, const std::vector<double>& p) {
  double sx = 0, sy = 0, sxx = 0, sxy = 0;
  const double m = static_cast<double>(n.size());
  for (std::size_t i = 0; i < n.size(); ++i) {
    const double x = std::log(n[i]);
    const double y = std::log(p[i]);
    sx += x;
    sy += y;
    sxx += x * x;
    sxy += x * y;
  }
  return (m * sxy - sx * sy) / (m * sxx - sx * sx);
}

}  // namespace
}  // namespace pochoir::bench

int main() {
  using namespace pochoir;
  using namespace pochoir::bench;

  print_header("Figure 9: parallelism, hyperspace cut (TRAP) vs space cut (STRAP)",
               "Tang et al., SPAA'11, Figure 9 (Cilkview; uncoarsened)");

  // (a) 2D nonperiodic heat; the paper's time extent is 1000 at all N, which
  // only shifts work: parallelism is set by the spatial decomposition.
  {
    std::printf("\n(a) 2D heat equation, T = 256\n");
    Table table({"N", "TRAP work", "TRAP span", "TRAP par",
                 "STRAP par", "TRAP/STRAP"});
    std::vector<double> ns, pt, ps;
    for (std::int64_t n : {100, 200, 400, 800, 1600, 3200, 6400}) {
      Options<2> opts = Options<2>::uncoarsened();
      const auto ctx =
          WalkContext<2>::make(stencils::heat_shape<2>(), {n, n}, opts);
      const DagMetrics trap = analyze_trap(ctx, 0, 256);
      const DagMetrics strap = analyze_strap(ctx, 0, 256);
      ns.push_back(static_cast<double>(n));
      pt.push_back(trap.parallelism());
      ps.push_back(strap.parallelism());
      table.add_row({std::to_string(n), strf("%.3g", trap.work),
                     strf("%.3g", trap.span), strf("%.1f", trap.parallelism()),
                     strf("%.1f", strap.parallelism()),
                     strf("%.2f", trap.parallelism() / strap.parallelism())});
    }
    table.print();
    std::printf("fitted growth exponents: TRAP N^%.2f, STRAP N^%.2f "
                "(theory: N^1 vs N^%.2f for d=2)\n",
                fit_exponent(ns, pt), fit_exponent(ns, ps),
                3 - std::log2(5.0));
  }

  // (b) 3D nonperiodic wave.
  {
    std::printf("\n(b) 3D wave equation, T = 64\n");
    Table table({"N", "TRAP par", "STRAP par", "TRAP/STRAP"});
    std::vector<double> ns, pt, ps;
    for (std::int64_t n : {100, 200, 400, 800}) {
      Options<3> opts = Options<3>::uncoarsened();
      const auto ctx =
          WalkContext<3>::make(stencils::wave_shape(), {n, n, n}, opts);
      const DagMetrics trap = analyze_trap(ctx, 0, 64);
      const DagMetrics strap = analyze_strap(ctx, 0, 64);
      ns.push_back(static_cast<double>(n));
      pt.push_back(trap.parallelism());
      ps.push_back(strap.parallelism());
      table.add_row({std::to_string(n), strf("%.1f", trap.parallelism()),
                     strf("%.1f", strap.parallelism()),
                     strf("%.2f", trap.parallelism() / strap.parallelism())});
    }
    table.print();
    std::printf("fitted growth exponents: TRAP N^%.2f, STRAP N^%.2f "
                "(theory: d=3 gap is lg(2d+1)-lg(d+2) = %.2f)\n",
                fit_exponent(ns, pt), fit_exponent(ns, ps),
                std::log2(7.0) - std::log2(5.0));
  }

  std::printf("\npaper (measured, Cilkview): 2D heat N=6400: TRAP 1887 vs "
              "STRAP ~115; 3D wave N=800: TRAP 337 vs STRAP ~23.\n");

  // (c) A *measured* multi-threaded datapoint at whatever core count this
  // host offers: 2D periodic heat in the four Figure-3 configurations, with
  // telemetry attached (steal ratio, spawns, points/s) so the parallel
  // scaling claim is backed by observed scheduler activity, not only the
  // analytic work/span model above.
  {
    const int threads = rt::Scheduler::instance().num_threads();
    const std::int64_t n = scaled(1200, 1.0 / 3), t = scaled(96, 1.0 / 3);
    std::printf("\n(c) measured: 2D periodic heat %lldx%lld, T=%lld, "
                "%d thread(s)\n",
                static_cast<long long>(n), static_cast<long long>(n),
                static_cast<long long>(t), threads);

    struct Cfg {
      const char* name;
      Algorithm alg;
      bool parallel;
    };
    const Cfg cfgs[4] = {{"trap_1core", Algorithm::kTrap, false},
                         {"trap_pcore", Algorithm::kTrap, true},
                         {"loops_serial", Algorithm::kLoopsSerial, false},
                         {"loops_parallel", Algorithm::kLoopsParallel, true}};

    JsonReport report("fig9_parallelism");
    Table table({"config", "seconds", "Mpts/s", "speedup vs 1core", "spawns",
                 "steal ratio"});
    const double mpts =
        static_cast<double>(n) * static_cast<double>(n) *
        static_cast<double>(t) / 1e6;
    double base_seconds = 0.0;
    for (const Cfg& cfg : cfgs) {
      // force_enable: this bench exists to produce a measured telemetry
      // datapoint, so counters are on regardless of POCHOIR_TELEMETRY.
      trace::Session session(std::string("fig9/") + cfg.name,
                             /*force_enable=*/true);
      const double seconds = timed([&] {
        Array<double, 2> a({n, n}, stencils::heat_shape<2>().depth());
        a.register_boundary(periodic_boundary<double, 2>());
        stencils::fill_random(a, 0, 0.0, 1.0);
        Stencil<2, double> heat(stencils::heat_shape<2>());
        heat.register_arrays(a);
        auto kern = stencils::heat_kernel_2d({0.125, 0.125});
        if (cfg.parallel) {
          heat.run(cfg.alg, t, kern);
        } else {
          heat.run_serial(cfg.alg, t, kern);
        }
      });
      const telemetry::RunTelemetry tel = session.finish();
      if (base_seconds == 0.0) base_seconds = seconds;
      table.add_row({cfg.name, strf("%.3fs", seconds),
                     strf("%.1f", mpts / seconds),
                     strf("%.2f", base_seconds / seconds),
                     std::to_string(tel.sched.spawns),
                     strf("%.3f", tel.sched.steal_ratio())});
      report.add("Heat 2p", std::to_string(n) + "^2", t, cfg.name, seconds,
                 mpts / seconds, &tel);
    }
    table.print();
    std::printf("note: speedup is vs trap_1core on this host (%d thread(s)); "
                "the paper's Figure 9 is the analytic sections above.\n",
                threads);
  }
  return 0;
}
