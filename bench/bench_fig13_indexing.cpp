// Figure 13 — throughput of the two loop-indexing optimizations on the 2D
// periodic heat equation (grid points per second vs N):
//   -split-pointer      -> LinearStencil pointer-walking base case
//   -split-macro-shadow -> generic kernel through unchecked interior views
//                          (address computed per access, no bounds checks)
#include <cstdio>

#include "bench_common.hpp"
#include "core/boundary.hpp"
#include "core/stencil.hpp"
#include "stencils/common.hpp"
#include "stencils/heat.hpp"

int main() {
  using namespace pochoir;
  using namespace pochoir::bench;
  using namespace pochoir::stencils;

  print_header("Figure 13: -split-pointer vs -split-macro-shadow",
               "Tang et al., SPAA'11, Figure 13 (2D heat on a torus)");

  Table table({"N", "steps", "macro-shadow pts/s", "split-pointer pts/s",
               "split/macro"});
  const double budget = 1.0e8 * scale();  // space-time points per data point
  for (std::int64_t n : {128, 256, 512, 1024, 2048}) {
    std::int64_t t = static_cast<std::int64_t>(budget / (static_cast<double>(n) * n));
    if (t < 8) t = 8;
    const double points = static_cast<double>(n) * n * t;

    auto make = [&] {
      Array<double, 2> u({n, n}, 1);
      u.register_boundary(periodic_boundary<double, 2>());
      fill_random(u, 0, 0.0, 1.0);
      return u;
    };

    // macro-shadow analog: per-point kernel, unchecked views, full index
    // arithmetic per access.
    auto u1 = make();
    Stencil<2, double> s1(heat_shape<2>());
    s1.register_arrays(u1);
    const double macro_secs =
        timed([&] { s1.run(t, heat_kernel_2d({0.125, 0.125})); });

    // split-pointer: tap list + pointer-walking base case (Figure 12(c)).
    auto u2 = make();
    Stencil<2, double> s2(heat_shape<2>());
    s2.register_arrays(u2);
    const double split_secs =
        timed([&] { s2.run_linear(t, heat_linear<2>({0.125, 0.125})); });

    table.add_row({std::to_string(n), std::to_string(t),
                   strf("%.3g", points / macro_secs),
                   strf("%.3g", points / split_secs),
                   strf("%.2f", macro_secs / split_secs)});
  }
  table.print();
  std::printf("\npaper shape: split-pointer above macro-shadow across the "
              "whole sweep (1.2e8..5.3e9 pts/s on 12 cores there).\n");
  return 0;
}
