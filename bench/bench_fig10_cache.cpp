// Figure 10 — cache-miss ratios of TRAP, STRAP and the parallel-loop
// algorithm, measured in the ideal-cache model (fully associative LRU; the
// paper used hardware perf counters):
//   (a) 2D nonperiodic heat,  (b) 3D nonperiodic wave.
//
// Reproduction targets: LOOPS' miss ratio rises with N and plateaus once
// the grid outgrows the cache; TRAP and STRAP sit far lower and nearly
// coincide — §3 proves they apply identical time cuts, hence have the same
// cache complexity (the claim Figure 10 verifies empirically).
#include <cstdio>

#include "analysis/cache_sim.hpp"
#include "bench_common.hpp"
#include "core/boundary.hpp"
#include "core/stencil.hpp"
#include "stencils/common.hpp"
#include "stencils/heat.hpp"
#include "stencils/wave.hpp"

namespace {

constexpr std::int64_t kSimCacheBytes = 256 * 1024;  // L2-sized, 64B lines

}  // namespace

int main() {
  using namespace pochoir;
  using namespace pochoir::bench;
  using namespace pochoir::stencils;

  print_header("Figure 10: cache-miss ratio, TRAP vs STRAP vs LOOPS",
               "Tang et al., SPAA'11, Figure 10 (perf there; ideal-cache "
               "LRU simulation here, M=256KB, B=64B)");

  // (a) 2D heat.
  {
    std::printf("\n(a) 2D heat equation, uncoarsened, T = 64\n");
    Table table({"N", "TRAP", "STRAP", "LOOPS", "LOOPS/TRAP"});
    for (std::int64_t n : {128, 256, 512, 768}) {
      double ratio[3] = {0, 0, 0};
      const Algorithm algs[3] = {Algorithm::kTrap, Algorithm::kStrap,
                                 Algorithm::kLoopsSerial};
      for (int a = 0; a < 3; ++a) {
        Array<double, 2> u({n, n}, 1);
        u.register_boundary(dirichlet_boundary<double, 2>(0.0));
        fill_random(u, 0, 0.0, 1.0);
        Stencil<2, double> st(heat_shape<2>(), Options<2>::uncoarsened());
        st.register_arrays(u);
        CacheSim sim(kSimCacheBytes);
        st.run_traced(algs[a], 64, heat_kernel_2d({0.125, 0.125}), sim);
        ratio[a] = sim.miss_ratio();
      }
      table.add_row({std::to_string(n), strf("%.4f", ratio[0]),
                     strf("%.4f", ratio[1]), strf("%.4f", ratio[2]),
                     strf("%.1fx", ratio[2] / ratio[0])});
    }
    table.print();
  }

  // (b) 3D wave.
  {
    std::printf("\n(b) 3D wave equation, uncoarsened, T = 24\n");
    Table table({"N", "TRAP", "STRAP", "LOOPS", "LOOPS/TRAP"});
    for (std::int64_t n : {24, 40, 64}) {
      double ratio[3] = {0, 0, 0};
      const Algorithm algs[3] = {Algorithm::kTrap, Algorithm::kStrap,
                                 Algorithm::kLoopsSerial};
      for (int a = 0; a < 3; ++a) {
        Array<double, 3> u({n, n, n}, 2);
        u.register_boundary(dirichlet_boundary<double, 3>(0.0));
        fill_random(u, 0, -0.1, 0.1);
        u.fill_time(1, [&](const std::array<std::int64_t, 3>& i) {
          return u.at(0, i);
        });
        Stencil<3, double> st(wave_shape(), Options<3>::uncoarsened());
        st.register_arrays(u);
        CacheSim sim(kSimCacheBytes);
        st.run_traced(algs[a], 24, wave_kernel(0.1), sim);
        ratio[a] = sim.miss_ratio();
      }
      table.add_row({std::to_string(n), strf("%.4f", ratio[0]),
                     strf("%.4f", ratio[1]), strf("%.4f", ratio[2]),
                     strf("%.1fx", ratio[2] / ratio[0])});
    }
    table.print();
  }

  std::printf("\npaper shape: loops climb toward 0.86 (2D) / 0.99 (3D) while "
              "both cache-oblivious algorithms stay low and equal; absolute "
              "values differ (hardware counters vs ideal-cache model).\n");
  return 0;
}
