// §1 headline — "The code based on LOOPS ran in 248 seconds, whereas the
// Pochoir-generated code based on TRAP required about 24 seconds, more than
// a factor of 10 performance advantage" (5000^2 x 5000, 12 cores).
//
// Scaled to this machine; the reproduction target is TRAP beating the
// parallel loop nest, with the gap growing once the grid outgrows cache.
#include <cstdio>

#include "bench_common.hpp"
#include "core/boundary.hpp"
#include "core/stencil.hpp"
#include "stencils/common.hpp"
#include "stencils/heat.hpp"

int main() {
  using namespace pochoir;
  using namespace pochoir::bench;
  using namespace pochoir::stencils;

  print_header("Intro headline: LOOPS vs TRAP, 2D periodic heat",
               "Tang et al., SPAA'11, Section 1 (5000^2 x 5000 there)");

  const std::int64_t n = scaled(1500, 1.0 / 3);
  const std::int64_t t = scaled(300, 1.0 / 3);
  std::printf("grid %lldx%lld, %lld time steps\n\n", static_cast<long long>(n),
              static_cast<long long>(n), static_cast<long long>(t));

  auto run_config = [&](Algorithm alg, bool parallel) {
    Array<double, 2> u({n, n}, 1);
    u.register_boundary(periodic_boundary<double, 2>());
    fill_random(u, 0, 0.0, 1.0);
    Stencil<2, double> st(heat_shape<2>());
    st.register_arrays(u);
    const auto kern = heat_kernel_2d({0.125, 0.125});
    return timed([&] {
      if (parallel) {
        st.run(alg, t, kern);
      } else {
        st.run_serial(alg, t, kern);
      }
    });
  };

  const double loops_serial = run_config(Algorithm::kLoopsSerial, false);
  const double loops_par = run_config(Algorithm::kLoopsParallel, true);
  const double trap_par = run_config(Algorithm::kTrap, true);

  Table table({"implementation", "time", "vs TRAP"});
  table.add_row({"serial LOOPS (Figure 1)", strf("%.2fs", loops_serial),
                 strf("%.2fx", loops_serial / trap_par)});
  table.add_row({"parallel LOOPS (cilk_for)", strf("%.2fs", loops_par),
                 strf("%.2fx", loops_par / trap_par)});
  table.add_row({"Pochoir TRAP (Figure 2)", strf("%.2fs", trap_par), "1.00x"});
  table.print();
  std::printf("\npaper: 248s loops vs 24s Pochoir (10.3x) at full scale.\n");
  return 0;
}
