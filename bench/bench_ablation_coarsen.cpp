// §4 ablation — coarsening of base cases.
//
// "proper coarsening of the base case of the 2D heat-equation stencil ...
//  improves the performance by a factor of 36 over running the recursion
//  down to a single grid point."
//
// Sweeps (time, space) thresholds from fully uncoarsened to the paper's
// heuristic and beyond, and reports the slowdown of each relative to the
// best.  Also exercises the ISAT-style autotuner on the same sweep.
#include <cstdio>
#include <vector>

#include "bench_common.hpp"
#include "core/autotune.hpp"
#include "core/boundary.hpp"
#include "core/stencil.hpp"
#include "stencils/common.hpp"
#include "stencils/heat.hpp"

int main() {
  using namespace pochoir;
  using namespace pochoir::bench;
  using namespace pochoir::stencils;

  print_header("Ablation: base-case coarsening",
               "Tang et al., SPAA'11, Section 4 (36x there, 5000^2 x 5000)");

  const std::int64_t n = scaled(768, 1.0 / 3);
  const std::int64_t t = scaled(96, 1.0 / 3);
  std::printf("2D periodic heat, %lld^2 x %lld\n\n", static_cast<long long>(n),
              static_cast<long long>(t));

  auto trial = [&](const Options<2>& opts) {
    Array<double, 2> u({n, n}, 1);
    u.register_boundary(periodic_boundary<double, 2>());
    fill_random(u, 0, 0.0, 1.0);
    Stencil<2, double> st(heat_shape<2>(), opts);
    st.register_arrays(u);
    return timed([&] { st.run(t, heat_kernel_2d({0.125, 0.125})); });
  };

  struct Sample {
    std::int64_t dt, dx;
    double secs;
  };
  std::vector<Sample> samples;
  for (const auto [dt, dx] :
       {std::pair<std::int64_t, std::int64_t>{1, 1}, {1, 8}, {2, 16},
        {5, 100}, {8, 256}, {16, 1024}}) {
    Options<2> opts;
    opts.dt_threshold = dt;
    opts.dx_threshold = {dx, dx};
    samples.push_back({dt, dx, trial(opts)});
  }

  double best = samples.front().secs;
  for (const auto& s : samples) best = std::min(best, s.secs);

  Table table({"dt_threshold", "dx_threshold", "time", "slowdown vs best"});
  for (const auto& s : samples) {
    table.add_row({std::to_string(s.dt), std::to_string(s.dx),
                   strf("%.2fs", s.secs), strf("%.1fx", s.secs / best)});
  }
  table.print();

  std::printf("\nISAT-style autotuner over the same grid:\n");
  const auto tuned = autotune_coarsening<2>(
      trial, {2, 5, 8}, {64, 100, 256}, /*protect_unit_stride=*/false);
  std::printf("  best: dt=%lld dx=%lld (%.2fs across %zu candidates)\n",
              static_cast<long long>(tuned.best.dt_threshold),
              static_cast<long long>(tuned.best.dx_threshold[0]),
              tuned.best_seconds, tuned.samples.size());
  std::printf("\npaper: the uncoarsened recursion is 36x slower at full "
              "scale; the paper's 2D heuristic is dt=5, dx=100.\n");
  return 0;
}
