// Trapezoidal decomposition: parallel space cuts, hyperspace cuts with
// dependency levels (Lemma 1), and time cuts — §3 of the paper.
//
// A parallel space cut trisects the projection trapezoid along one
// dimension into two "black" pieces (labels 1 and 3) that are mutually
// independent and one minimal "gray" piece (label 2).  For an upright
// trapezoid the blacks are processed before the gray; for an inverted one
// the gray goes first.  A hyperspace cut applies space cuts to k dimensions
// simultaneously; the resulting 3^k subzoids are partitioned into k+1
// dependency levels by   dep(u) = sum_i (u_i + I_i) mod 2   where I_i = 1
// iff the projection along i is upright.
#pragma once

#include <array>
#include <cstdint>
#include <optional>
#include <type_traits>

#include "geometry/zoid.hpp"
#include "support/assertion.hpp"
#include "support/math_util.hpp"

namespace pochoir {

/// The pieces a single dimension contributes to a hyperspace cut.
///
/// `count` is 3 for a genuine trisection, 2 for the seam cut of a
/// full-circumference dimension (black ring + seam triangle in virtual
/// coordinates) or the degenerate bisection of a zero-slope dimension.
/// `label[j]` is the Lemma-1 label (1/3 = black, 2 = gray); `level_bit[j]`
/// is that piece's contribution (u_j + I) mod 2 to the dependency level.
struct DimCut {
  int count = 0;
  bool upright = true;
  bool seam = false;  ///< true for the circular (torus) cut
  std::array<Interval, 3> piece{};
  std::array<int, 3> label{};
  std::array<int, 3> level_bit{};

  /// Extra dependency levels this cut introduces (1 if it has a gray piece).
  [[nodiscard]] int level_span() const {
    int span = 0;
    for (int j = 0; j < count; ++j) span = std::max(span, level_bit[j]);
    return span;
  }
};

namespace detail {

/// Well-definedness of a single projection trapezoid of height h.
inline bool projection_well_defined(const Interval& v, std::int64_t h) {
  const std::int64_t bottom = v.x1 - v.x0;
  const std::int64_t top = (v.x1 + v.dx1 * h) - (v.x0 + v.dx0 * h);
  return bottom >= 0 && top >= 0 && (bottom > 0 || top > 0);
}

}  // namespace detail

/// Attempts the paper's parallel space cut along dimension `dim` with
/// stencil slope `sigma`.  Returns nullopt when the cut is inapplicable
/// (width below 2*sigma*height, or a resulting piece would be ill-defined).
///
/// `period` is the grid extent along `dim`.  The walker treats the whole
/// computation as periodic in every dimension (§4): a zoid that covers the
/// entire circumference with vertical sides receives the *seam cut* —
/// a shrinking black trapezoid over the full ring followed by a gray
/// triangle that grows across the seam in virtual coordinates
/// [period - sigma*h, period + sigma*h).  Cutting such a zoid with a plain
/// trisection would let points left of the seam be computed before the
/// points beyond it that they (periodically) depend on.
template <int D>
std::optional<DimCut> try_space_cut(const Zoid<D>& z, int dim,
                                    std::int64_t sigma, std::int64_t period) {
  const std::int64_t h = z.height();
  const std::int64_t w = z.width(dim);
  DimCut cut;
  cut.upright = z.upright(dim);

  if (sigma == 0) {
    // Zero-slope dimension: no spatial dependencies, so both halves are
    // independent black pieces (even across the seam).
    if (w < 2) return std::nullopt;
    const std::int64_t m = z.x0[dim] + w / 2;
    cut.count = 2;
    cut.piece[0] = {z.x0[dim], m, 0, 0};
    cut.piece[1] = {m, z.x1[dim], 0, 0};
    cut.label = {1, 3, 0};
    cut.level_bit = {0, 0, 0};
    return cut;
  }

  const bool full_circumference = z.x0[dim] == 0 && z.x1[dim] == period &&
                                  z.dx0[dim] == 0 && z.dx1[dim] == 0;
  if (full_circumference) {
    if (period < 2 * sigma * h) return std::nullopt;  // too short: time cut
    cut.count = 2;
    cut.seam = true;
    cut.piece[0] = {0, period, sigma, -sigma};          // black ring
    cut.piece[1] = {period, period, -sigma, sigma};     // gray seam triangle
    cut.label = {1, 2, 0};
    cut.level_bit = {0, 1, 0};
    return cut;
  }

  if (w < 2 * sigma * h) return std::nullopt;

  cut.count = 3;
  if (cut.upright) {
    // Split the longer (bottom) base at m; the gray inverted triangle grows
    // upward from the split point (Figure 7(a)).
    const std::int64_t m = z.x0[dim] + z.bottom_width(dim) / 2;
    cut.piece[0] = {z.x0[dim], m, z.dx0[dim], -sigma};  // black, label 1
    cut.piece[1] = {m, m, -sigma, sigma};               // gray,  label 2
    cut.piece[2] = {m, z.x1[dim], sigma, z.dx1[dim]};   // black, label 3
  } else {
    // Split the longer (top) base at lm; the gray upright triangle shrinks
    // to a point at the split (Figure 7(b)).
    const std::int64_t la = z.x0[dim] + z.dx0[dim] * h;
    const std::int64_t lm = la + z.top_width(dim) / 2;
    cut.piece[0] = {z.x0[dim], lm - sigma * h, z.dx0[dim], sigma};  // black 1
    cut.piece[1] = {lm - sigma * h, lm + sigma * h, sigma, -sigma}; // gray 2
    cut.piece[2] = {lm + sigma * h, z.x1[dim], -sigma, z.dx1[dim]}; // black 3
  }
  for (int j = 0; j < 3; ++j) {
    if (!detail::projection_well_defined(cut.piece[j], h)) return std::nullopt;
  }
  cut.label = {1, 2, 3};
  const int upright_bit = cut.upright ? 1 : 0;
  for (int j = 0; j < 3; ++j) {
    cut.level_bit[j] = (cut.label[j] + upright_bit) % 2;
  }
  return cut;
}

/// A hyperspace cut: the set of per-dimension cuts applied simultaneously.
template <int D>
struct HyperCut {
  std::array<std::optional<DimCut>, D> dims{};
  int k = 0;  ///< number of dimensions cut

  [[nodiscard]] bool empty() const { return k == 0; }

  /// Total number of subzoids, prod over cut dims of piece count.
  [[nodiscard]] std::int64_t subzoid_count() const {
    std::int64_t n = 1;
    for (const auto& cut : dims) {
      if (cut.has_value()) n *= cut->count;
    }
    return n;
  }

  /// Number of dependency levels (k + 1 in Lemma 1; degenerate bisections
  /// contribute no extra level).
  [[nodiscard]] int level_count() const {
    int levels = 1;
    for (const auto& cut : dims) {
      if (cut.has_value()) levels += cut->level_span();
    }
    return levels;
  }
};

/// Plans a hyperspace cut: tries a parallel space cut on every dimension
/// whose width exceeds both the slope condition and the coarsening
/// threshold.  An empty plan (k == 0) means no space cut applies.
template <int D>
HyperCut<D> plan_hyperspace_cut(
    const Zoid<D>& z,
    const std::type_identity_t<std::array<std::int64_t, D>>& sigma,
    const std::type_identity_t<std::array<std::int64_t, D>>& dx_threshold,
    const std::type_identity_t<std::array<std::int64_t, D>>& grid) {
  HyperCut<D> plan;
  for (int i = 0; i < D; ++i) {
    if (z.width(i) <= dx_threshold[i]) continue;
    if (auto cut = try_space_cut(z, i, sigma[i], grid[i])) {
      plan.dims[i] = *cut;
      ++plan.k;
    }
  }
  return plan;
}

/// Enumerates every subzoid of the hyperspace cut, invoking
/// `f(subzoid, dependency_level)`.  Order within a level is unspecified;
/// Lemma 1 guarantees same-level subzoids are independent.
template <int D, typename F>
void for_each_subzoid(const Zoid<D>& z, const HyperCut<D>& plan, F&& f) {
  std::array<int, D> choice{};  // per-dim piece index (0 for uncut dims)
  auto piece_count = [&](int i) {
    return plan.dims[i].has_value() ? plan.dims[i]->count : 1;
  };
  while (true) {
    Zoid<D> sub = z;
    int level = 0;
    bool degenerate = false;
    for (int i = 0; i < D; ++i) {
      if (!plan.dims[i].has_value()) continue;
      const DimCut& cut = *plan.dims[i];
      const Interval& v = cut.piece[choice[i]];
      sub.x0[i] = v.x0;
      sub.x1[i] = v.x1;
      sub.dx0[i] = v.dx0;
      sub.dx1[i] = v.dx1;
      level += cut.level_bit[choice[i]];
      // Gray pieces can be empty boxes when a black absorbed everything;
      // they are still well-defined (one base of positive length) unless
      // both bases vanish, which projection_well_defined has excluded.
      if (sub.x1[i] < sub.x0[i]) degenerate = true;
    }
    if (!degenerate) f(sub, level);
    // Mixed-radix increment over the choice vector.
    int i = 0;
    for (; i < D; ++i) {
      if (++choice[i] < piece_count(i)) break;
      choice[i] = 0;
    }
    if (i == D) break;
  }
}

/// The subzoids of one hyperspace cut, grouped by dependency level, in a
/// fixed-capacity stack-resident structure: a hyperspace cut of a D-zoid
/// yields at most 3^D subzoids across at most D+1 levels (Lemma 1), both
/// compile-time constants, so the walker never touches the heap while
/// recursing.  Buckets must be processed in order; zoids within a bucket
/// are mutually independent.
template <int D>
struct SubzoidLevels {
  static constexpr int kMaxSubzoids = static_cast<int>(ipow(3, D));
  static constexpr int kMaxLevels = D + 1;

  std::array<Zoid<D>, kMaxSubzoids> zoids;      ///< grouped by level
  std::array<int, kMaxLevels + 1> offset{};     ///< bucket l = [offset[l], offset[l+1])
  int level_count = 0;

  [[nodiscard]] int size(int level) const {
    return offset[static_cast<std::size_t>(level + 1)] -
           offset[static_cast<std::size_t>(level)];
  }
  [[nodiscard]] const Zoid<D>& at(int level, int i) const {
    return zoids[static_cast<std::size_t>(
        offset[static_cast<std::size_t>(level)] + i)];
  }
  [[nodiscard]] int total() const {
    return offset[static_cast<std::size_t>(level_count)];
  }
};

/// Collects the subzoids of a hyperspace cut into `out`, bucketed by
/// dependency level, without allocating.  The per-level counts are the
/// convolution of the per-dimension histograms (each cut dimension
/// contributes its non-degenerate pieces at level bit 0 or 1; a subzoid is
/// degenerate iff any of its pieces is), so sizing the buckets costs
/// O(D^2) and the geometry is enumerated exactly once.
template <int D>
void collect_subzoids_by_level(const Zoid<D>& z, const HyperCut<D>& plan,
                               SubzoidLevels<D>& out) {
  std::array<int, SubzoidLevels<D>::kMaxLevels> counts{};
  counts[0] = 1;
  int span = 0;
  for (int i = 0; i < D; ++i) {
    if (!plan.dims[static_cast<std::size_t>(i)].has_value()) continue;
    const DimCut& cut = *plan.dims[static_cast<std::size_t>(i)];
    int valid[2] = {0, 0};
    for (int j = 0; j < cut.count; ++j) {
      if (cut.piece[static_cast<std::size_t>(j)].x1 <
          cut.piece[static_cast<std::size_t>(j)].x0) {
        continue;  // degenerate piece: every combination using it is skipped
      }
      ++valid[cut.level_bit[static_cast<std::size_t>(j)]];
    }
    for (int l = span + 1; l >= 0; --l) {
      counts[static_cast<std::size_t>(l)] =
          counts[static_cast<std::size_t>(l)] * valid[0] +
          (l > 0 ? counts[static_cast<std::size_t>(l - 1)] * valid[1] : 0);
    }
    span += cut.level_span();
  }

  out.level_count = plan.level_count();
  POCHOIR_ASSERT(out.level_count <= SubzoidLevels<D>::kMaxLevels);
  out.offset[0] = 0;
  for (int l = 0; l < out.level_count; ++l) {
    out.offset[static_cast<std::size_t>(l + 1)] =
        out.offset[static_cast<std::size_t>(l)] +
        counts[static_cast<std::size_t>(l)];
  }

  std::array<int, SubzoidLevels<D>::kMaxLevels> cursor{};
  for (int l = 0; l < out.level_count; ++l) {
    cursor[static_cast<std::size_t>(l)] = out.offset[static_cast<std::size_t>(l)];
  }
  for_each_subzoid(z, plan, [&](const Zoid<D>& sub, int level) {
    POCHOIR_ASSERT(level < out.level_count);
    out.zoids[static_cast<std::size_t>(
        cursor[static_cast<std::size_t>(level)]++)] = sub;
  });
  for (int l = 0; l < out.level_count; ++l) {
    POCHOIR_ASSERT(cursor[static_cast<std::size_t>(l)] ==
                   out.offset[static_cast<std::size_t>(l + 1)]);
  }
}

/// Splits `z` across the middle of its time dimension (Figure 7(c)); the
/// lower half must be processed before the upper half.
template <int D>
std::pair<Zoid<D>, Zoid<D>> time_cut(const Zoid<D>& z) {
  POCHOIR_ASSERT(z.height() > 1);
  const std::int64_t half = z.height() / 2;
  Zoid<D> lower = z;
  lower.t1 = z.t0 + half;
  Zoid<D> upper = z;
  upper.t0 = z.t0 + half;
  for (int i = 0; i < D; ++i) {
    upper.x0[i] = z.x0[i] + z.dx0[i] * half;
    upper.x1[i] = z.x1[i] + z.dx1[i] * half;
  }
  return {lower, upper};
}

/// STRAP's serial space cut: the first dimension (lowest index) that admits
/// a parallel space cut, or nullopt.  Frigo & Strumpen cut one dimension
/// per recursion step; TRAP cuts all cuttable dimensions at once.
template <int D>
std::optional<std::pair<int, DimCut>> plan_first_cut(
    const Zoid<D>& z,
    const std::type_identity_t<std::array<std::int64_t, D>>& sigma,
    const std::type_identity_t<std::array<std::int64_t, D>>& dx_threshold,
    const std::type_identity_t<std::array<std::int64_t, D>>& grid) {
  for (int i = 0; i < D; ++i) {
    if (z.width(i) <= dx_threshold[i]) continue;
    if (auto cut = try_space_cut(z, i, sigma[i], grid[i])) {
      return std::make_pair(i, *cut);
    }
  }
  return std::nullopt;
}

/// Replaces dimension `dim` of `z` with one piece of a DimCut.
template <int D>
Zoid<D> with_piece(const Zoid<D>& z, int dim, const Interval& v) {
  Zoid<D> sub = z;
  sub.x0[dim] = v.x0;
  sub.x1[dim] = v.x1;
  sub.dx0[dim] = v.dx0;
  sub.dx1[dim] = v.dx1;
  return sub;
}

}  // namespace pochoir
