// Space-time hypertrapezoids ("zoids") — §3 of the paper.
//
// A (d+1)-zoid is the set of integer grid points  (t, x_0, ..., x_{d-1})
// with  t0 <= t < t1  and  x0_i + dx0_i (t - t0) <= x_i < x1_i + dx1_i (t - t0).
// x0/x1 give the base at time t0; dx0/dx1 are the (inverse) slopes of the
// sides, in grid points per time step.
#pragma once

#include <array>
#include <cstdint>

#include "support/assertion.hpp"

namespace pochoir {

/// One spatial dimension of a zoid: the projection trapezoid's geometry.
struct Interval {
  std::int64_t x0 = 0;   ///< lower base coordinate at t0 (inclusive)
  std::int64_t x1 = 0;   ///< upper base coordinate at t0 (exclusive)
  std::int64_t dx0 = 0;  ///< slope of the lower side
  std::int64_t dx1 = 0;  ///< slope of the upper side
};

/// A (D+1)-dimensional space-time hypertrapezoid.
template <int D>
struct Zoid {
  static_assert(D >= 1, "zoids need at least one spatial dimension");

  std::int64_t t0 = 0;
  std::int64_t t1 = 0;
  std::array<std::int64_t, D> x0{};
  std::array<std::int64_t, D> x1{};
  std::array<std::int64_t, D> dx0{};
  std::array<std::int64_t, D> dx1{};

  /// Height Δt = t1 - t0.
  [[nodiscard]] std::int64_t height() const { return t1 - t0; }

  /// Length of the base at time t0 along dimension i.
  [[nodiscard]] std::int64_t bottom_width(int i) const { return x1[i] - x0[i]; }

  /// Length of the base at time t1 along dimension i.
  [[nodiscard]] std::int64_t top_width(int i) const {
    const std::int64_t h = height();
    return (x1[i] + dx1[i] * h) - (x0[i] + dx0[i] * h);
  }

  /// Width w_i = length of the longer base (the paper's definition; Frigo &
  /// Strumpen use the average).
  [[nodiscard]] std::int64_t width(int i) const {
    const std::int64_t b = bottom_width(i);
    const std::int64_t t = top_width(i);
    return b > t ? b : t;
  }

  /// The projection trapezoid along dimension i is upright if the longer
  /// base is at time t0.
  [[nodiscard]] bool upright(int i) const {
    return bottom_width(i) >= top_width(i);
  }

  /// Paper's well-definedness: positive height, positive widths, and
  /// nonnegative base lengths in every dimension.
  [[nodiscard]] bool well_defined() const {
    if (height() < 1) return false;
    for (int i = 0; i < D; ++i) {
      if (bottom_width(i) < 0 || top_width(i) < 0 || width(i) < 1) return false;
    }
    return true;
  }

  /// Smallest spatial coordinate touched over the zoid's lifetime
  /// (evaluated at t0 and t1-1; the bound is linear in t).
  [[nodiscard]] std::int64_t min_lo(int i) const {
    const std::int64_t h = height() - 1;
    const std::int64_t at_end = x0[i] + dx0[i] * h;
    return x0[i] < at_end ? x0[i] : at_end;
  }

  /// One past the largest spatial coordinate touched over the lifetime.
  [[nodiscard]] std::int64_t max_hi(int i) const {
    const std::int64_t h = height() - 1;
    const std::int64_t at_end = x1[i] + dx1[i] * h;
    return x1[i] > at_end ? x1[i] : at_end;
  }

  /// Number of grid points contained (exact; O(height * D)).
  [[nodiscard]] std::int64_t volume() const {
    std::int64_t total = 0;
    for (std::int64_t t = t0; t < t1; ++t) {
      std::int64_t slice = 1;
      for (int i = 0; i < D; ++i) {
        const std::int64_t w =
            (x1[i] + dx1[i] * (t - t0)) - (x0[i] + dx0[i] * (t - t0));
        if (w <= 0) {
          slice = 0;
          break;
        }
        slice *= w;
      }
      total += slice;
    }
    return total;
  }

  /// The full space-time box [tb, te) x [0, n_i) with vertical sides.
  static Zoid box(std::int64_t tb, std::int64_t te,
                  const std::array<std::int64_t, D>& extents) {
    Zoid z;
    z.t0 = tb;
    z.t1 = te;
    for (int i = 0; i < D; ++i) {
      z.x0[i] = 0;
      z.x1[i] = extents[i];
    }
    return z;
  }

  friend bool operator==(const Zoid&, const Zoid&) = default;
};

namespace detail {

template <int I, int D, typename F>
inline void point_loop_nest(const std::array<std::int64_t, D>& lo,
                            const std::array<std::int64_t, D>& hi,
                            std::array<std::int64_t, D>& idx, std::int64_t t,
                            F&& f) {
  if constexpr (I == D) {
    f(t, const_cast<const std::array<std::int64_t, D>&>(idx));
  } else {
    for (idx[I] = lo[I]; idx[I] < hi[I]; ++idx[I]) {
      point_loop_nest<I + 1, D>(lo, hi, idx, t, f);
    }
  }
}

}  // namespace detail

/// Visits every unit-stride row of `z` in time-major order:
/// f(t, idx, row_end) where idx[0..D-2] are the outer coordinates,
/// idx[D-1] is the row start, and the row covers [idx[D-1], row_end).
template <int D, typename F>
inline void for_each_row(const Zoid<D>& z, F&& f) {
  std::array<std::int64_t, D> lo = z.x0;
  std::array<std::int64_t, D> hi = z.x1;
  for (std::int64_t t = z.t0; t < z.t1; ++t) {
    if (hi[D - 1] > lo[D - 1]) {
      if constexpr (D == 1) {
        f(t, lo, hi[0]);
      } else {
        bool empty = false;
        for (int i = 0; i + 1 < D; ++i) empty = empty || lo[i] >= hi[i];
        if (!empty) {
          std::array<std::int64_t, D> idx = lo;
          while (true) {
            f(t, idx, hi[D - 1]);
            int i = D - 2;
            for (; i >= 0; --i) {
              if (++idx[i] < hi[i]) break;
              idx[i] = lo[i];
            }
            if (i < 0) break;
            idx[D - 1] = lo[D - 1];
          }
        }
      }
    }
    for (int i = 0; i < D; ++i) {
      lo[i] += z.dx0[i];
      hi[i] += z.dx1[i];
    }
  }
}

/// Visits every grid point of `z` in time-major order, advancing the sloped
/// sides at each time step: f(t, idx) where idx is the spatial coordinate.
/// This is the base case loop nest of TRAP (lines 20-28 of Figure 2).
template <int D, typename F>
inline void for_each_point(const Zoid<D>& z, F&& f) {
  std::array<std::int64_t, D> lo = z.x0;
  std::array<std::int64_t, D> hi = z.x1;
  std::array<std::int64_t, D> idx{};
  for (std::int64_t t = z.t0; t < z.t1; ++t) {
    detail::point_loop_nest<0, D>(lo, hi, idx, t, f);
    for (int i = 0; i < D; ++i) {
      lo[i] += z.dx0[i];
      hi[i] += z.dx1[i];
    }
  }
}

}  // namespace pochoir
