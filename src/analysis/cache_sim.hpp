// Ideal-cache simulator — the perf substrate for Figure 10.
//
// The paper verifies cache behaviour with hardware counters; the
// theoretical bounds (Θ(hw^d / (M^{1/d} B)) misses) are stated in the
// ideal-cache model [Frigo et al. 1999]: a fully associative cache of M
// bytes with B-byte lines and optimal... approximated-by-LRU replacement.
// We simulate exactly that model: every array access of a traced serial run
// is fed through an LRU over line addresses, and the miss ratio
// (misses / references) reproduces Figure 10's series.
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

namespace pochoir {

/// Fully associative LRU cache over line addresses.
class CacheSim {
 public:
  /// `capacity_bytes` is M; `line_bytes` is B (a power of two).
  explicit CacheSim(std::int64_t capacity_bytes, int line_bytes = 64);

  /// Records an access of `bytes` bytes at `p` (may straddle lines).
  void touch(const void* p, std::size_t bytes);

  /// Number of line references so far.
  [[nodiscard]] std::uint64_t references() const { return references_; }

  /// Number of references that missed.
  [[nodiscard]] std::uint64_t misses() const { return misses_; }

  /// misses() / references(), the quantity plotted in Figure 10.
  [[nodiscard]] double miss_ratio() const {
    return references_ == 0
               ? 0.0
               : static_cast<double>(misses_) / static_cast<double>(references_);
  }

  [[nodiscard]] std::int64_t capacity_bytes() const { return capacity_bytes_; }
  [[nodiscard]] int line_bytes() const { return line_bytes_; }

  /// Empties the cache and zeroes the counters.
  void reset();

 private:
  struct Node {
    std::uint64_t line;
    std::int32_t prev;
    std::int32_t next;
  };

  void access_line(std::uint64_t line);
  void unlink(std::int32_t i);
  void push_front(std::int32_t i);

  std::int64_t capacity_bytes_;
  int line_bytes_;
  int line_shift_;
  std::int64_t max_lines_;

  std::vector<Node> pool_;
  std::unordered_map<std::uint64_t, std::int32_t> index_;
  std::int32_t head_ = -1;
  std::int32_t tail_ = -1;
  std::uint64_t last_line_ = ~0ULL;  // single-entry fast path

  std::uint64_t references_ = 0;
  std::uint64_t misses_ = 0;
};

/// An inclusive cache hierarchy: every touch is fed to each level, giving
/// per-level miss ratios from a single traced run (L1/L2/L3 in Figure 10's
/// experimental setup).
class CacheHierarchy {
 public:
  explicit CacheHierarchy(std::vector<CacheSim> levels)
      : levels_(std::move(levels)) {}

  void touch(const void* p, std::size_t bytes) {
    for (auto& level : levels_) level.touch(p, bytes);
  }

  [[nodiscard]] const CacheSim& level(std::size_t i) const { return levels_[i]; }
  [[nodiscard]] std::size_t level_count() const { return levels_.size(); }

  void reset() {
    for (auto& level : levels_) level.reset();
  }

 private:
  std::vector<CacheSim> levels_;
};

}  // namespace pochoir
