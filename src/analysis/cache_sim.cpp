#include "analysis/cache_sim.hpp"

#include "support/assertion.hpp"
#include "support/math_util.hpp"

namespace pochoir {

CacheSim::CacheSim(std::int64_t capacity_bytes, int line_bytes)
    : capacity_bytes_(capacity_bytes), line_bytes_(line_bytes) {
  POCHOIR_ASSERT_MSG(is_pow2(line_bytes), "cache line size must be 2^k");
  POCHOIR_ASSERT(capacity_bytes >= line_bytes);
  line_shift_ = ilog2(line_bytes);
  max_lines_ = capacity_bytes_ / line_bytes_;
  pool_.reserve(static_cast<std::size_t>(max_lines_));
  index_.reserve(static_cast<std::size_t>(max_lines_) * 2);
}

void CacheSim::touch(const void* p, std::size_t bytes) {
  const auto addr = reinterpret_cast<std::uint64_t>(p);
  const std::uint64_t first = addr >> line_shift_;
  const std::uint64_t last = (addr + (bytes == 0 ? 0 : bytes - 1)) >> line_shift_;
  for (std::uint64_t line = first; line <= last; ++line) access_line(line);
}

void CacheSim::access_line(std::uint64_t line) {
  ++references_;
  if (line == last_line_) return;  // hit on the MRU line, already in front
  last_line_ = line;

  if (auto it = index_.find(line); it != index_.end()) {
    const std::int32_t i = it->second;
    if (i != head_) {
      unlink(i);
      push_front(i);
    }
    return;
  }

  ++misses_;
  std::int32_t i;
  if (static_cast<std::int64_t>(pool_.size()) < max_lines_) {
    i = static_cast<std::int32_t>(pool_.size());
    pool_.push_back({line, -1, -1});
  } else {
    i = tail_;  // evict least-recently used
    unlink(i);
    index_.erase(pool_[static_cast<std::size_t>(i)].line);
    pool_[static_cast<std::size_t>(i)].line = line;
  }
  index_.emplace(line, i);
  push_front(i);
}

void CacheSim::unlink(std::int32_t i) {
  Node& n = pool_[static_cast<std::size_t>(i)];
  if (n.prev >= 0) {
    pool_[static_cast<std::size_t>(n.prev)].next = n.next;
  } else {
    head_ = n.next;
  }
  if (n.next >= 0) {
    pool_[static_cast<std::size_t>(n.next)].prev = n.prev;
  } else {
    tail_ = n.prev;
  }
  n.prev = n.next = -1;
}

void CacheSim::push_front(std::int32_t i) {
  Node& n = pool_[static_cast<std::size_t>(i)];
  n.prev = -1;
  n.next = head_;
  if (head_ >= 0) pool_[static_cast<std::size_t>(head_)].prev = i;
  head_ = i;
  if (tail_ < 0) tail_ = i;
}

void CacheSim::reset() {
  pool_.clear();
  index_.clear();
  head_ = tail_ = -1;
  last_line_ = ~0ULL;
  references_ = misses_ = 0;
}

}  // namespace pochoir
