// Work/span analysis — the Cilkview substrate for Figure 9.
//
// The paper measures parallelism (work T1 divided by span T_inf) with the
// Cilkview scalability analyzer.  Here we compute both quantities exactly
// by replaying the *same* decomposition decisions the real walkers make
// (shared planning code in geometry/cuts.hpp) and composing costs over the
// spawn tree:
//
//   serial composition:    work adds, span adds
//   parallel composition:  work adds, span takes the max plus a
//                          Theta(lg r) spawning term for a parallel loop
//                          of r iterations (as in the proof of Lemma 2)
//
// Base-case zoids contribute volume() * cost.point without visiting points,
// so the analysis runs in time proportional to the recursion tree, not the
// space-time volume; identical-shaped zoids are memoized (decomposition
// decisions are translation-invariant except for full-circumference seam
// detection, which the memo key captures).
#pragma once

#include <array>
#include <cmath>
#include <cstdint>
#include <type_traits>
#include <unordered_map>

#include "core/walk_context.hpp"
#include "geometry/cuts.hpp"
#include "geometry/zoid.hpp"

namespace pochoir {

/// Work and span of a computation, in abstract cost units.
struct DagMetrics {
  double work = 0;
  double span = 0;

  [[nodiscard]] double parallelism() const {
    return span > 0 ? work / span : 0;
  }

  DagMetrics& operator+=(const DagMetrics& o) {
    work += o.work;
    span += o.span;
    return *this;
  }
};

/// Cost model: all units are "kernel applications".
struct DagCosts {
  double point = 1.0;  ///< one kernel invocation
  double node = 1.0;   ///< fixed overhead per recursion node
  double spawn = 1.0;  ///< per-task spawn overhead in a parallel step
};

namespace detail {

template <int D>
struct ZoidShapeKey {
  std::int64_t h;
  std::array<std::int64_t, 3 * D> dims;  // width, dx0, dx1 per dim
  std::array<bool, D> full;              // full-circumference flag per dim

  bool operator==(const ZoidShapeKey&) const = default;
};

template <int D>
struct ZoidShapeKeyHash {
  std::size_t operator()(const ZoidShapeKey<D>& k) const {
    std::uint64_t h = 1469598103934665603ULL;
    auto mix = [&h](std::uint64_t v) {
      h ^= v + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2);
    };
    mix(static_cast<std::uint64_t>(k.h));
    for (auto v : k.dims) mix(static_cast<std::uint64_t>(v));
    for (bool b : k.full) mix(b ? 1 : 2);
    return static_cast<std::size_t>(h);
  }
};

template <int D>
ZoidShapeKey<D> shape_key(
    const Zoid<D>& z,
    const std::type_identity_t<std::array<std::int64_t, D>>& grid) {
  ZoidShapeKey<D> k;
  k.h = z.height();
  for (int i = 0; i < D; ++i) {
    k.dims[static_cast<std::size_t>(3 * i)] = z.bottom_width(i);
    k.dims[static_cast<std::size_t>(3 * i + 1)] = z.dx0[i];
    k.dims[static_cast<std::size_t>(3 * i + 2)] = z.dx1[i];
    k.full[static_cast<std::size_t>(i)] =
        z.x0[i] == 0 && z.x1[i] == grid[static_cast<std::size_t>(i)] &&
        z.dx0[i] == 0 && z.dx1[i] == 0;
  }
  return k;
}

inline double lg2(double x) { return x > 1 ? std::log2(x) : 0.0; }

template <int D, bool Hyper>
class MetricsWalker {
 public:
  MetricsWalker(const WalkContext<D>& ctx, const DagCosts& costs)
      : ctx_(ctx), costs_(costs) {}

  DagMetrics walk(const Zoid<D>& virtual_z) {
    const Zoid<D> z = ctx_.normalize(virtual_z);
    const auto key = shape_key(z, ctx_.grid);
    if (auto it = memo_.find(key); it != memo_.end()) return it->second;
    DagMetrics m = compute(z);
    m.work += costs_.node;
    m.span += costs_.node;
    memo_.emplace(key, m);
    return m;
  }

 private:
  DagMetrics compute(const Zoid<D>& z) {
    if constexpr (Hyper) {
      const HyperCut<D> plan =
          plan_hyperspace_cut(z, ctx_.sigma, ctx_.dx_threshold, ctx_.grid);
      if (!plan.empty()) return hyper_levels(z, plan);
    } else {
      if (auto cut =
              plan_first_cut(z, ctx_.sigma, ctx_.dx_threshold, ctx_.grid)) {
        return serial_cut(z, cut->first, cut->second);
      }
    }
    if (z.height() > ctx_.dt_threshold) {
      const auto halves = time_cut(z);
      DagMetrics m = walk(halves.first);
      m += walk(halves.second);
      return m;
    }
    const double units = static_cast<double>(z.volume()) * costs_.point;
    return {units, units};
  }

  /// TRAP: levels run serially; zoids within a level in parallel.
  DagMetrics hyper_levels(const Zoid<D>& z, const HyperCut<D>& plan) {
    SubzoidLevels<D> levels;
    collect_subzoids_by_level(z, plan, levels);
    DagMetrics total;
    for (int l = 0; l < levels.level_count; ++l) {
      const int n = levels.size(l);
      if (n == 0) continue;
      const double r = static_cast<double>(n);
      DagMetrics level{costs_.spawn * r, costs_.spawn * lg2(r)};
      double max_span = 0;
      for (int i = 0; i < n; ++i) {
        const DagMetrics m = walk(levels.at(l, i));
        level.work += m.work;
        max_span = std::max(max_span, m.span);
      }
      level.span += max_span;
      total += level;
    }
    return total;
  }

  /// STRAP: one dimension per step; blacks parallel, gray serialized.
  DagMetrics serial_cut(const Zoid<D>& z, int dim, const DimCut& c) {
    if (c.count == 2 && c.seam) {
      DagMetrics m = walk(with_piece(z, dim, c.piece[0]));
      m += walk(with_piece(z, dim, c.piece[1]));
      return m;
    }
    if (c.count == 2) {
      const DagMetrics a = walk(with_piece(z, dim, c.piece[0]));
      const DagMetrics b = walk(with_piece(z, dim, c.piece[1]));
      return {a.work + b.work + 2 * costs_.spawn,
              std::max(a.span, b.span) + costs_.spawn};
    }
    const DagMetrics b1 = walk(with_piece(z, dim, c.piece[0]));
    const DagMetrics g = walk(with_piece(z, dim, c.piece[1]));
    const DagMetrics b3 = walk(with_piece(z, dim, c.piece[2]));
    DagMetrics m{b1.work + b3.work + 2 * costs_.spawn,
                 std::max(b1.span, b3.span) + costs_.spawn};
    m += g;  // the gray piece is a synchronization point on its own
    return m;
  }

  const WalkContext<D>& ctx_;
  const DagCosts& costs_;
  std::unordered_map<ZoidShapeKey<D>, DagMetrics, ZoidShapeKeyHash<D>> memo_;
};

}  // namespace detail

/// Work/span of TRAP over [t0, t1) x grid.
template <int D>
DagMetrics analyze_trap(const WalkContext<D>& ctx, std::int64_t t0,
                        std::int64_t t1, const DagCosts& costs = {}) {
  detail::MetricsWalker<D, true> walker(ctx, costs);
  return walker.walk(Zoid<D>::box(t0, t1, ctx.grid));
}

/// Work/span of STRAP over [t0, t1) x grid.
template <int D>
DagMetrics analyze_strap(const WalkContext<D>& ctx, std::int64_t t0,
                         std::int64_t t1, const DagCosts& costs = {}) {
  detail::MetricsWalker<D, false> walker(ctx, costs);
  return walker.walk(Zoid<D>::box(t0, t1, ctx.grid));
}

/// Work/span of the parallel loop nest: each time step is a parallel loop
/// over the outermost dimension (grain 1), composed serially over time.
template <int D>
DagMetrics analyze_loops(const WalkContext<D>& ctx, std::int64_t t0,
                         std::int64_t t1, const DagCosts& costs = {}) {
  double slab = costs.point;
  for (int i = 1; i < D; ++i) {
    slab *= static_cast<double>(ctx.grid[static_cast<std::size_t>(i)]);
  }
  const double n0 = static_cast<double>(ctx.grid[0]);
  const double steps = static_cast<double>(t1 - t0);
  DagMetrics m;
  m.work = steps * (n0 * slab + costs.spawn * n0);
  m.span = steps * (slab + costs.spawn * detail::lg2(n0));
  return m;
}

}  // namespace pochoir
