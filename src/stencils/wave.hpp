// 3D finite-difference wave equation — the paper's Wave 3 benchmark.
//
//   u_{t+1} = 2 u_t - u_{t-1} + c^2 * laplacian(u_t)
//
// Depth-2 stencil: arrays need three circular time levels and two
// initialized time steps.
#pragma once

#include <cstdint>
#include <vector>

#include "core/linear_stencil.hpp"
#include "core/shape.hpp"

namespace pochoir::stencils {

inline Shape<3> wave_shape() {
  std::vector<ShapeCell<3>> cells;
  cells.push_back({1, {0, 0, 0}});
  cells.push_back({0, {0, 0, 0}});
  cells.push_back({-1, {0, 0, 0}});
  for (int i = 0; i < 3; ++i) {
    ShapeCell<3> plus{0, {}};
    plus.dx[i] = 1;
    cells.push_back(plus);
    ShapeCell<3> minus{0, {}};
    minus.dx[i] = -1;
    cells.push_back(minus);
  }
  return Shape<3>(std::move(cells));
}

/// `c2` is (c dt / dx)^2, the Courant number squared.
inline auto wave_kernel(double c2) {
  return [c2](std::int64_t t, std::int64_t x, std::int64_t y, std::int64_t z,
              auto u) {
    u(t + 1, x, y, z) =
        2 * u(t, x, y, z) - u(t - 1, x, y, z) +
        c2 * (u(t, x + 1, y, z) + u(t, x - 1, y, z) + u(t, x, y + 1, z) +
              u(t, x, y - 1, z) + u(t, x, y, z + 1) + u(t, x, y, z - 1) -
              6 * u(t, x, y, z));
  };
}

/// Tap form for the split-pointer path.
inline LinearStencil<double, 3> wave_linear(double c2) {
  using LS = LinearStencil<double, 3>;
  std::vector<LS::Tap> taps;
  taps.push_back({0, {0, 0, 0}, 2 - 6 * c2});
  taps.push_back({-1, {0, 0, 0}, -1.0});
  for (int i = 0; i < 3; ++i) {
    LS::Tap plus{0, {}, c2};
    plus.dx[i] = 1;
    taps.push_back(plus);
    LS::Tap minus{0, {}, c2};
    minus.dx[i] = -1;
    taps.push_back(minus);
  }
  return LS(1, std::move(taps));
}

}  // namespace pochoir::stencils
