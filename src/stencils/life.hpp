// Conway's Game of Life — the paper's Life 2p benchmark (periodic torus).
//
// Life is a non-linear stencil (the update is a table lookup on the
// neighbor count), so it exercises the generic-kernel path rather than the
// split-pointer path.
#pragma once

#include <cstdint>
#include <vector>

#include "core/shape.hpp"

namespace pochoir::stencils {

/// Cell state: 0 dead, 1 alive.
using LifeCell = std::int32_t;

/// Depth-1 shape covering the 3x3 Moore neighborhood.
inline Shape<2> life_shape() {
  std::vector<ShapeCell<2>> cells;
  cells.push_back({1, {0, 0}});
  for (std::int64_t dx = -1; dx <= 1; ++dx) {
    for (std::int64_t dy = -1; dy <= 1; ++dy) {
      cells.push_back({0, {dx, dy}});
    }
  }
  return Shape<2>(std::move(cells));
}

/// B3/S23 update rule.
inline auto life_kernel() {
  return [](std::int64_t t, std::int64_t x, std::int64_t y, auto u) {
    int neighbors = 0;
    for (std::int64_t dx = -1; dx <= 1; ++dx) {
      for (std::int64_t dy = -1; dy <= 1; ++dy) {
        if (dx == 0 && dy == 0) continue;
        neighbors += static_cast<LifeCell>(u(t, x + dx, y + dy));
      }
    }
    const LifeCell alive = u(t, x, y);
    u(t + 1, x, y) =
        (neighbors == 3 || (alive != 0 && neighbors == 2)) ? 1 : 0;
  };
}

}  // namespace pochoir::stencils
