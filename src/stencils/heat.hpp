// Heat equation (Jacobi update) in 1..4 dimensions — the paper's Heat 2,
// Heat 2p and Heat 4 benchmarks, and the running example of §1.
//
//   u_{t+1}(x) = u_t(x) + sum_i C_i * (u_t(x + e_i) + u_t(x - e_i) - 2 u_t(x))
#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "core/linear_stencil.hpp"
#include "core/shape.hpp"

namespace pochoir::stencils {

/// The (2D+2)-point heat shape: home at dt=+1, center and +-1 per dimension
/// at dt=0.
template <int D>
Shape<D> heat_shape() {
  std::vector<ShapeCell<D>> cells;
  cells.push_back({1, {}});
  cells.push_back({0, {}});
  for (int i = 0; i < D; ++i) {
    ShapeCell<D> plus{0, {}};
    plus.dx[i] = 1;
    cells.push_back(plus);
    ShapeCell<D> minus{0, {}};
    minus.dx[i] = -1;
    cells.push_back(minus);
  }
  return Shape<D>(std::move(cells));
}

/// Per-dimension diffusion coefficients C_i = alpha dt / dx_i^2.
template <int D>
using HeatCoeffs = std::array<double, D>;

/// Views-style kernels (the "interior/boundary clone" fast path).
inline auto heat_kernel_1d(HeatCoeffs<1> c) {
  return [c](std::int64_t t, std::int64_t x, auto u) {
    u(t + 1, x) = u(t, x) + c[0] * (u(t, x + 1) - 2 * u(t, x) + u(t, x - 1));
  };
}

inline auto heat_kernel_2d(HeatCoeffs<2> c) {
  return [c](std::int64_t t, std::int64_t x, std::int64_t y, auto u) {
    u(t + 1, x, y) = u(t, x, y) +
                     c[0] * (u(t, x + 1, y) - 2 * u(t, x, y) + u(t, x - 1, y)) +
                     c[1] * (u(t, x, y + 1) - 2 * u(t, x, y) + u(t, x, y - 1));
  };
}

inline auto heat_kernel_3d(HeatCoeffs<3> c) {
  return [c](std::int64_t t, std::int64_t x, std::int64_t y, std::int64_t z,
             auto u) {
    u(t + 1, x, y, z) =
        u(t, x, y, z) +
        c[0] * (u(t, x + 1, y, z) - 2 * u(t, x, y, z) + u(t, x - 1, y, z)) +
        c[1] * (u(t, x, y + 1, z) - 2 * u(t, x, y, z) + u(t, x, y - 1, z)) +
        c[2] * (u(t, x, y, z + 1) - 2 * u(t, x, y, z) + u(t, x, y, z - 1));
  };
}

inline auto heat_kernel_4d(HeatCoeffs<4> c) {
  return [c](std::int64_t t, std::int64_t x, std::int64_t y, std::int64_t z,
             std::int64_t w, auto u) {
    u(t + 1, x, y, z, w) =
        u(t, x, y, z, w) +
        c[0] * (u(t, x + 1, y, z, w) - 2 * u(t, x, y, z, w) + u(t, x - 1, y, z, w)) +
        c[1] * (u(t, x, y + 1, z, w) - 2 * u(t, x, y, z, w) + u(t, x, y - 1, z, w)) +
        c[2] * (u(t, x, y, z + 1, w) - 2 * u(t, x, y, z, w) + u(t, x, y, z - 1, w)) +
        c[3] * (u(t, x, y, z, w + 1) - 2 * u(t, x, y, z, w) + u(t, x, y, z, w - 1));
  };
}

/// The same update as a tap list for the split-pointer path (Figure 12(c)).
template <int D>
LinearStencil<double, D> heat_linear(const HeatCoeffs<D>& c) {
  using LS = LinearStencil<double, D>;
  std::vector<typename LS::Tap> taps;
  double center = 1.0;
  for (int i = 0; i < D; ++i) center -= 2 * c[static_cast<std::size_t>(i)];
  taps.push_back({0, {}, center});
  for (int i = 0; i < D; ++i) {
    typename LS::Tap plus{0, {}, c[static_cast<std::size_t>(i)]};
    plus.dx[i] = 1;
    taps.push_back(plus);
    typename LS::Tap minus{0, {}, c[static_cast<std::size_t>(i)]};
    minus.dx[i] = -1;
    taps.push_back(minus);
  }
  return LS(1, std::move(taps));
}

}  // namespace pochoir::stencils
