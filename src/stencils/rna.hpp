// RNA secondary-structure scoring — the paper's RNA benchmark.
//
// Substitution note (recorded in DESIGN.md): the paper maps an RNA
// secondary-structure DP [Akutsu 2000] onto a 300x300 grid evolved for 900
// steps but does not give the mapping.  We implement a *bounded-round
// pairing relaxation*: score(t, i, j) approximates the best pairing score
// of the subsequence [i, j] computable within t relaxation rounds,
//
//   score(t+1,i,j) = max( score(t,i,j),            -- keep
//                         score(t,i+1,j),          -- drop left base
//                         score(t,i,j-1),          -- drop right base
//                         pairable(s_i, s_j) ?     -- pair ends
//                           score(t,i+1,j-1) + bond(s_i,s_j) : -inf )
//
// It has the same footprint characteristics the paper highlights: a small
// integer grid, a fixed slope-1 shape, and a kernel dominated by
// data-dependent branches — the stated reasons RNA's speedup is limited.
// Scores are monotone in t and converge to the unbranched (crossing-free,
// no-split) pairing optimum.
#pragma once

#include <cstdint>
#include <vector>

#include "core/shape.hpp"

namespace pochoir::stencils {

using RnaCell = std::int32_t;

/// Bases: 0=A, 1=C, 2=G, 3=U.
inline std::int32_t rna_bond(int a, int b) {
  if ((a == 2 && b == 1) || (a == 1 && b == 2)) return 3;  // G-C
  if ((a == 0 && b == 3) || (a == 3 && b == 0)) return 2;  // A-U
  if ((a == 2 && b == 3) || (a == 3 && b == 2)) return 1;  // G-U wobble
  return 0;
}

inline Shape<2> rna_shape() {
  return Shape<2>{{1, 0, 0}, {0, 0, 0}, {0, 1, 0}, {0, 0, -1}, {0, 1, -1}};
}

/// Minimum hairpin loop length (no pairing of bases closer than this).
inline constexpr std::int64_t rna_min_loop = 3;

inline auto rna_kernel(std::vector<int> seq) {
  return [seq = std::move(seq)](std::int64_t t, std::int64_t i, std::int64_t j,
                                auto grid) {
    const auto n = static_cast<std::int64_t>(seq.size());
    RnaCell best = grid(t, i, j);
    if (i >= 0 && j < n && i <= j) {
      const RnaCell drop_left = grid(t, i + 1, j);
      if (drop_left > best) best = drop_left;
      const RnaCell drop_right = grid(t, i, j - 1);
      if (drop_right > best) best = drop_right;
      if (j - i > rna_min_loop) {
        const std::int32_t bond = rna_bond(seq[static_cast<std::size_t>(i)],
                                           seq[static_cast<std::size_t>(j)]);
        if (bond > 0) {
          const RnaCell paired =
              static_cast<RnaCell>(grid(t, i + 1, j - 1)) + bond;
          if (paired > best) best = paired;
        }
      }
    }
    grid(t + 1, i, j) = best;
  };
}

/// Reference: iterate the same relaxation serially for `rounds` rounds.
inline std::vector<RnaCell> rna_reference(const std::vector<int>& seq,
                                          std::int64_t rounds) {
  const auto n = static_cast<std::int64_t>(seq.size());
  std::vector<RnaCell> cur(static_cast<std::size_t>(n * n), 0);
  std::vector<RnaCell> next(static_cast<std::size_t>(n * n), 0);
  auto at = [n](std::vector<RnaCell>& v, std::int64_t i,
                std::int64_t j) -> RnaCell& {
    return v[static_cast<std::size_t>(i * n + j)];
  };
  auto get = [n](const std::vector<RnaCell>& v, std::int64_t i,
                 std::int64_t j) -> RnaCell {
    if (i < 0 || i >= n || j < 0 || j >= n) return 0;
    return v[static_cast<std::size_t>(i * n + j)];
  };
  for (std::int64_t t = 0; t < rounds; ++t) {
    for (std::int64_t i = 0; i < n; ++i) {
      for (std::int64_t j = 0; j < n; ++j) {
        RnaCell best = get(cur, i, j);
        if (i <= j) {
          best = std::max(best, get(cur, i + 1, j));
          best = std::max(best, get(cur, i, j - 1));
          if (j - i > rna_min_loop) {
            const std::int32_t bond =
                rna_bond(seq[static_cast<std::size_t>(i)],
                         seq[static_cast<std::size_t>(j)]);
            if (bond > 0) {
              best = std::max(best,
                              static_cast<RnaCell>(get(cur, i + 1, j - 1) + bond));
            }
          }
        }
        at(next, i, j) = best;
      }
    }
    std::swap(cur, next);
  }
  return cur;
}

}  // namespace pochoir::stencils
