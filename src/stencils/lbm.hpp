// Lattice Boltzmann method, D3Q19 BGK — the paper's LBM benchmark.
//
// The paper calls LBM "a complex stencil having many states": every grid
// point carries 19 distribution values, and one time step streams each
// distribution from the upwind neighbor and relaxes toward the local
// equilibrium (BGK collision).  The cell is a struct, so this kernel
// exercises the read()/write() view interface rather than expression
// proxies.
#pragma once

#include <array>
#include <cmath>
#include <cstdint>
#include <vector>

#include "core/shape.hpp"

namespace pochoir::stencils {

/// D3Q19 discrete velocity set; direction 0 is rest.
inline constexpr int lbm_q = 19;
inline constexpr std::array<std::array<int, 3>, lbm_q> lbm_e = {{
    {0, 0, 0},  {1, 0, 0},   {-1, 0, 0}, {0, 1, 0},  {0, -1, 0},
    {0, 0, 1},  {0, 0, -1},  {1, 1, 0},  {-1, -1, 0}, {1, -1, 0},
    {-1, 1, 0}, {1, 0, 1},   {-1, 0, -1}, {1, 0, -1}, {-1, 0, 1},
    {0, 1, 1},  {0, -1, -1}, {0, 1, -1}, {0, -1, 1},
}};

inline constexpr std::array<double, lbm_q> lbm_w = {
    1.0 / 3,  1.0 / 18, 1.0 / 18, 1.0 / 18, 1.0 / 18, 1.0 / 18, 1.0 / 18,
    1.0 / 36, 1.0 / 36, 1.0 / 36, 1.0 / 36, 1.0 / 36, 1.0 / 36, 1.0 / 36,
    1.0 / 36, 1.0 / 36, 1.0 / 36, 1.0 / 36, 1.0 / 36};

/// One lattice site: 19 distribution values.
struct LbmCell {
  std::array<double, lbm_q> f{};

  /// Local density (zeroth moment).
  [[nodiscard]] double density() const {
    double rho = 0;
    for (double v : f) rho += v;
    return rho;
  }
};

/// Shape: home at dt=+1; one dt=0 cell per upwind direction (-e_i).
inline Shape<3> lbm_shape() {
  std::vector<ShapeCell<3>> cells;
  cells.push_back({1, {0, 0, 0}});
  for (int q = 0; q < lbm_q; ++q) {
    cells.push_back({0,
                     {-lbm_e[static_cast<std::size_t>(q)][0],
                      -lbm_e[static_cast<std::size_t>(q)][1],
                      -lbm_e[static_cast<std::size_t>(q)][2]}});
  }
  return Shape<3>(std::move(cells));
}

/// Equilibrium distribution for (rho, u).
inline double lbm_feq(int q, double rho, const std::array<double, 3>& u) {
  const auto& e = lbm_e[static_cast<std::size_t>(q)];
  const double eu = e[0] * u[0] + e[1] * u[1] + e[2] * u[2];
  const double uu = u[0] * u[0] + u[1] * u[1] + u[2] * u[2];
  return lbm_w[static_cast<std::size_t>(q)] * rho *
         (1.0 + 3.0 * eu + 4.5 * eu * eu - 1.5 * uu);
}

/// Stream + BGK collide with relaxation time `tau`.
inline auto lbm_kernel(double tau) {
  const double omega = 1.0 / tau;
  return [omega](std::int64_t t, std::int64_t x, std::int64_t y,
                 std::int64_t z, auto grid) {
    // Stream: distribution q arrives from the upwind neighbor.
    std::array<double, lbm_q> f;
    for (int q = 0; q < lbm_q; ++q) {
      const auto& e = lbm_e[static_cast<std::size_t>(q)];
      const LbmCell up = grid.read(t, x - e[0], y - e[1], z - e[2]);
      f[static_cast<std::size_t>(q)] = up.f[static_cast<std::size_t>(q)];
    }
    // Moments.
    double rho = 0;
    std::array<double, 3> mom{};
    for (int q = 0; q < lbm_q; ++q) {
      const double v = f[static_cast<std::size_t>(q)];
      rho += v;
      const auto& e = lbm_e[static_cast<std::size_t>(q)];
      mom[0] += v * e[0];
      mom[1] += v * e[1];
      mom[2] += v * e[2];
    }
    std::array<double, 3> vel{};
    if (rho > 0) {
      vel = {mom[0] / rho, mom[1] / rho, mom[2] / rho};
    }
    // Collide.
    LbmCell out;
    for (int q = 0; q < lbm_q; ++q) {
      const double feq = lbm_feq(q, rho, vel);
      out.f[static_cast<std::size_t>(q)] =
          f[static_cast<std::size_t>(q)] +
          omega * (feq - f[static_cast<std::size_t>(q)]);
    }
    grid.write(t + 1, x, y, z, out);
  };
}

/// Initializes level `t` to equilibrium at unit density with a smooth shear
/// velocity perturbation (a standard LBM benchmark initial condition).
template <typename ArrayT>
void lbm_init(ArrayT& a, std::int64_t t) {
  const double pi = 3.14159265358979323846;
  const auto nx = static_cast<double>(a.extent(0));
  const auto ny = static_cast<double>(a.extent(1));
  a.fill_time(t, [&](const std::array<std::int64_t, 3>& idx) {
    const std::array<double, 3> vel = {
        0.05 * std::sin(2 * pi * static_cast<double>(idx[1]) / ny),
        0.02 * std::sin(2 * pi * static_cast<double>(idx[0]) / nx), 0.0};
    LbmCell cell;
    for (int q = 0; q < lbm_q; ++q) {
      cell.f[static_cast<std::size_t>(q)] = lbm_feq(q, 1.0, vel);
    }
    return cell;
  });
}

}  // namespace pochoir::stencils
