// American put option pricing by explicit finite differences — the paper's
// APOP benchmark.
//
// The Black–Scholes PDE is discretized on a log-price grid (constant
// coefficients, so the explicit scheme is stable for sigma^2 dt <= dxi^2),
// marching backward from expiry.  Early exercise makes the update
// non-linear:  v_{t+1}(x) = max(payoff(x), a v_t(x-1) + b v_t(x) + c v_t(x+1)).
#pragma once

#include <cmath>
#include <cstdint>
#include <vector>

#include "core/shape.hpp"

namespace pochoir::stencils {

struct ApopParams {
  double strike = 100.0;
  double spot_center = 100.0;  ///< price at the grid midpoint
  double rate = 0.05;
  double sigma = 0.2;
  double maturity = 1.0;
  std::int64_t grid = 2048;    ///< number of log-price nodes
  std::int64_t steps = 4096;   ///< time steps to expiry (CFL-stable default)
  double log_halfwidth = 4.0;  ///< grid spans +- this many log units

  [[nodiscard]] double dxi() const {
    return 2 * log_halfwidth / static_cast<double>(grid);
  }
  [[nodiscard]] double dt() const {
    return maturity / static_cast<double>(steps);
  }
  /// Stock price at node x.
  [[nodiscard]] double price(std::int64_t x) const {
    const double xi = (static_cast<double>(x) -
                       static_cast<double>(grid) / 2.0) * dxi();
    return spot_center * std::exp(xi);
  }
  /// Put payoff at node x.
  [[nodiscard]] double payoff(std::int64_t x) const {
    const double p = strike - price(x);
    return p > 0 ? p : 0;
  }
  /// True when the explicit scheme is stable (CFL-type condition).
  [[nodiscard]] bool stable() const {
    return dt() * (sigma * sigma / (dxi() * dxi()) + rate) < 1.0;
  }
};

inline Shape<1> apop_shape() {
  return Shape<1>{{1, 0}, {0, -1}, {0, 0}, {0, 1}};
}

/// Backward-induction kernel with early exercise.
inline auto apop_kernel(const ApopParams& p) {
  const double dxi = p.dxi();
  const double dt = p.dt();
  const double drift = p.rate - 0.5 * p.sigma * p.sigma;
  const double diff = 0.5 * p.sigma * p.sigma * dt / (dxi * dxi);
  const double adv = 0.5 * drift * dt / dxi;
  const double a = diff - adv;
  const double b = 1.0 - 2.0 * diff - p.rate * dt;
  const double c = diff + adv;
  return [a, b, c, p](std::int64_t t, std::int64_t x, auto v) {
    const double cont = a * v(t, x - 1) + b * v(t, x) + c * v(t, x + 1);
    const double exercise = p.payoff(x);
    v(t + 1, x) = cont > exercise ? cont : exercise;
  };
}

/// Boundary: deep in-the-money on the left (immediate exercise), worthless
/// far out-of-the-money on the right.
template <typename ArrayT>
void apop_register_boundary(ArrayT& v, const ApopParams& p) {
  v.register_boundary([p](const auto&, std::int64_t,
                          const std::array<std::int64_t, 1>& idx) -> double {
    return idx[0] < 0 ? p.payoff(idx[0]) : 0.0;
  });
}

/// Serial reference implementation for validation.
inline std::vector<double> apop_reference(const ApopParams& p) {
  const std::size_t n = static_cast<std::size_t>(p.grid);
  std::vector<double> cur(n), next(n);
  for (std::size_t x = 0; x < n; ++x) {
    cur[x] = p.payoff(static_cast<std::int64_t>(x));
  }
  const double dxi = p.dxi();
  const double dt = p.dt();
  const double drift = p.rate - 0.5 * p.sigma * p.sigma;
  const double diff = 0.5 * p.sigma * p.sigma * dt / (dxi * dxi);
  const double adv = 0.5 * drift * dt / dxi;
  const double a = diff - adv;
  const double b = 1.0 - 2.0 * diff - p.rate * dt;
  const double c = diff + adv;
  for (std::int64_t t = 0; t < p.steps; ++t) {
    for (std::size_t x = 0; x < n; ++x) {
      const double left =
          x == 0 ? p.payoff(-1) : cur[x - 1];
      const double right = x + 1 == n ? 0.0 : cur[x + 1];
      const double cont = a * left + b * cur[x] + c * right;
      const double exercise = p.payoff(static_cast<std::int64_t>(x));
      next[x] = cont > exercise ? cont : exercise;
    }
    std::swap(cur, next);
  }
  return cur;
}

}  // namespace pochoir::stencils
