// Shared helpers for the benchmark stencil kernels.
#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "core/array.hpp"
#include "support/rng.hpp"

namespace pochoir::stencils {

/// Fills time level `t` with deterministic pseudo-random values in [lo, hi).
template <int D>
void fill_random(Array<double, D>& a, std::int64_t t, double lo, double hi,
                 std::uint64_t seed = 42) {
  Rng rng(seed);
  a.fill_time(t, [&](const std::array<std::int64_t, D>&) {
    return rng.uniform(lo, hi);
  });
}

/// Deterministic checksum of one time level (order-independent sum).
template <typename T, int D>
double checksum(const Array<T, D>& a, std::int64_t t) {
  double sum = 0;
  std::array<std::int64_t, D> idx{};
  const auto& n = a.extents();
  while (true) {
    sum += static_cast<double>(a.at(t, idx));
    int i = D - 1;
    for (; i >= 0; --i) {
      if (++idx[static_cast<std::size_t>(i)] < n[static_cast<std::size_t>(i)]) break;
      idx[static_cast<std::size_t>(i)] = 0;
    }
    if (i < 0) break;
  }
  return sum;
}

/// Random base string over alphabet {0..alphabet-1} for the DP benchmarks.
inline std::vector<int> random_sequence(std::int64_t length, int alphabet,
                                        std::uint64_t seed) {
  Rng rng(seed);
  std::vector<int> s(static_cast<std::size_t>(length));
  for (auto& c : s) c = static_cast<int>(rng.next_below(alphabet));
  return s;
}

}  // namespace pochoir::stencils
