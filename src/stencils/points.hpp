// 3D 7-point and 27-point stencils — the Berkeley-autotuner benchmarks of
// Figure 5.  Per the paper, the 7-point update costs 8 flops per point and
// the 27-point update costs 30 flops per point.
#pragma once

#include <cstdint>
#include <vector>

#include "core/linear_stencil.hpp"
#include "core/shape.hpp"

namespace pochoir::stencils {

inline Shape<3> pt7_shape() {
  std::vector<ShapeCell<3>> cells;
  cells.push_back({1, {0, 0, 0}});
  cells.push_back({0, {0, 0, 0}});
  for (int i = 0; i < 3; ++i) {
    ShapeCell<3> plus{0, {}};
    plus.dx[i] = 1;
    cells.push_back(plus);
    ShapeCell<3> minus{0, {}};
    minus.dx[i] = -1;
    cells.push_back(minus);
  }
  return Shape<3>(std::move(cells));
}

/// u' = alpha * u + beta * (sum of 6 face neighbors): 8 flops.
inline auto pt7_kernel(double alpha, double beta) {
  return [alpha, beta](std::int64_t t, std::int64_t x, std::int64_t y,
                       std::int64_t z, auto u) {
    u(t + 1, x, y, z) =
        alpha * u(t, x, y, z) +
        beta * (u(t, x + 1, y, z) + u(t, x - 1, y, z) + u(t, x, y + 1, z) +
                u(t, x, y - 1, z) + u(t, x, y, z + 1) + u(t, x, y, z - 1));
  };
}

/// Number of floating-point operations per 7-point update (Figure 5).
inline constexpr int pt7_flops_per_point = 8;

inline Shape<3> pt27_shape() {
  std::vector<ShapeCell<3>> cells;
  cells.push_back({1, {0, 0, 0}});
  for (std::int64_t dx = -1; dx <= 1; ++dx) {
    for (std::int64_t dy = -1; dy <= 1; ++dy) {
      for (std::int64_t dz = -1; dz <= 1; ++dz) {
        cells.push_back({0, {dx, dy, dz}});
      }
    }
  }
  return Shape<3>(std::move(cells));
}

/// u' = alpha*u + beta*faces + gamma*edges + delta*corners: 30 flops
/// (26 additions + 4 multiplications).
inline auto pt27_kernel(double alpha, double beta, double gamma, double delta) {
  return [=](std::int64_t t, std::int64_t x, std::int64_t y, std::int64_t z,
             auto u) {
    double faces = 0, edges = 0, corners = 0;
    for (std::int64_t dx = -1; dx <= 1; ++dx) {
      for (std::int64_t dy = -1; dy <= 1; ++dy) {
        for (std::int64_t dz = -1; dz <= 1; ++dz) {
          const int manhattan =
              static_cast<int>((dx != 0) + (dy != 0) + (dz != 0));
          if (manhattan == 0) continue;
          const double v = u(t, x + dx, y + dy, z + dz);
          if (manhattan == 1) {
            faces += v;
          } else if (manhattan == 2) {
            edges += v;
          } else {
            corners += v;
          }
        }
      }
    }
    u(t + 1, x, y, z) =
        alpha * u(t, x, y, z) + beta * faces + gamma * edges + delta * corners;
  };
}

/// Number of floating-point operations per 27-point update (Figure 5).
inline constexpr int pt27_flops_per_point = 30;

}  // namespace pochoir::stencils
