// Longest common subsequence as a 1D stencil — the paper's LCS benchmark.
//
// The classic DP  L[i][j] = (a_i == b_j) ? L[i-1][j-1]+1
//                                        : max(L[i-1][j], L[i][j-1])
// is mapped onto space-time with t = i + j (the antidiagonal) and x = i:
//
//   L[i][j]     -> cell (t,   x)
//   L[i-1][j]   -> cell (t-1, x-1)
//   L[i][j-1]   -> cell (t-1, x)
//   L[i-1][j-1] -> cell (t-2, x-1)
//
// a depth-2, slope-1 one-dimensional stencil.  Cells outside the DP domain
// (j = t - x out of range) are kept at 0, which is also the correct DP
// border value, so the kernel's only branches are the DP cases themselves.
#pragma once

#include <cstdint>
#include <vector>

#include "core/shape.hpp"

namespace pochoir::stencils {

using LcsCell = std::int32_t;

inline Shape<1> lcs_shape() {
  return Shape<1>{{2, 0}, {1, -1}, {1, 0}, {0, -1}};
}

/// `a` indexes rows (x = i in [0, a.size()]), `b` columns.  The stencil is
/// invoked at time t writing antidiagonal i + j = t - 1 (home dt realigns),
/// with x = i.  Entries use 1-based DP indexing; x=0 and j=0 are borders.
inline auto lcs_kernel(std::vector<int> a, std::vector<int> b) {
  return [a = std::move(a), b = std::move(b)](std::int64_t t, std::int64_t x,
                                              auto grid) {
    // Writing home cell at (t + 2, x): antidiagonal index d = t + 2,
    // i = x, j = d - i.
    const std::int64_t i = x;
    const std::int64_t j = (t + 2) - i;
    const auto rows = static_cast<std::int64_t>(a.size());
    const auto cols = static_cast<std::int64_t>(b.size());
    LcsCell value = 0;
    if (i >= 1 && i <= rows && j >= 1 && j <= cols) {
      if (a[static_cast<std::size_t>(i - 1)] ==
          b[static_cast<std::size_t>(j - 1)]) {
        value = static_cast<LcsCell>(grid(t, x - 1)) + 1;  // L[i-1][j-1]
      } else {
        const LcsCell up = grid(t + 1, x - 1);   // L[i-1][j]
        const LcsCell left = grid(t + 1, x);     // L[i][j-1]
        value = up > left ? up : left;
      }
    }
    grid(t + 2, x) = value;
  };
}

/// Reference DP for validation.
inline LcsCell lcs_reference(const std::vector<int>& a,
                             const std::vector<int>& b) {
  const std::size_t rows = a.size();
  const std::size_t cols = b.size();
  std::vector<LcsCell> prev(cols + 1, 0);
  std::vector<LcsCell> cur(cols + 1, 0);
  for (std::size_t i = 1; i <= rows; ++i) {
    cur[0] = 0;
    for (std::size_t j = 1; j <= cols; ++j) {
      if (a[i - 1] == b[j - 1]) {
        cur[j] = prev[j - 1] + 1;
      } else {
        cur[j] = prev[j] > cur[j - 1] ? prev[j] : cur[j - 1];
      }
    }
    std::swap(prev, cur);
  }
  return prev[cols];
}

}  // namespace pochoir::stencils
