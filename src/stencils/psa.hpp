// Pairwise sequence alignment (Gotoh affine-gap DP) as a 1D stencil — the
// paper's PSA benchmark.
//
// Needleman–Wunsch/Gotoh recurrences over a 2D DP table are mapped onto
// space-time by t = i + j (antidiagonal) and x = i, giving a depth-2,
// slope-1 1D stencil over struct cells {M, Ix, Iy}.  The DP domain is the
// diamond (0 <= i <= |a|, 0 <= j <= |b|), so — as the paper notes — the
// kernel carries many conditional branches distinguishing interior from
// exterior points, which is what limits PSA's speedup.
#pragma once

#include <cstdint>
#include <vector>

#include "core/shape.hpp"

namespace pochoir::stencils {

/// Alignment state: best score ending in match (m), gap in b (ix: a_i
/// aligned to gap), gap in a (iy).  Values use a large-negative sentinel.
struct PsaCell {
  std::int32_t m = 0;
  std::int32_t ix = 0;
  std::int32_t iy = 0;
};

inline constexpr std::int32_t psa_neg_inf = -(1 << 28);

/// Scoring parameters (match/mismatch plus affine gaps).
struct PsaParams {
  std::int32_t match = 2;
  std::int32_t mismatch = -1;
  std::int32_t gap_open = 3;    // subtracted when a gap starts
  std::int32_t gap_extend = 1;  // subtracted per extension
};

inline Shape<1> psa_shape() {
  return Shape<1>{{2, 0}, {1, -1}, {1, 0}, {0, -1}};
}

/// Kernel invoked at time t writes antidiagonal i + j = t + 2 at x = i.
inline auto psa_kernel(std::vector<int> a, std::vector<int> b,
                       PsaParams p = {}) {
  return [a = std::move(a), b = std::move(b), p](std::int64_t t,
                                                 std::int64_t x, auto grid) {
    const std::int64_t i = x;
    const std::int64_t j = (t + 2) - i;
    const auto rows = static_cast<std::int64_t>(a.size());
    const auto cols = static_cast<std::int64_t>(b.size());
    PsaCell out{psa_neg_inf, psa_neg_inf, psa_neg_inf};
    if (i >= 0 && i <= rows && j >= 0 && j <= cols) {
      if (i == 0 && j == 0) {
        out.m = 0;
      } else if (j == 0) {
        out.ix = static_cast<std::int32_t>(-p.gap_open -
                                           (i - 1) * p.gap_extend);
      } else if (i == 0) {
        out.iy = static_cast<std::int32_t>(-p.gap_open -
                                           (j - 1) * p.gap_extend);
      } else {
        const PsaCell diag = grid.read(t, x - 1);      // (i-1, j-1)
        const PsaCell up = grid.read(t + 1, x - 1);    // (i-1, j)
        const PsaCell left = grid.read(t + 1, x);      // (i,   j-1)
        const std::int32_t sub = a[static_cast<std::size_t>(i - 1)] ==
                                         b[static_cast<std::size_t>(j - 1)]
                                     ? p.match
                                     : p.mismatch;
        std::int32_t best = diag.m;
        if (diag.ix > best) best = diag.ix;
        if (diag.iy > best) best = diag.iy;
        out.m = best <= psa_neg_inf ? psa_neg_inf : best + sub;
        const std::int32_t open_x = up.m <= psa_neg_inf
                                        ? psa_neg_inf
                                        : up.m - p.gap_open;
        const std::int32_t ext_x = up.ix <= psa_neg_inf
                                       ? psa_neg_inf
                                       : up.ix - p.gap_extend;
        out.ix = open_x > ext_x ? open_x : ext_x;
        const std::int32_t open_y = left.m <= psa_neg_inf
                                        ? psa_neg_inf
                                        : left.m - p.gap_open;
        const std::int32_t ext_y = left.iy <= psa_neg_inf
                                       ? psa_neg_inf
                                       : left.iy - p.gap_extend;
        out.iy = open_y > ext_y ? open_y : ext_y;
      }
    }
    grid.write(t + 2, x, out);
  };
}

/// Best global alignment score from a finished cell.
inline std::int32_t psa_score(const PsaCell& c) {
  std::int32_t best = c.m;
  if (c.ix > best) best = c.ix;
  if (c.iy > best) best = c.iy;
  return best;
}

/// Reference Gotoh DP (row-sweep) for validation.
inline std::int32_t psa_reference(const std::vector<int>& a,
                                  const std::vector<int>& b,
                                  PsaParams p = {}) {
  const std::size_t rows = a.size();
  const std::size_t cols = b.size();
  std::vector<PsaCell> prev(cols + 1), cur(cols + 1);
  prev[0] = {0, psa_neg_inf, psa_neg_inf};
  for (std::size_t j = 1; j <= cols; ++j) {
    prev[j] = {psa_neg_inf, psa_neg_inf,
               static_cast<std::int32_t>(-p.gap_open -
                                         (static_cast<std::int64_t>(j) - 1) *
                                             p.gap_extend)};
  }
  for (std::size_t i = 1; i <= rows; ++i) {
    cur[0] = {psa_neg_inf,
              static_cast<std::int32_t>(-p.gap_open -
                                        (static_cast<std::int64_t>(i) - 1) *
                                            p.gap_extend),
              psa_neg_inf};
    for (std::size_t j = 1; j <= cols; ++j) {
      const std::int32_t sub = a[i - 1] == b[j - 1] ? p.match : p.mismatch;
      std::int32_t best = prev[j - 1].m;
      if (prev[j - 1].ix > best) best = prev[j - 1].ix;
      if (prev[j - 1].iy > best) best = prev[j - 1].iy;
      PsaCell c;
      c.m = best <= psa_neg_inf ? psa_neg_inf : best + sub;
      const std::int32_t ox = prev[j].m <= psa_neg_inf ? psa_neg_inf
                                                       : prev[j].m - p.gap_open;
      const std::int32_t ex = prev[j].ix <= psa_neg_inf
                                  ? psa_neg_inf
                                  : prev[j].ix - p.gap_extend;
      c.ix = ox > ex ? ox : ex;
      const std::int32_t oy = cur[j - 1].m <= psa_neg_inf
                                  ? psa_neg_inf
                                  : cur[j - 1].m - p.gap_open;
      const std::int32_t ey = cur[j - 1].iy <= psa_neg_inf
                                  ? psa_neg_inf
                                  : cur[j - 1].iy - p.gap_extend;
      c.iy = oy > ey ? oy : ey;
      cur[j] = c;
    }
    std::swap(prev, cur);
  }
  return psa_score(prev[cols]);
}

}  // namespace pochoir::stencils
