// Token model for the pochoirc translator.
//
// pochoirc follows the paper's two-phase design: it parses only the Pochoir
// constructs and treats every other token as uninterpreted text that the
// host C++ compiler will check (the Pochoir Guarantee says Phase 1 already
// proved it compiles).  The lexer therefore keeps *every* byte of the
// input — including whitespace and comments — so unparsed regions can be
// reproduced verbatim in the postsource.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace pochoir::psc {

enum class TokenKind {
  kIdentifier,
  kNumber,
  kString,      // string or char literal
  kPunct,       // one operator/punctuator character sequence
  kComment,
  kWhitespace,  // spaces and newlines
  kDirective,   // a whole preprocessor line
  kEnd,
};

struct Token {
  TokenKind kind = TokenKind::kEnd;
  std::string text;
  std::size_t offset = 0;  ///< byte offset in the original source
  int line = 1;

  [[nodiscard]] bool is(TokenKind k) const { return kind == k; }
  [[nodiscard]] bool is_ident(const char* s) const {
    return kind == TokenKind::kIdentifier && text == s;
  }
  [[nodiscard]] bool is_punct(const char* s) const {
    return kind == TokenKind::kPunct && text == s;
  }
};

using TokenStream = std::vector<Token>;

/// Concatenates the texts of tokens [first, last).
inline std::string splice(const TokenStream& tokens, std::size_t first,
                          std::size_t last) {
  std::string out;
  for (std::size_t i = first; i < last && i < tokens.size(); ++i) {
    out += tokens[i].text;
  }
  return out;
}

}  // namespace pochoir::psc
