#include "compiler/lexer.hpp"

#include <cctype>

namespace pochoir::psc {
namespace {

bool ident_start(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) != 0 || c == '_';
}
bool ident_cont(char c) {
  return ident_start(c) || std::isdigit(static_cast<unsigned char>(c)) != 0;
}

}  // namespace

TokenStream lex(const std::string& src) {
  TokenStream out;
  std::size_t i = 0;
  int line = 1;
  const std::size_t n = src.size();

  auto push = [&](TokenKind kind, std::size_t begin, std::size_t end) {
    Token tok;
    tok.kind = kind;
    tok.text = src.substr(begin, end - begin);
    tok.offset = begin;
    tok.line = line;
    for (char c : tok.text) {
      if (c == '\n') ++line;
    }
    out.push_back(std::move(tok));
  };

  while (i < n) {
    const char c = src[i];
    const std::size_t begin = i;

    if (c == ' ' || c == '\t' || c == '\r' || c == '\n') {
      while (i < n && (src[i] == ' ' || src[i] == '\t' || src[i] == '\r' ||
                       src[i] == '\n')) {
        ++i;
      }
      push(TokenKind::kWhitespace, begin, i);
      continue;
    }

    if (c == '#') {
      // Preprocessor line (with continuations).
      while (i < n) {
        if (src[i] == '\\' && i + 1 < n && src[i + 1] == '\n') {
          i += 2;
          continue;
        }
        if (src[i] == '\n') break;
        ++i;
      }
      push(TokenKind::kDirective, begin, i);
      continue;
    }

    if (c == '/' && i + 1 < n && src[i + 1] == '/') {
      while (i < n && src[i] != '\n') ++i;
      push(TokenKind::kComment, begin, i);
      continue;
    }
    if (c == '/' && i + 1 < n && src[i + 1] == '*') {
      i += 2;
      while (i + 1 < n && !(src[i] == '*' && src[i + 1] == '/')) ++i;
      i = i + 1 < n ? i + 2 : n;
      push(TokenKind::kComment, begin, i);
      continue;
    }

    if (c == '"' || c == '\'') {
      const char quote = c;
      ++i;
      while (i < n && src[i] != quote) {
        if (src[i] == '\\' && i + 1 < n) ++i;
        ++i;
      }
      if (i < n) ++i;  // closing quote
      push(TokenKind::kString, begin, i);
      continue;
    }

    if (ident_start(c)) {
      while (i < n && ident_cont(src[i])) ++i;
      push(TokenKind::kIdentifier, begin, i);
      continue;
    }

    if (std::isdigit(static_cast<unsigned char>(c)) != 0 ||
        (c == '.' && i + 1 < n &&
         std::isdigit(static_cast<unsigned char>(src[i + 1])) != 0)) {
      // Numeric literal including floats, exponents and suffixes.
      while (i < n &&
             (std::isalnum(static_cast<unsigned char>(src[i])) != 0 ||
              src[i] == '.' ||
              ((src[i] == '+' || src[i] == '-') && i > begin &&
               (src[i - 1] == 'e' || src[i - 1] == 'E' || src[i - 1] == 'p' ||
                src[i - 1] == 'P')))) {
        ++i;
      }
      push(TokenKind::kNumber, begin, i);
      continue;
    }

    // Multi-character punctuators we care about keeping whole.
    static const char* two_char[] = {"::", "->", "<<", ">>", "==", "!=",
                                     "<=", ">=", "&&", "||", "+=", "-=",
                                     "*=", "/=", "++", "--"};
    bool matched = false;
    for (const char* op : two_char) {
      if (src.compare(i, 2, op) == 0) {
        i += 2;
        push(TokenKind::kPunct, begin, i);
        matched = true;
        break;
      }
    }
    if (matched) continue;

    ++i;
    push(TokenKind::kPunct, begin, i);
  }

  Token end;
  end.kind = TokenKind::kEnd;
  end.offset = n;
  end.line = line;
  out.push_back(end);
  return out;
}

}  // namespace pochoir::psc
