// pochoirc — the Pochoir stencil compiler (Phase 2 preprocessor).
//
// Usage: pochoirc [--split-pointer | --split-macro-shadow] [-o OUT] INPUT
//
// Reads a Pochoir-compliant C++ source (one that compiles against the
// template library, Phase 1) and emits optimized postsource that targets
// the library's cloned/pointer-walking entry points.  Compile the output
// with your host C++ compiler, exactly as in Figure 4 of the paper.
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>

#include "compiler/driver.hpp"

namespace {

int usage() {
  std::fprintf(stderr,
               "usage: pochoirc [--split-pointer | --split-macro-shadow] "
               "[-o OUT] INPUT\n");
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  using pochoir::psc::IndexMode;
  IndexMode mode = IndexMode::kAuto;
  std::string input;
  std::string output;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--split-pointer") {
      mode = IndexMode::kSplitPointer;
    } else if (arg == "--split-macro-shadow") {
      mode = IndexMode::kSplitMacroShadow;
    } else if (arg == "-o") {
      if (i + 1 >= argc) return usage();
      output = argv[++i];
    } else if (arg == "-h" || arg == "--help") {
      usage();
      return 0;
    } else if (!arg.empty() && arg[0] == '-') {
      std::fprintf(stderr, "pochoirc: unknown option '%s'\n", arg.c_str());
      return usage();
    } else if (input.empty()) {
      input = arg;
    } else {
      return usage();
    }
  }
  if (input.empty()) return usage();

  std::ifstream in(input);
  if (!in) {
    std::fprintf(stderr, "pochoirc: cannot open '%s'\n", input.c_str());
    return 1;
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();

  const auto result = pochoir::psc::translate(buffer.str(), mode);
  for (const auto& diag : result.diagnostics) {
    std::fprintf(stderr, "pochoirc: %s: %s\n", input.c_str(), diag.c_str());
  }

  if (output.empty()) {
    std::cout << result.postsource;
  } else {
    std::ofstream out(output);
    if (!out) {
      std::fprintf(stderr, "pochoirc: cannot write '%s'\n", output.c_str());
      return 1;
    }
    out << result.postsource;
  }
  return 0;
}
