// Construct descriptions extracted from a Pochoir source file (§2 grammar).
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

namespace pochoir::psc {

/// Token-index span [first, last) in the lexed stream.
struct Span {
  std::size_t first = 0;
  std::size_t last = 0;
};

/// Pochoir_Shape_dD name[] = {{...}, ...};
struct ShapeDecl {
  Span span;
  int dim = 0;
  std::string name;
  std::vector<std::vector<std::int64_t>> cells;  // each of size dim+1

  /// depth = t_home - min t_c (the home cell is cells[0]).
  [[nodiscard]] std::int64_t depth() const {
    if (cells.empty()) return 1;
    std::int64_t home = cells.front()[0];
    std::int64_t min_dt = home;
    for (const auto& cell : cells) min_dt = std::min(min_dt, cell[0]);
    const std::int64_t d = home - min_dt;
    return d > 0 ? d : 1;
  }
  [[nodiscard]] std::int64_t home_dt() const {
    return cells.empty() ? 1 : cells.front()[0];
  }
};

/// Pochoir_Array_dD(type[, depth]) name(sizes...);
struct ArrayDecl {
  Span span;
  int dim = 0;
  std::string name;
  std::string type;                     // element type text
  std::optional<std::int64_t> depth;    // explicit depth, if given
  std::vector<std::string> sizes;       // size expressions, natural order
};

/// Pochoir_dD name(shape);
struct ObjectDecl {
  Span span;
  int dim = 0;
  std::string name;
  std::string shape_name;
};

/// Pochoir_Boundary_dD(name, arr, t, x...) body Pochoir_Boundary_End
struct BoundaryDecl {
  Span span;
  int dim = 0;
  std::string name;
  std::string array_param;
  std::vector<std::string> index_params;  // t first, then spatial
  Span body;                              // tokens of the body
};

/// One array access inside a kernel body: arr(t+dt, x0+o0, ...).
struct KernelAccess {
  std::string array;
  std::vector<std::int64_t> offsets;  // dt first, then spatial
  bool is_write = false;
  Span span;  // the whole access expression, arr ... ')'
};

/// Pochoir_Kernel_dD(name, t, x...) body Pochoir_Kernel_End
struct KernelDecl {
  Span span;
  int dim = 0;
  std::string name;
  std::vector<std::string> index_params;  // t first, then spatial
  Span body;
  std::vector<KernelAccess> accesses;  // empty if analysis failed
  bool analyzable = false;  ///< all accesses affine → split-pointer eligible
  std::vector<std::string> arrays_read;  // distinct array names touched
};

/// obj.Register_Array(arr);
struct RegisterArrayStmt {
  Span span;
  std::string object;
  std::string array;
};

/// arr.Register_Boundary(bdry);
struct RegisterBoundaryStmt {
  Span span;
  std::string array;
  std::string boundary;
};

/// obj.Run(steps_expr, kernel);
struct RunStmt {
  Span span;
  std::string object;
  std::string steps_expr;
  std::string kernel;
};

struct ParsedSource {
  std::vector<ShapeDecl> shapes;
  std::vector<ArrayDecl> arrays;
  std::vector<ObjectDecl> objects;
  std::vector<BoundaryDecl> boundaries;
  std::vector<KernelDecl> kernels;
  std::vector<RegisterArrayStmt> register_arrays;
  std::vector<RegisterBoundaryStmt> register_boundaries;
  std::vector<RunStmt> runs;
  std::vector<std::string> diagnostics;

  [[nodiscard]] const ShapeDecl* find_shape(const std::string& name) const {
    for (const auto& s : shapes) {
      if (s.name == name) return &s;
    }
    return nullptr;
  }
  [[nodiscard]] const ArrayDecl* find_array(const std::string& name) const {
    for (const auto& a : arrays) {
      if (a.name == name) return &a;
    }
    return nullptr;
  }
  [[nodiscard]] const ObjectDecl* find_object(const std::string& name) const {
    for (const auto& o : objects) {
      if (o.name == name) return &o;
    }
    return nullptr;
  }
  [[nodiscard]] const KernelDecl* find_kernel(const std::string& name) const {
    for (const auto& k : kernels) {
      if (k.name == name) return &k;
    }
    return nullptr;
  }
};

}  // namespace pochoir::psc
