#include "compiler/driver.hpp"

#include "compiler/lexer.hpp"
#include "compiler/parser.hpp"

namespace pochoir::psc {

TranslateResult translate(const std::string& source, IndexMode mode) {
  TranslateResult result;
  const TokenStream tokens = lex(source);
  const ParsedSource parsed = parse(tokens);
  for (const auto& d : parsed.diagnostics) result.diagnostics.push_back(d);
  CodegenResult gen = generate(tokens, parsed, mode);
  for (const auto& d : gen.diagnostics) result.diagnostics.push_back(d);
  result.postsource = std::move(gen.postsource);
  result.split_pointer_kernels = std::move(gen.split_pointer_kernels);
  return result;
}

}  // namespace pochoir::psc
