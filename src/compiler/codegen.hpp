// Postsource generation — Phase 2 of the Pochoir system (§4).
//
// The generator rewrites each recognized construct onto the template
// library's optimized entry points and leaves everything else untouched:
//
//   shape decl      -> pochoir::Shape<D>
//   array decl      -> pochoir::Array<T, D> (depth resolved from the shape
//                      of the object the array is registered with)
//   object decl     -> pochoir::Stencil<D, T...>
//   boundary        -> generic lambda (the dsl.hpp expansion, but emitted)
//   kernel          -> two clones: a checked boundary clone, plus either a
//                      -split-macro-shadow interior clone (Figure 12(b):
//                      access macros shadowed with .interior) or a
//                      -split-pointer zoid base case (Figure 12(c):
//                      C-style pointers walked down the unit-stride dim)
//   obj.Run(T, k)   -> run_cloned(...) or run_split(...)
#pragma once

#include <string>

#include "compiler/ast.hpp"
#include "compiler/token.hpp"

namespace pochoir::psc {

/// Loop-indexing strategy for interior clones (§4).
enum class IndexMode {
  kAuto,             ///< split-pointer when analyzable, else macro-shadow
  kSplitPointer,     ///< force Figure 12(c); falls back with a diagnostic
  kSplitMacroShadow, ///< force Figure 12(b)
};

struct CodegenResult {
  std::string postsource;
  std::vector<std::string> diagnostics;
  /// Kernels that ended up with pointer base cases (for tests/reporting).
  std::vector<std::string> split_pointer_kernels;
};

CodegenResult generate(const TokenStream& tokens, const ParsedSource& parsed,
                       IndexMode mode);

}  // namespace pochoir::psc
