// Construct parser for pochoirc: recognizes the §2 grammar inside an
// otherwise uninterpreted C++ token stream.
#pragma once

#include "compiler/ast.hpp"
#include "compiler/token.hpp"

namespace pochoir::psc {

/// Extracts every Pochoir construct.  Unrecognized Pochoir-looking text is
/// reported in `diagnostics` but never fatal (the host compiler will see
/// the original text).
ParsedSource parse(const TokenStream& tokens);

}  // namespace pochoir::psc
