// C++ surface lexer for pochoirc (see token.hpp for the philosophy).
#pragma once

#include <string>

#include "compiler/token.hpp"

namespace pochoir::psc {

/// Tokenizes `source`.  Never fails: unrecognized bytes become punctuation.
TokenStream lex(const std::string& source);

}  // namespace pochoir::psc
