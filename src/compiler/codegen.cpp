#include "compiler/codegen.hpp"

#include <algorithm>
#include <map>
#include <sstream>

namespace pochoir::psc {
namespace {

struct Replacement {
  Span span;
  std::string text;
};

std::string int_list(const std::vector<std::int64_t>& v) {
  std::string out;
  for (std::size_t i = 0; i < v.size(); ++i) {
    if (i != 0) out += ", ";
    out += std::to_string(v[i]);
  }
  return out;
}

/// Per-object registration info resolved from the statement list.
struct ObjectInfo {
  std::vector<const ArrayDecl*> arrays;
  const ShapeDecl* shape = nullptr;
};

class Generator {
 public:
  Generator(const TokenStream& tokens, const ParsedSource& parsed,
            IndexMode mode)
      : toks_(tokens), src_(parsed), mode_(mode) {}

  CodegenResult run() {
    resolve_objects();
    emit_shapes();
    emit_arrays();
    emit_objects();
    emit_boundaries();
    emit_kernels();
    emit_registrations();
    emit_runs();
    return assemble();
  }

 private:
  void resolve_objects() {
    for (const auto& reg : src_.register_arrays) {
      const ArrayDecl* arr = src_.find_array(reg.array);
      if (arr == nullptr) {
        diag("Register_Array of undeclared array '" + reg.array + "'");
        continue;
      }
      objects_[reg.object].arrays.push_back(arr);
    }
    for (const auto& obj : src_.objects) {
      objects_[obj.name].shape = src_.find_shape(obj.shape_name);
      if (objects_[obj.name].shape == nullptr) {
        diag("Pochoir object '" + obj.name + "' uses undeclared shape '" +
             obj.shape_name + "'");
      }
    }
  }

  /// Depth of `arr`: explicit, or taken from the first object it joins.
  std::int64_t depth_of(const ArrayDecl& arr) const {
    if (arr.depth.has_value()) return *arr.depth;
    for (const auto& reg : src_.register_arrays) {
      if (reg.array != arr.name) continue;
      auto it = objects_.find(reg.object);
      if (it != objects_.end() && it->second.shape != nullptr) {
        return it->second.shape->depth();
      }
    }
    return 1;
  }

  void emit_shapes() {
    for (const auto& shape : src_.shapes) {
      std::ostringstream os;
      os << "const pochoir::Shape<" << shape.dim << "> " << shape.name
         << " = {";
      for (std::size_t i = 0; i < shape.cells.size(); ++i) {
        if (i != 0) os << ", ";
        os << "{" << int_list(shape.cells[i]) << "}";
      }
      os << "};";
      replace(shape.span, os.str());
    }
  }

  void emit_arrays() {
    for (const auto& arr : src_.arrays) {
      std::ostringstream os;
      os << "pochoir::Array<" << arr.type << ", " << arr.dim << "> "
         << arr.name << "({";
      for (std::size_t i = 0; i < arr.sizes.size(); ++i) {
        if (i != 0) os << ", ";
        os << arr.sizes[i];
      }
      os << "}, " << depth_of(arr) << ");";
      replace(arr.span, os.str());
    }
  }

  void emit_objects() {
    for (const auto& obj : src_.objects) {
      const ObjectInfo& info = objects_[obj.name];
      std::ostringstream os;
      os << "pochoir::Stencil<" << obj.dim;
      if (info.arrays.empty()) {
        os << ", double";
      } else {
        for (const ArrayDecl* arr : info.arrays) os << ", " << arr->type;
      }
      os << "> " << obj.name << "(" << obj.shape_name << ");";
      replace(obj.span, os.str());
    }
  }

  void emit_boundaries() {
    for (const auto& b : src_.boundaries) {
      std::ostringstream os;
      os << "const auto " << b.name << " = [](const auto& " << b.array_param
         << ", std::int64_t " << b.index_params[0]
         << ", const std::array<std::int64_t, " << b.dim
         << ">& _pochoir_bidx) -> typename std::decay_t<decltype("
         << b.array_param << ")>::value_type {\n";
      for (int i = 0; i < b.dim; ++i) {
        os << "  [[maybe_unused]] const std::int64_t "
           << b.index_params[static_cast<std::size_t>(i) + 1]
           << " = _pochoir_bidx[" << i << "];\n";
      }
      os << "  [[maybe_unused]] auto&& _pochoir_t = " << b.index_params[0]
         << ";\n";
      os << splice(toks_, b.body.first, b.body.last);
      os << "\n};";
      replace(b.span, os.str());
    }
  }

  bool kernel_uses_split(const KernelDecl& k) const {
    if (mode_ == IndexMode::kSplitMacroShadow) return false;
    if (k.analyzable) return true;
    if (mode_ == IndexMode::kSplitPointer) {
      // Mirrors the paper: when the compiler cannot "understand" the code it
      // employs -split-macro-shadow, relying on Phase 1 for correctness.
      return false;
    }
    return false;
  }

  void emit_kernels() {
    for (const auto& k : src_.kernels) {
      std::ostringstream os;
      os << boundary_clone(k) << "\n";
      const bool split = kernel_uses_split(k);
      if (split) {
        os << split_pointer_base(k) << "\n";
        split_kernels_.push_back(k.name);
      } else {
        if (mode_ == IndexMode::kSplitPointer) {
          diag("kernel '" + k.name +
               "' is too complex for -split-pointer; using "
               "-split-macro-shadow");
        }
        os << macro_shadow_clone(k) << "\n";
      }
      replace(k.span, os.str());
      kernel_split_[k.name] = split;
    }
  }

  std::string params_decl(const KernelDecl& k) const {
    std::string out;
    for (std::size_t i = 0; i < k.index_params.size(); ++i) {
      if (i != 0) out += ", ";
      out += "std::int64_t " + k.index_params[i];
    }
    return out;
  }

  std::string boundary_clone(const KernelDecl& k) const {
    std::ostringstream os;
    os << "auto " << k.name << "_pochoir_boundary = [&](" << params_decl(k)
       << ") {\n"
       << splice(toks_, k.body.first, k.body.last) << "\n};";
    return os.str();
  }

  std::string macro_shadow_clone(const KernelDecl& k) const {
    std::ostringstream os;
    os << "auto " << k.name << "_pochoir_interior = [&](" << params_decl(k)
       << ") {\n";
    for (const auto& arr : k.arrays_read) {
      os << "#define " << arr << "(...) " << arr << ".interior(__VA_ARGS__)\n";
    }
    os << splice(toks_, k.body.first, k.body.last) << "\n";
    for (const auto& arr : k.arrays_read) {
      os << "#undef " << arr << "\n";
    }
    os << "};";
    return os.str();
  }

  /// Figure 12(c): one C-style pointer per access term, walked down the
  /// unit-stride dimension.
  std::string split_pointer_base(const KernelDecl& k) const {
    const int d = k.dim;
    std::ostringstream os;
    os << "auto " << k.name << "_pochoir_splitbase = [&](const pochoir::Zoid<"
       << d << ">& _pz) {\n";
    os << "  std::array<std::int64_t, " << d << "> _plo = _pz.x0;\n";
    os << "  std::array<std::int64_t, " << d << "> _phi = _pz.x1;\n";
    os << "  for (std::int64_t " << k.index_params[0] << " = _pz.t0; "
       << k.index_params[0] << " < _pz.t1; ++" << k.index_params[0] << ") {\n";
    std::string indent = "    ";
    // Outer spatial loops over dims 0..d-2 use the kernel's own names.
    for (int i = 0; i + 1 < d; ++i) {
      const std::string& v = k.index_params[static_cast<std::size_t>(i) + 1];
      os << indent << "for (std::int64_t " << v << " = _plo[" << i << "]; "
         << v << " < _phi[" << i << "]; ++" << v << ") {\n";
      indent += "  ";
    }
    // Pointer setup for each access.
    for (std::size_t a = 0; a < k.accesses.size(); ++a) {
      const KernelAccess& acc = k.accesses[a];
      os << indent << "auto* _pp" << a << " = " << acc.array << ".data() + "
         << "pochoir::mod_floor(" << k.index_params[0];
      if (acc.offsets[0] != 0) os << " + (" << acc.offsets[0] << ")";
      os << ", " << acc.array << ".time_levels()) * " << acc.array
         << ".level_size()";
      for (int i = 0; i + 1 < d; ++i) {
        os << " + (" << k.index_params[static_cast<std::size_t>(i) + 1];
        if (acc.offsets[static_cast<std::size_t>(i) + 1] != 0) {
          os << " + (" << acc.offsets[static_cast<std::size_t>(i) + 1] << ")";
        }
        os << ") * " << acc.array << ".stride(" << i << ")";
      }
      os << " + (_plo[" << (d - 1) << "]";
      if (acc.offsets[static_cast<std::size_t>(d)] != 0) {
        os << " + (" << acc.offsets[static_cast<std::size_t>(d)] << ")";
      }
      os << ");\n";
    }
    // Innermost loop with pointer increments.
    const std::string& inner = k.index_params[static_cast<std::size_t>(d)];
    os << indent << "for (std::int64_t " << inner << " = _plo[" << (d - 1)
       << "]; " << inner << " < _phi[" << (d - 1) << "]; ++" << inner << ") {\n";
    os << indent << "  " << rewrite_body_with_pointers(k) << "\n";
    for (std::size_t a = 0; a < k.accesses.size(); ++a) {
      os << indent << "  ++_pp" << a << ";\n";
    }
    os << indent << "}\n";
    for (int i = 0; i + 1 < d; ++i) {
      indent.resize(indent.size() - 2);
      os << indent << "}\n";
    }
    os << "    for (int _pd = 0; _pd < " << d << "; ++_pd) {\n"
       << "      _plo[_pd] += _pz.dx0[_pd];\n"
       << "      _phi[_pd] += _pz.dx1[_pd];\n"
       << "    }\n"
       << "  }\n"
       << "};";
    return os.str();
  }

  /// The kernel body with every access expression replaced by (*_ppK).
  std::string rewrite_body_with_pointers(const KernelDecl& k) const {
    std::string out;
    std::size_t j = k.body.first;
    while (j < k.body.last) {
      bool replaced = false;
      for (std::size_t a = 0; a < k.accesses.size(); ++a) {
        if (k.accesses[a].span.first == j) {
          out += "(*_pp" + std::to_string(a) + ")";
          j = k.accesses[a].span.last;
          replaced = true;
          break;
        }
      }
      if (!replaced) {
        if (toks_[j].kind != TokenKind::kComment) out += toks_[j].text;
        ++j;
      }
    }
    // Collapse the newlines the body may carry; the statement is emitted on
    // one line inside the generated loop.
    for (char& c : out) {
      if (c == '\n') c = ' ';
    }
    return out;
  }

  void emit_registrations() {
    // For each object, the last Register_Array site becomes a single
    // register_arrays(...) with all arrays in registration order.
    std::map<std::string, const RegisterArrayStmt*> last;
    for (const auto& reg : src_.register_arrays) {
      last[reg.object] = &reg;
    }
    for (const auto& reg : src_.register_arrays) {
      if (last[reg.object] == &reg) {
        std::string args;
        for (const auto& r2 : src_.register_arrays) {
          if (r2.object != reg.object) continue;
          if (!args.empty()) args += ", ";
          args += r2.array;
        }
        replace(reg.span, reg.object + ".register_arrays(" + args + ");");
      } else {
        replace(reg.span, "/* pochoirc: '" + reg.array +
                              "' registered with '" + reg.object +
                              "' below */;");
      }
    }
    for (const auto& reg : src_.register_boundaries) {
      replace(reg.span,
              reg.array + ".register_boundary(" + reg.boundary + ");");
    }
  }

  void emit_runs() {
    for (const auto& run : src_.runs) {
      // Every generated Run executes inside a trace session labelled with
      // the kernel name, so POCHOIR_TRACE / POCHOIR_TELEMETRY work on
      // compiled programs without source changes (a pair of counter
      // snapshots when both are off).
      const std::string session = "{ pochoir::trace::Session "
                                  "_pochoir_trace_session(\"" +
                                  run.kernel + "\"); ";
      auto split_it = kernel_split_.find(run.kernel);
      if (split_it == kernel_split_.end()) {
        diag("Run references unknown kernel '" + run.kernel +
             "'; leaving a Phase-1 call");
        replace(run.span, session + run.object + ".run(" + run.steps_expr +
                              ", " + run.kernel + "); }");
        continue;
      }
      if (split_it->second) {
        replace(run.span, session + run.object + ".run_split(" +
                              run.steps_expr + ", " + run.kernel +
                              "_pochoir_splitbase, " + run.kernel +
                              "_pochoir_boundary); }");
      } else {
        replace(run.span, session + run.object + ".run_cloned(" +
                              run.steps_expr + ", " + run.kernel +
                              "_pochoir_interior, " + run.kernel +
                              "_pochoir_boundary); }");
      }
    }
  }

  CodegenResult assemble() {
    std::sort(replacements_.begin(), replacements_.end(),
              [](const Replacement& a, const Replacement& b) {
                return a.span.first < b.span.first;
              });
    std::ostringstream os;
    os << "// Postsource generated by pochoirc (Phase 2 of the Pochoir\n"
       << "// two-phase compilation strategy). Do not edit.\n"
       << "#include <pochoir/pochoir.hpp>\n"
       << "#include <array>\n"
       << "#include <cstdint>\n"
       << "#include <type_traits>\n";
    std::size_t j = 0;
    std::size_t r = 0;
    while (j < toks_.size()) {
      if (r < replacements_.size() && replacements_[r].span.first == j) {
        os << replacements_[r].text;
        j = replacements_[r].span.last;
        ++r;
        continue;
      }
      os << toks_[j].text;
      ++j;
    }
    CodegenResult result;
    result.postsource = os.str();
    result.diagnostics = diagnostics_;
    result.split_pointer_kernels = split_kernels_;
    return result;
  }

  void replace(Span span, std::string text) {
    replacements_.push_back({span, std::move(text)});
  }
  void diag(std::string message) { diagnostics_.push_back(std::move(message)); }

  const TokenStream& toks_;
  const ParsedSource& src_;
  IndexMode mode_;
  std::map<std::string, ObjectInfo> objects_;
  std::map<std::string, bool> kernel_split_;
  std::vector<Replacement> replacements_;
  std::vector<std::string> diagnostics_;
  std::vector<std::string> split_kernels_;
};

}  // namespace

CodegenResult generate(const TokenStream& tokens, const ParsedSource& parsed,
                       IndexMode mode) {
  Generator generator(tokens, parsed, mode);
  return generator.run();
}

}  // namespace pochoir::psc
