#include "compiler/parser.hpp"

#include <cstdlib>

namespace pochoir::psc {
namespace {

/// Cursor over the token stream that skips whitespace/comments on demand.
class Cursor {
 public:
  explicit Cursor(const TokenStream& tokens) : toks_(tokens) {}

  [[nodiscard]] std::size_t pos() const { return i_; }
  void seek(std::size_t i) { i_ = i; }
  [[nodiscard]] bool done() const {
    return i_ >= toks_.size() || toks_[i_].kind == TokenKind::kEnd;
  }

  /// Index of the next significant token at or after `from`.
  [[nodiscard]] std::size_t next_sig(std::size_t from) const {
    std::size_t j = from;
    while (j < toks_.size() && (toks_[j].kind == TokenKind::kWhitespace ||
                                toks_[j].kind == TokenKind::kComment)) {
      ++j;
    }
    return j;
  }

  const Token& sig() {
    i_ = next_sig(i_);
    return toks_[std::min(i_, toks_.size() - 1)];
  }

  const Token& peek_sig(int ahead = 1) const {
    std::size_t j = next_sig(i_);
    for (int k = 0; k < ahead; ++k) j = next_sig(j + 1);
    return toks_[std::min(j, toks_.size() - 1)];
  }

  void advance() { ++i_; }
  void advance_sig() {
    i_ = next_sig(i_);
    ++i_;
  }

  const TokenStream& toks_;
  std::size_t i_ = 0;
};

int dim_suffix(const std::string& ident, const std::string& prefix) {
  // Matches prefix + "<digit>D"; returns the dimension or 0.
  if (ident.size() != prefix.size() + 2) return 0;
  if (ident.compare(0, prefix.size(), prefix) != 0) return 0;
  const char d = ident[prefix.size()];
  if (d < '1' || d > '9' || ident.back() != 'D') return 0;
  return d - '0';
}

std::optional<std::int64_t> parse_int(Cursor& c) {
  std::int64_t sign = 1;
  if (c.sig().is_punct("-")) {
    sign = -1;
    c.advance_sig();
  } else if (c.sig().is_punct("+")) {
    c.advance_sig();
  }
  if (!c.sig().is(TokenKind::kNumber)) return std::nullopt;
  const std::int64_t v = std::strtoll(c.sig().text.c_str(), nullptr, 0);
  c.advance_sig();
  return sign * v;
}

/// Collects the text of a balanced argument list starting at '('; returns
/// the top-level comma-separated argument texts and leaves the cursor past
/// the closing ')'.  Returns false on imbalance.
bool parse_arg_texts(Cursor& c, std::vector<std::string>* args) {
  if (!c.sig().is_punct("(")) return false;
  c.advance_sig();
  int depth = 0;
  std::string cur;
  while (!c.done()) {
    const Token& tok = c.toks_[c.pos()];
    if (tok.kind == TokenKind::kPunct) {
      if (tok.text == "(" || tok.text == "[" || tok.text == "{") ++depth;
      if (tok.text == ")" || tok.text == "]" || tok.text == "}") {
        if (tok.text == ")" && depth == 0) {
          if (!cur.empty()) args->push_back(cur);
          c.advance();
          return true;
        }
        --depth;
      }
      if (tok.text == "," && depth == 0) {
        args->push_back(cur);
        cur.clear();
        c.advance();
        continue;
      }
    }
    if (tok.kind != TokenKind::kComment) cur += tok.text;
    c.advance();
  }
  return false;
}

std::string trim(const std::string& s) {
  std::size_t a = 0, b = s.size();
  while (a < b && std::isspace(static_cast<unsigned char>(s[a])) != 0) ++a;
  while (b > a && std::isspace(static_cast<unsigned char>(s[b - 1])) != 0) --b;
  return s.substr(a, b - a);
}

/// Parses `{n, n, ...}` cell lists of a shape initializer.
bool parse_shape_cells(Cursor& c, int dim,
                       std::vector<std::vector<std::int64_t>>* cells) {
  if (!c.sig().is_punct("{")) return false;
  c.advance_sig();
  while (true) {
    if (c.sig().is_punct("}")) {  // end of the outer initializer
      c.advance_sig();
      return true;
    }
    if (!c.sig().is_punct("{")) return false;
    c.advance_sig();
    std::vector<std::int64_t> cell;
    while (true) {
      auto v = parse_int(c);
      if (!v.has_value()) return false;
      cell.push_back(*v);
      if (c.sig().is_punct(",")) {
        c.advance_sig();
        continue;
      }
      break;
    }
    if (!c.sig().is_punct("}")) return false;
    c.advance_sig();
    if (static_cast<int>(cell.size()) != dim + 1) return false;
    cells->push_back(std::move(cell));
    if (c.sig().is_punct(",")) c.advance_sig();
  }
}

/// Parses one index argument of a kernel access: `v`, `v+k`, or `v-k`,
/// where v is the expected induction variable.
bool parse_affine_arg(const std::string& text, const std::string& var,
                      std::int64_t* offset) {
  const std::string s = trim(text);
  if (s == var) {
    *offset = 0;
    return true;
  }
  if (s.size() <= var.size() || s.compare(0, var.size(), var) != 0) {
    return false;
  }
  std::size_t i = var.size();
  while (i < s.size() && std::isspace(static_cast<unsigned char>(s[i])) != 0) ++i;
  if (i >= s.size() || (s[i] != '+' && s[i] != '-')) return false;
  const std::int64_t sign = s[i] == '-' ? -1 : 1;
  ++i;
  const std::string rest = trim(s.substr(i));
  if (rest.empty()) return false;
  for (char ch : rest) {
    if (std::isdigit(static_cast<unsigned char>(ch)) == 0) return false;
  }
  *offset = sign * std::strtoll(rest.c_str(), nullptr, 10);
  return true;
}

}  // namespace

ParsedSource parse(const TokenStream& tokens) {
  ParsedSource out;
  Cursor c(tokens);

  auto find_end_marker = [&](const char* marker, std::size_t from,
                             std::size_t* marker_pos) {
    for (std::size_t j = from; j < tokens.size(); ++j) {
      if (tokens[j].is_ident(marker)) {
        *marker_pos = j;
        return true;
      }
    }
    return false;
  };

  while (!c.done()) {
    const std::size_t start = c.next_sig(c.pos());
    if (start >= tokens.size() || tokens[start].kind == TokenKind::kEnd) break;
    const Token& tok = tokens[start];

    if (tok.kind != TokenKind::kIdentifier) {
      c.seek(start + 1);
      continue;
    }

    // --- Pochoir_Shape_dD name[] = { ... }; ------------------------------
    if (int dim = dim_suffix(tok.text, "Pochoir_Shape_")) {
      Cursor probe(tokens);
      probe.seek(start + 1);
      if (probe.sig().kind == TokenKind::kIdentifier) {
        ShapeDecl decl;
        decl.dim = dim;
        decl.name = probe.sig().text;
        probe.advance_sig();
        bool ok = probe.sig().is_punct("[");
        if (ok) probe.advance_sig();
        ok = ok && probe.sig().is_punct("]");
        if (ok) probe.advance_sig();
        ok = ok && probe.sig().is_punct("=");
        if (ok) probe.advance_sig();
        ok = ok && parse_shape_cells(probe, dim, &decl.cells);
        ok = ok && probe.sig().is_punct(";");
        if (ok) {
          probe.advance_sig();
          decl.span = {start, probe.pos()};
          out.shapes.push_back(std::move(decl));
          c.seek(probe.pos());
          continue;
        }
        out.diagnostics.push_back("line " + std::to_string(tok.line) +
                                  ": malformed Pochoir_Shape declaration");
      }
      c.seek(start + 1);
      continue;
    }

    // --- Pochoir_Array_dD(type[, depth]) name(sizes...); -----------------
    if (int dim = dim_suffix(tok.text, "Pochoir_Array_")) {
      Cursor probe(tokens);
      probe.seek(start + 1);
      std::vector<std::string> targs;
      if (parse_arg_texts(probe, &targs) && !targs.empty() &&
          probe.sig().kind == TokenKind::kIdentifier) {
        ArrayDecl decl;
        decl.dim = dim;
        decl.type = trim(targs[0]);
        if (targs.size() > 1) {
          decl.depth = std::strtoll(trim(targs[1]).c_str(), nullptr, 10);
        }
        decl.name = probe.sig().text;
        probe.advance_sig();
        std::vector<std::string> sizes;
        if (parse_arg_texts(probe, &sizes) &&
            static_cast<int>(sizes.size()) == dim && probe.sig().is_punct(";")) {
          probe.advance_sig();
          for (auto& s : sizes) decl.sizes.push_back(trim(s));
          decl.span = {start, probe.pos()};
          out.arrays.push_back(std::move(decl));
          c.seek(probe.pos());
          continue;
        }
      }
      out.diagnostics.push_back("line " + std::to_string(tok.line) +
                                ": malformed Pochoir_Array declaration");
      c.seek(start + 1);
      continue;
    }

    // --- Pochoir_Boundary_dD(...) body Pochoir_Boundary_End --------------
    if (int dim = dim_suffix(tok.text, "Pochoir_Boundary_")) {
      Cursor probe(tokens);
      probe.seek(start + 1);
      std::vector<std::string> args;
      std::size_t end_pos = 0;
      if (parse_arg_texts(probe, &args) &&
          static_cast<int>(args.size()) == dim + 3 &&
          find_end_marker("Pochoir_Boundary_End", probe.pos(), &end_pos)) {
        BoundaryDecl decl;
        decl.dim = dim;
        decl.name = trim(args[0]);
        decl.array_param = trim(args[1]);
        for (std::size_t k = 2; k < args.size(); ++k) {
          decl.index_params.push_back(trim(args[k]));
        }
        decl.body = {probe.pos(), end_pos};
        decl.span = {start, end_pos + 1};
        out.boundaries.push_back(std::move(decl));
        c.seek(end_pos + 1);
        continue;
      }
      out.diagnostics.push_back("line " + std::to_string(tok.line) +
                                ": malformed Pochoir_Boundary construct");
      c.seek(start + 1);
      continue;
    }

    // --- Pochoir_Kernel_dD(...) body Pochoir_Kernel_End ------------------
    if (int dim = dim_suffix(tok.text, "Pochoir_Kernel_")) {
      Cursor probe(tokens);
      probe.seek(start + 1);
      std::vector<std::string> args;
      std::size_t end_pos = 0;
      if (parse_arg_texts(probe, &args) &&
          static_cast<int>(args.size()) == dim + 2 &&
          find_end_marker("Pochoir_Kernel_End", probe.pos(), &end_pos)) {
        KernelDecl decl;
        decl.dim = dim;
        decl.name = trim(args[0]);
        for (std::size_t k = 1; k < args.size(); ++k) {
          decl.index_params.push_back(trim(args[k]));
        }
        decl.body = {probe.pos(), end_pos};
        decl.span = {start, end_pos + 1};
        out.kernels.push_back(std::move(decl));
        c.seek(end_pos + 1);
        continue;
      }
      out.diagnostics.push_back("line " + std::to_string(tok.line) +
                                ": malformed Pochoir_Kernel construct");
      c.seek(start + 1);
      continue;
    }

    // --- Pochoir_dD name(shape); ------------------------------------------
    if (int dim = dim_suffix(tok.text, "Pochoir_")) {
      Cursor probe(tokens);
      probe.seek(start + 1);
      if (probe.sig().kind == TokenKind::kIdentifier) {
        ObjectDecl decl;
        decl.dim = dim;
        decl.name = probe.sig().text;
        probe.advance_sig();
        std::vector<std::string> args;
        if (parse_arg_texts(probe, &args) && args.size() == 1 &&
            probe.sig().is_punct(";")) {
          probe.advance_sig();
          decl.shape_name = trim(args[0]);
          decl.span = {start, probe.pos()};
          out.objects.push_back(std::move(decl));
          c.seek(probe.pos());
          continue;
        }
      }
      c.seek(start + 1);
      continue;
    }

    // --- member statements: x.Register_Array(y); x.Register_Boundary(y);
    //     x.Run(T, k); ------------------------------------------------------
    if (tokens[c.next_sig(start + 1)].is_punct(".")) {
      const std::size_t dot = c.next_sig(start + 1);
      const std::size_t member = c.next_sig(dot + 1);
      const std::string& m = tokens[member].text;
      if (tokens[member].kind == TokenKind::kIdentifier &&
          (m == "Register_Array" || m == "Register_Boundary" || m == "Run")) {
        Cursor probe(tokens);
        probe.seek(member + 1);
        std::vector<std::string> args;
        if (parse_arg_texts(probe, &args) && probe.sig().is_punct(";")) {
          probe.advance_sig();
          const Span span{start, probe.pos()};
          if (m == "Register_Array" && args.size() == 1) {
            out.register_arrays.push_back({span, tok.text, trim(args[0])});
            c.seek(probe.pos());
            continue;
          }
          if (m == "Register_Boundary" && args.size() == 1) {
            out.register_boundaries.push_back({span, tok.text, trim(args[0])});
            c.seek(probe.pos());
            continue;
          }
          if (m == "Run" && args.size() == 2) {
            out.runs.push_back({span, tok.text, trim(args[0]), trim(args[1])});
            c.seek(probe.pos());
            continue;
          }
        }
      }
    }

    c.seek(start + 1);
  }

  // --- kernel access analysis (for -split-pointer eligibility) -----------
  for (KernelDecl& kern : out.kernels) {
    kern.analyzable = true;
    for (std::size_t j = kern.body.first; j < kern.body.last; ++j) {
      const Token& t = tokens[j];
      if (t.kind != TokenKind::kIdentifier) continue;
      const ArrayDecl* arr = out.find_array(t.text);
      if (arr == nullptr) continue;
      // Record distinct arrays.
      bool seen = false;
      for (const auto& name : kern.arrays_read) seen |= name == t.text;
      if (!seen) kern.arrays_read.push_back(t.text);

      Cursor probe(tokens);
      probe.seek(j + 1);
      const std::size_t open = probe.next_sig(j + 1);
      if (open >= kern.body.last || !tokens[open].is_punct("(")) {
        kern.analyzable = false;  // array used other than via a plain call
        continue;
      }
      probe.seek(open);
      std::vector<std::string> args;
      if (!parse_arg_texts(probe, &args) ||
          static_cast<int>(args.size()) != kern.dim + 1) {
        kern.analyzable = false;
        continue;
      }
      KernelAccess access;
      access.array = t.text;
      access.span = {j, probe.pos()};
      bool affine = true;
      for (std::size_t k = 0; k < args.size(); ++k) {
        std::int64_t offset = 0;
        affine = affine && parse_affine_arg(args[k], kern.index_params[k], &offset);
        access.offsets.push_back(offset);
      }
      if (!affine) {
        kern.analyzable = false;
        continue;
      }
      const std::size_t after = c.next_sig(probe.pos());
      access.is_write = tokens[after].is_punct("=");
      kern.accesses.push_back(std::move(access));
    }
    // Split-pointer additionally requires exactly one write, to the home
    // cell, and a single-statement body.
    if (kern.analyzable) {
      int writes = 0;
      int statements = 0;
      for (const auto& a : kern.accesses) {
        if (a.is_write) {
          ++writes;
          for (std::size_t k = 1; k < a.offsets.size(); ++k) {
            if (a.offsets[k] != 0) kern.analyzable = false;
          }
        }
      }
      for (std::size_t j = kern.body.first; j < kern.body.last; ++j) {
        if (tokens[j].is_punct(";")) ++statements;
        if (tokens[j].kind == TokenKind::kDirective) kern.analyzable = false;
      }
      if (writes != 1 || statements != 1) kern.analyzable = false;
    }
  }

  return out;
}

}  // namespace pochoir::psc
