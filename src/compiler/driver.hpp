// pochoirc driver: source text in, postsource text out.
#pragma once

#include <string>

#include "compiler/codegen.hpp"

namespace pochoir::psc {

struct TranslateResult {
  std::string postsource;
  std::vector<std::string> diagnostics;
  std::vector<std::string> split_pointer_kernels;
  bool ok = true;
};

/// Translates a Pochoir-compliant source (Phase 1) into optimized
/// postsource (Phase 2).
TranslateResult translate(const std::string& source,
                          IndexMode mode = IndexMode::kAuto);

}  // namespace pochoir::psc
