#include "runtime/scheduler.hpp"

#include <chrono>
#include <cstdlib>
#include <string>

namespace pochoir::rt {
namespace {

// Worker identity for the current thread: index into slots_, or -1 for
// threads not owned by the pool (e.g. the program main thread).
thread_local int tls_worker_index = -1;

// Cheap thread-local generator for victim selection.
std::uint64_t next_seed(std::uint64_t& s) {
  s ^= s << 13;
  s ^= s >> 7;
  s ^= s << 17;
  return s;
}

int env_thread_count() {
  if (const char* env = std::getenv("POCHOIR_NUM_THREADS")) {
    const int n = std::atoi(env);
    if (n >= 1) return n;
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<int>(hw);
}

// Calibrated pause loop; cheaper than sched_yield storms when the machine
// is fully subscribed.
inline void cpu_relax() {
#if defined(__x86_64__) || defined(__i386__)
  __builtin_ia32_pause();
#else
  std::this_thread::yield();
#endif
}

// Telemetry increments are fully guarded so the disabled path costs one
// relaxed load; the counters themselves are relaxed adds to thread-owned
// cache lines.
inline void bump(std::atomic<std::uint64_t>& counter, std::uint64_t n = 1) {
  if (telemetry::enabled()) counter.fetch_add(n, std::memory_order_relaxed);
}

}  // namespace

std::atomic<int> Scheduler::requested_threads_{0};
std::atomic<Scheduler*> Scheduler::live_instance_{nullptr};

void Task::run_and_release() {
  TaskGroup* group = group_;
  const bool heap_allocated = heap_allocated_;
  try {
    invoke();
  } catch (...) {
    // A throwing payload must not unwind into the worker loop (that would
    // terminate the process); park the exception in the group, which
    // rethrows it from wait() on the joining thread.
    if (group != nullptr) group->capture_exception(std::current_exception());
  }
  // finish_one() must come last: for stack-resident tasks it is the signal
  // that lets the spawning frame's wait() return and reclaim the storage,
  // so `this` must not be touched afterwards.
  if (heap_allocated) delete this;
  if (group != nullptr) group->finish_one();
}

Scheduler& Scheduler::instance() {
  static Scheduler scheduler(requested_threads_.load() > 0
                                 ? requested_threads_.load()
                                 : env_thread_count());
  return scheduler;
}

bool Scheduler::set_num_threads(int n) {
  POCHOIR_ASSERT(n >= 1);
  requested_threads_.store(n);
  return true;  // takes effect if instance() has not been constructed yet
}

Scheduler::Scheduler(int num_threads) : num_workers_(num_threads) {
  // The calling thread participates in every fork-join region via
  // TaskGroup::wait(), so the pool only needs P-1 dedicated workers;
  // spawning P would oversubscribe the machine with spinning helpers.
  const int pool = num_workers_ > 1 ? num_workers_ - 1 : 0;
  slots_.reserve(static_cast<std::size_t>(pool));
  for (int i = 0; i < pool; ++i) {
    auto slot = std::make_unique<WorkerSlot>();
    slot->steal_seed = 0x9e3779b97f4a7c15ULL * static_cast<std::uint64_t>(i + 1);
    slots_.push_back(std::move(slot));
  }
  threads_.reserve(static_cast<std::size_t>(pool));
  for (int i = 0; i < pool; ++i) {
    threads_.emplace_back([this, i] { worker_main(i); });
  }
  live_instance_.store(this, std::memory_order_release);
}

Scheduler::~Scheduler() {
  live_instance_.store(nullptr, std::memory_order_release);
  shutting_down_.store(true, std::memory_order_release);
  {
    std::lock_guard<std::mutex> lock(park_mutex_);
    work_epoch_.fetch_add(1, std::memory_order_release);
  }
  park_cv_.notify_all();
  for (auto& thread : threads_) thread.join();
}

telemetry::WorkerStats& Scheduler::caller_stats() {
  const int index = tls_worker_index;
  return index >= 0 ? slots_[static_cast<std::size_t>(index)]->stats
                    : external_stats_;
}

telemetry::SchedulerCounters Scheduler::counters() const {
  telemetry::SchedulerCounters total;
  for (const auto& slot : slots_) total += slot->stats;
  total += external_stats_;
  return total;
}

telemetry::SchedulerCounters Scheduler::counters_now() {
  Scheduler* live = live_instance_.load(std::memory_order_acquire);
  return live != nullptr ? live->counters() : telemetry::SchedulerCounters{};
}

void Scheduler::submit(Task* task) {
  bump(caller_stats().spawns);
  const int index = tls_worker_index;
  if (index >= 0) {
    slots_[static_cast<std::size_t>(index)]->deque.push(task);
  } else {
    std::lock_guard<std::mutex> lock(inject_mutex_);
    injected_.push_back(task);
    injected_count_.fetch_add(1, std::memory_order_release);
  }
  notify();
}

void Scheduler::notify() {
  if (sleepers_.load(std::memory_order_acquire) > 0) {
    {
      std::lock_guard<std::mutex> lock(park_mutex_);
      work_epoch_.fetch_add(1, std::memory_order_release);
    }
    park_cv_.notify_all();
  } else {
    work_epoch_.fetch_add(1, std::memory_order_release);
  }
}

Task* Scheduler::pop_injected() {
  if (injected_count_.load(std::memory_order_acquire) == 0) return nullptr;
  std::lock_guard<std::mutex> lock(inject_mutex_);
  if (injected_.empty()) return nullptr;
  Task* task = injected_.back();
  injected_.pop_back();
  injected_count_.fetch_sub(1, std::memory_order_release);
  return task;
}

Task* Scheduler::try_steal(std::uint64_t& seed) {
  // Two sweeps over random victims, then give up for this round.
  const int n = static_cast<int>(slots_.size());
  if (n == 0) return nullptr;
  for (int attempt = 0; attempt < 2 * n; ++attempt) {
    const int victim = static_cast<int>(next_seed(seed) % static_cast<std::uint64_t>(n));
    if (victim == tls_worker_index) continue;
    if (Task* task = slots_[static_cast<std::size_t>(victim)]->deque.steal()) {
      bump(caller_stats().steals);
      return task;
    }
  }
  bump(caller_stats().failed_steals);
  return nullptr;
}

Task* Scheduler::try_acquire() {
  const int index = tls_worker_index;
  if (index >= 0) {
    if (Task* task = slots_[static_cast<std::size_t>(index)]->deque.pop()) {
      return task;
    }
    if (Task* task = try_steal(slots_[static_cast<std::size_t>(index)]->steal_seed)) {
      return task;
    }
    return pop_injected();
  }
  // External thread: help via the injection queue first, then steal.
  if (Task* task = pop_injected()) return task;
  thread_local std::uint64_t seed = 0xdeadbeefcafef00dULL;
  return try_steal(seed);
}

void Scheduler::worker_main(int index) {
  tls_worker_index = index;
  WorkerSlot& slot = *slots_[static_cast<std::size_t>(index)];
  int idle_spins = 0;
  while (!shutting_down_.load(std::memory_order_acquire)) {
    Task* task = slot.deque.pop();
    if (task == nullptr) task = try_steal(slot.steal_seed);
    if (task == nullptr) task = pop_injected();
    if (task != nullptr) {
      idle_spins = 0;
      bump(slot.stats.tasks_run);
      task->run_and_release();
      continue;
    }
    if (++idle_spins < 1024) {
      bump(slot.stats.idle_spins);
      cpu_relax();
      continue;
    }
    // Park until the work epoch advances (two-phase to avoid lost wakeups).
    const std::uint64_t epoch = work_epoch_.load(std::memory_order_acquire);
    if (slot.deque.approx_size() > 0 ||
        injected_count_.load(std::memory_order_acquire) > 0) {
      continue;
    }
    bump(slot.stats.parks);
    std::unique_lock<std::mutex> lock(park_mutex_);
    sleepers_.fetch_add(1, std::memory_order_acq_rel);
    park_cv_.wait_for(lock, std::chrono::milliseconds(10), [&] {
      return work_epoch_.load(std::memory_order_acquire) != epoch ||
             shutting_down_.load(std::memory_order_acquire);
    });
    sleepers_.fetch_sub(1, std::memory_order_acq_rel);
    idle_spins = 0;
  }
  // Drain: finish any work left so no TaskGroup waits forever at shutdown.
  while (true) {
    Task* task = slot.deque.pop();
    if (task == nullptr) task = pop_injected();
    if (task == nullptr) break;
    bump(slot.stats.tasks_run);
    task->run_and_release();
  }
  tls_worker_index = -1;
}

void TaskGroup::wait_quiet() {
  Scheduler& scheduler = Scheduler::instance();
  int idle_spins = 0;
  while (pending_.load(std::memory_order_acquire) > 0) {
    if (Task* task = scheduler.try_acquire()) {
      idle_spins = 0;
      bump(scheduler.caller_stats().tasks_run);
      task->run_and_release();
    } else if (++idle_spins < 2048) {
      cpu_relax();
    } else {
      // All our tasks are in flight on other workers.
      std::this_thread::yield();
      idle_spins = 0;
    }
  }
}

void TaskGroup::wait() {
  wait_quiet();
  rethrow_any();
}

void TaskGroup::capture_exception(std::exception_ptr e) noexcept {
  std::lock_guard<std::mutex> lock(error_mutex_);
  if (!error_) {
    error_ = std::move(e);
    has_error_.store(true, std::memory_order_release);
  }
}

void TaskGroup::rethrow_any() {
  if (!has_error_.load(std::memory_order_acquire)) return;
  std::exception_ptr e;
  {
    std::lock_guard<std::mutex> lock(error_mutex_);
    e = std::move(error_);
    error_ = nullptr;
    has_error_.store(false, std::memory_order_release);
  }
  if (e) std::rethrow_exception(e);
}

}  // namespace pochoir::rt
