// Chase–Lev work-stealing deque.
//
// Implements the lock-free deque of Chase & Lev (SPAA 2005) with the memory
// orderings from Lê, Pop, Cohen, Zappa Nardelli, "Correct and Efficient
// Work-Stealing for Weak Memory Models" (PPoPP 2013).  The owner pushes and
// pops at the bottom; thieves steal from the top.  Buffers grow by doubling
// and retired buffers are kept until destruction so racing thieves never
// observe freed memory.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <vector>

namespace pochoir::rt {

class Task;  // defined in scheduler.hpp

/// Single-owner, multi-thief deque of Task pointers.
class TaskDeque {
 public:
  explicit TaskDeque(std::int64_t initial_capacity = 256)
      : buffer_(new Buffer(initial_capacity)) {
    retired_.emplace_back(buffer_.load(std::memory_order_relaxed));
  }

  TaskDeque(const TaskDeque&) = delete;
  TaskDeque& operator=(const TaskDeque&) = delete;

  /// Owner-only: push a task at the bottom.
  void push(Task* task) {
    std::int64_t b = bottom_.load(std::memory_order_relaxed);
    std::int64_t t = top_.load(std::memory_order_acquire);
    Buffer* buf = buffer_.load(std::memory_order_relaxed);
    if (b - t > buf->capacity - 1) {
      buf = grow(buf, b, t);
    }
    buf->put(b, task);
    std::atomic_thread_fence(std::memory_order_release);
    bottom_.store(b + 1, std::memory_order_relaxed);
  }

  /// Owner-only: pop the most recently pushed task, or nullptr if empty.
  Task* pop() {
    std::int64_t b = bottom_.load(std::memory_order_relaxed) - 1;
    Buffer* buf = buffer_.load(std::memory_order_relaxed);
    bottom_.store(b, std::memory_order_relaxed);
    std::atomic_thread_fence(std::memory_order_seq_cst);
    std::int64_t t = top_.load(std::memory_order_relaxed);
    Task* task = nullptr;
    if (t <= b) {
      task = buf->get(b);
      if (t == b) {
        // Last element: race against thieves for it.
        if (!top_.compare_exchange_strong(t, t + 1, std::memory_order_seq_cst,
                                          std::memory_order_relaxed)) {
          task = nullptr;  // a thief won
        }
        bottom_.store(b + 1, std::memory_order_relaxed);
      }
    } else {
      bottom_.store(b + 1, std::memory_order_relaxed);
    }
    return task;
  }

  /// Any thread: steal the oldest task, or nullptr if empty or lost a race.
  Task* steal() {
    std::int64_t t = top_.load(std::memory_order_acquire);
    std::atomic_thread_fence(std::memory_order_seq_cst);
    std::int64_t b = bottom_.load(std::memory_order_acquire);
    Task* task = nullptr;
    if (t < b) {
      Buffer* buf = buffer_.load(std::memory_order_consume);
      task = buf->get(t);
      if (!top_.compare_exchange_strong(t, t + 1, std::memory_order_seq_cst,
                                        std::memory_order_relaxed)) {
        return nullptr;  // lost the race; caller may retry elsewhere
      }
    }
    return task;
  }

  /// Approximate size; used only for heuristics, never for correctness.
  [[nodiscard]] std::int64_t approx_size() const {
    std::int64_t b = bottom_.load(std::memory_order_relaxed);
    std::int64_t t = top_.load(std::memory_order_relaxed);
    return b > t ? b - t : 0;
  }

 private:
  struct Buffer {
    explicit Buffer(std::int64_t cap)
        : capacity(cap), mask(cap - 1), slots(new std::atomic<Task*>[cap]) {}
    const std::int64_t capacity;
    const std::int64_t mask;  // capacity is always a power of two
    std::unique_ptr<std::atomic<Task*>[]> slots;

    Task* get(std::int64_t i) const {
      return slots[i & mask].load(std::memory_order_relaxed);
    }
    void put(std::int64_t i, Task* task) {
      slots[i & mask].store(task, std::memory_order_relaxed);
    }
  };

  Buffer* grow(Buffer* old, std::int64_t b, std::int64_t t) {
    auto grown = std::make_unique<Buffer>(old->capacity * 2);
    for (std::int64_t i = t; i < b; ++i) grown->put(i, old->get(i));
    Buffer* raw = grown.get();
    retired_.push_back(std::move(grown));
    buffer_.store(raw, std::memory_order_release);
    return raw;
  }

  std::atomic<std::int64_t> top_{0};
  std::atomic<std::int64_t> bottom_{0};
  std::atomic<Buffer*> buffer_;
  // Owner-only growth; old buffers stay alive for in-flight thieves.
  std::vector<std::unique_ptr<Buffer>> retired_;
};

}  // namespace pochoir::rt
