// Structured parallelism on top of the scheduler: the cilk_spawn / cilk_for
// equivalents used by the stencil algorithms.
#pragma once

#include <cstdint>
#include <type_traits>
#include <utility>

#include "runtime/scheduler.hpp"

namespace pochoir::rt {

/// Run two callables potentially in parallel; returns when both finish.
template <typename F0, typename F1>
void parallel_invoke(F0&& f0, F1&& f1) {
  TaskGroup group;
  group.spawn(std::forward<F1>(f1));
  f0();
  group.wait();
}

/// Run three callables potentially in parallel.
template <typename F0, typename F1, typename F2>
void parallel_invoke(F0&& f0, F1&& f1, F2&& f2) {
  TaskGroup group;
  group.spawn(std::forward<F1>(f1));
  group.spawn(std::forward<F2>(f2));
  f0();
  group.wait();
}

namespace detail {

template <typename Body>
void parallel_for_split(std::int64_t lo, std::int64_t hi, std::int64_t grain,
                        const Body& body, TaskGroup& group) {
  while (hi - lo > grain) {
    const std::int64_t mid = lo + (hi - lo) / 2;
    group.spawn([mid, hi, grain, &body, &group] {
      parallel_for_split(mid, hi, grain, body, group);
    });
    hi = mid;
  }
  for (std::int64_t i = lo; i < hi; ++i) body(i);
}

}  // namespace detail

/// Parallel loop over [lo, hi) with recursive binary splitting (span
/// Θ(lg n) like cilk_for).  `grain` is the maximum serial chunk; pass 0 to
/// auto-select ~8 chunks per worker.
template <typename Body>
void parallel_for(std::int64_t lo, std::int64_t hi, std::int64_t grain,
                  const Body& body) {
  if (hi <= lo) return;
  const std::int64_t n = hi - lo;
  if (grain <= 0) {
    const std::int64_t workers = Scheduler::instance().num_threads();
    grain = n / (8 * workers);
    if (grain < 1) grain = 1;
  }
  if (n <= grain) {
    for (std::int64_t i = lo; i < hi; ++i) body(i);
    return;
  }
  TaskGroup group;
  detail::parallel_for_split(lo, hi, grain, body, group);
  group.wait();
}

/// Parallel loop with grain 1 over a small index range (used for the
/// subzoid groups of a hyperspace cut, which are individually large).
template <typename Body>
void parallel_for_each_index(std::int64_t n, const Body& body) {
  parallel_for(0, n, 1, body);
}

/// Execution policy running everything serially (used for 1-core baselines
/// and for deterministic instrumented runs).
struct SerialPolicy {
  static constexpr bool is_parallel = false;

  template <typename F0, typename F1>
  void invoke2(F0&& f0, F1&& f1) const {
    f0();
    f1();
  }

  template <typename Body>
  void for_all(std::int64_t n, const Body& body) const {
    for (std::int64_t i = 0; i < n; ++i) body(i);
  }

  template <typename Body>
  void for_range(std::int64_t lo, std::int64_t hi, std::int64_t /*grain*/,
                 const Body& body) const {
    for (std::int64_t i = lo; i < hi; ++i) body(i);
  }
};

/// Execution policy using the work-stealing pool.
struct ParallelPolicy {
  static constexpr bool is_parallel = true;

  template <typename F0, typename F1>
  void invoke2(F0&& f0, F1&& f1) const {
    parallel_invoke(std::forward<F0>(f0), std::forward<F1>(f1));
  }

  template <typename Body>
  void for_all(std::int64_t n, const Body& body) const {
    parallel_for_each_index(n, body);
  }

  template <typename Body>
  void for_range(std::int64_t lo, std::int64_t hi, std::int64_t grain,
                 const Body& body) const {
    parallel_for(lo, hi, grain, body);
  }
};

}  // namespace pochoir::rt
