// Structured parallelism on top of the scheduler: the cilk_spawn / cilk_for
// equivalents used by the stencil algorithms.
#pragma once

#include <array>
#include <cstdint>
#include <type_traits>
#include <utility>

#include "runtime/scheduler.hpp"

namespace pochoir::rt {

namespace detail {

/// Task whose payload lives in the spawning frame: zero heap traffic per
/// fork.  The spawning scope must TaskGroup::wait() before the referenced
/// callable (and this task) go out of scope.
template <typename F>
class StackTask final : public Task {
 public:
  StackTask(TaskGroup* group, F& f)
      : Task(group, /*heap_allocated=*/false), f_(&f) {}

 protected:
  POCHOIR_FLATTEN void invoke() override { (*f_)(); }

 private:
  F* f_;
};

/// Stack-resident task covering an index range [lo, hi) of a parallel
/// loop body.  Default-constructible so a fixed-capacity array of them can
/// sit in the spawning frame; assign() binds one before spawn_prepared().
template <typename Body>
class RangeTask final : public Task {
 public:
  RangeTask() : Task(nullptr, /*heap_allocated=*/false) {}

  void assign(TaskGroup* group, const Body* body, std::int64_t lo,
              std::int64_t hi) {
    set_group(group);
    body_ = body;
    lo_ = lo;
    hi_ = hi;
  }

 protected:
  POCHOIR_FLATTEN void invoke() override {
    for (std::int64_t i = lo_; i < hi_; ++i) (*body_)(i);
  }

 private:
  const Body* body_ = nullptr;
  std::int64_t lo_ = 0;
  std::int64_t hi_ = 0;
};

}  // namespace detail

/// Run two callables potentially in parallel; returns when both finish.
/// The forked task lives on this frame's stack — no allocation per fork.
/// If either callable throws, the other still completes before the first
/// exception propagates (stack-resident storage must quiesce first).
template <typename F0, typename F1>
void parallel_invoke(F0&& f0, F1&& f1) {
  if (Scheduler::instance().num_threads() == 1) {
    f0();
    f1();
    return;
  }
  TaskGroup group;
  detail::StackTask<std::remove_reference_t<F1>> t1(&group, f1);
  group.spawn_prepared(&t1);
  try {
    f0();
  } catch (...) {
    group.wait_quiet();
    throw;
  }
  group.wait();
}

/// Run three callables potentially in parallel.
template <typename F0, typename F1, typename F2>
void parallel_invoke(F0&& f0, F1&& f1, F2&& f2) {
  if (Scheduler::instance().num_threads() == 1) {
    f0();
    f1();
    f2();
    return;
  }
  TaskGroup group;
  detail::StackTask<std::remove_reference_t<F1>> t1(&group, f1);
  detail::StackTask<std::remove_reference_t<F2>> t2(&group, f2);
  group.spawn_prepared(&t1);
  group.spawn_prepared(&t2);
  try {
    f0();
  } catch (...) {
    group.wait_quiet();
    throw;
  }
  group.wait();
}

namespace detail {

template <typename Body>
void parallel_for_split(std::int64_t lo, std::int64_t hi, std::int64_t grain,
                        const Body& body, TaskGroup& group) {
  while (hi - lo > grain) {
    const std::int64_t mid = lo + (hi - lo) / 2;
    group.spawn([mid, hi, grain, &body, &group] {
      parallel_for_split(mid, hi, grain, body, group);
    });
    hi = mid;
  }
  for (std::int64_t i = lo; i < hi; ++i) body(i);
}

}  // namespace detail

/// Parallel loop over [lo, hi) with recursive binary splitting (span
/// Θ(lg n) like cilk_for).  `grain` is the maximum serial chunk; pass 0 to
/// auto-select ~8 chunks per worker.
template <typename Body>
void parallel_for(std::int64_t lo, std::int64_t hi, std::int64_t grain,
                  const Body& body) {
  if (hi <= lo) return;
  const std::int64_t n = hi - lo;
  if (grain <= 0) {
    const std::int64_t workers = Scheduler::instance().num_threads();
    grain = n / (8 * workers);
    if (grain < 1) grain = 1;
  }
  if (n <= grain) {
    for (std::int64_t i = lo; i < hi; ++i) body(i);
    return;
  }
  TaskGroup group;
  try {
    detail::parallel_for_split(lo, hi, grain, body, group);
  } catch (...) {
    group.wait_quiet();
    throw;
  }
  group.wait();
}

/// Parallel loop with grain 1 over a small index range (used for the
/// subzoid buckets of a hyperspace cut, which are individually large).
/// All tasks live on this frame's stack: a bucket of n subzoids costs zero
/// heap allocations and at most kMaxInlineTasks spawns — beyond that,
/// indices are chunked so spawn count stays O(1) per bucket rather than
/// O(subzoids).
template <typename Body>
void parallel_for_each_index(std::int64_t n, const Body& body) {
  if (n <= 0) return;
  if (n == 1 || Scheduler::instance().num_threads() == 1) {
    for (std::int64_t i = 0; i < n; ++i) body(i);
    return;
  }
  // 3^3 covers every bucket of a <=3D hyperspace cut task-per-subzoid;
  // larger buckets (4D+) get contiguous chunks.
  constexpr std::int64_t kMaxInlineTasks = 27;
  const std::int64_t tasks = n < kMaxInlineTasks ? n : kMaxInlineTasks;
  TaskGroup group;
  std::array<detail::RangeTask<Body>, kMaxInlineTasks> storage;
  for (std::int64_t i = 1; i < tasks; ++i) {
    storage[static_cast<std::size_t>(i)].assign(&group, &body, i * n / tasks,
                                                (i + 1) * n / tasks);
    group.spawn_prepared(&storage[static_cast<std::size_t>(i)]);
  }
  // Chunk 0 runs inline on the calling thread.
  try {
    for (std::int64_t i = 0; i < n / tasks; ++i) body(i);
  } catch (...) {
    group.wait_quiet();
    throw;
  }
  group.wait();
}

/// Execution policy running everything serially (used for 1-core baselines
/// and for deterministic instrumented runs).
struct SerialPolicy {
  static constexpr bool is_parallel = false;

  template <typename F0, typename F1>
  void invoke2(F0&& f0, F1&& f1) const {
    f0();
    f1();
  }

  template <typename Body>
  void for_all(std::int64_t n, const Body& body) const {
    for (std::int64_t i = 0; i < n; ++i) body(i);
  }

  template <typename Body>
  void for_range(std::int64_t lo, std::int64_t hi, std::int64_t /*grain*/,
                 const Body& body) const {
    for (std::int64_t i = lo; i < hi; ++i) body(i);
  }
};

/// Execution policy using the work-stealing pool.
struct ParallelPolicy {
  static constexpr bool is_parallel = true;

  template <typename F0, typename F1>
  void invoke2(F0&& f0, F1&& f1) const {
    parallel_invoke(std::forward<F0>(f0), std::forward<F1>(f1));
  }

  template <typename Body>
  void for_all(std::int64_t n, const Body& body) const {
    parallel_for_each_index(n, body);
  }

  template <typename Body>
  void for_range(std::int64_t lo, std::int64_t hi, std::int64_t grain,
                 const Body& body) const {
    parallel_for(lo, hi, grain, body);
  }
};

}  // namespace pochoir::rt
