// Fork–join work-stealing scheduler: the Cilk Plus substrate of the paper.
//
// The paper's algorithms are expressed with spawn/sync (cilk_spawn) and
// parallel loops (cilk_for).  This module provides the same programming
// model: a TaskGroup supports spawn() + wait() fork-join regions, and
// parallel.hpp layers parallel_invoke / parallel_for on top.
//
// Architecture: one worker thread per core (configurable), each owning a
// Chase–Lev deque.  Owners push/pop LIFO for locality; idle workers steal
// FIFO from victims chosen round-robin.  Threads not registered with the
// pool (e.g. the program main thread) submit through a shared injection
// queue and help execute while waiting, so fork-join calls work from any
// thread without deadlock.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <exception>
#include <memory>
#include <mutex>
#include <thread>
#include <utility>
#include <vector>

#include "runtime/task_deque.hpp"
#include "support/assertion.hpp"
#include "telemetry/stats.hpp"

namespace pochoir::rt {

class TaskGroup;

/// Type-erased unit of work.  Heap-allocated tasks (TaskGroup::spawn) are
/// deleted by whichever thread executes them; stack-resident tasks
/// (TaskGroup::spawn_prepared) are owned by the spawning frame, which must
/// wait() on the group before the storage goes out of scope.
class Task {
 public:
  explicit Task(TaskGroup* group, bool heap_allocated = true)
      : group_(group), heap_allocated_(heap_allocated) {}
  virtual ~Task() = default;
  /// Runs the payload, releases heap storage, and notifies the owning
  /// group.  `this` is dead after the call either way: deleted if
  /// heap-allocated, or up for reclamation by the spawning frame the
  /// moment finish_one() lets its wait() return.
  void run_and_release();

 protected:
  virtual void invoke() = 0;
  void set_group(TaskGroup* group) { group_ = group; }

 private:
  TaskGroup* group_;
  bool heap_allocated_;
};

namespace detail {

#if defined(__GNUC__) || defined(__clang__)
// Force full inlining of the task payload.  The payload is typically a deep
// chain of closures (loop splitter -> slab body -> point function -> user
// kernel -> views); without flattening, the inliner's budget runs out
// inside this cold-looking virtual function and the innermost stencil loop
// is left scalar, costing ~5-10x on memory-streaming kernels.  Clang has no
// clang:: spelling for flatten; it accepts the GNU one.
#define POCHOIR_FLATTEN [[gnu::flatten]]
#else
#define POCHOIR_FLATTEN
#endif

template <typename F>
class TaskImpl final : public Task {
 public:
  TaskImpl(TaskGroup* group, F&& f) : Task(group), f_(std::move(f)) {}

 protected:
  POCHOIR_FLATTEN void invoke() override { f_(); }

 private:
  F f_;
};
}  // namespace detail

/// Global work-stealing thread pool.  Created lazily on first use.
class Scheduler {
 public:
  /// The process-wide scheduler instance.
  static Scheduler& instance();

  /// Overrides the worker count for schedulers created after this call.
  /// Must be called before first use of instance(); returns false otherwise.
  static bool set_num_threads(int n);

  /// Number of worker threads (>= 1).
  [[nodiscard]] int num_threads() const { return num_workers_; }

  /// Enqueue a task: locally if the caller is a worker, otherwise injected.
  void submit(Task* task);

  /// Try to acquire one runnable task from anywhere (own deque, steals,
  /// injection queue).  Returns nullptr if nothing was found right now.
  Task* try_acquire();

  /// Wake workers that may be parked; called after submitting work.
  void notify();

  /// Aggregated scheduler telemetry across all workers plus external
  /// (non-pool) threads.  Counters only advance while telemetry::enabled().
  [[nodiscard]] telemetry::SchedulerCounters counters() const;

  /// counters() of the live scheduler instance, or zeros if no scheduler
  /// has been created yet — telemetry snapshots must not force the thread
  /// pool into existence.
  [[nodiscard]] static telemetry::SchedulerCounters counters_now();

  ~Scheduler();

  Scheduler(const Scheduler&) = delete;
  Scheduler& operator=(const Scheduler&) = delete;

 private:
  friend class TaskGroup;

  struct WorkerSlot {
    TaskDeque deque;
    std::uint64_t steal_seed = 0;
    telemetry::WorkerStats stats;
  };

  explicit Scheduler(int num_workers);
  void worker_main(int index);
  Task* try_steal(std::uint64_t& seed);
  Task* pop_injected();
  /// Stats slot for the calling thread: its worker slot, or the shared
  /// external-thread slot for threads outside the pool.
  telemetry::WorkerStats& caller_stats();

  int num_workers_;
  std::vector<std::unique_ptr<WorkerSlot>> slots_;
  std::vector<std::thread> threads_;

  std::mutex inject_mutex_;
  std::vector<Task*> injected_;
  std::atomic<std::int64_t> injected_count_{0};

  std::mutex park_mutex_;
  std::condition_variable park_cv_;
  std::atomic<int> sleepers_{0};
  std::atomic<std::uint64_t> work_epoch_{0};
  std::atomic<bool> shutting_down_{false};

  /// Counters for threads that are not pool workers (the program main
  /// thread and anything else calling in from outside).
  telemetry::WorkerStats external_stats_;

  static std::atomic<int> requested_threads_;
  static std::atomic<Scheduler*> live_instance_;
};

/// Fork–join region: spawn() forks tasks, wait() joins them while helping
/// execute pending work (the caller never blocks idly while work exists).
///
/// Abort propagation: a task payload that throws does not take down its
/// worker thread — the first exception is captured into the group and
/// rethrown from wait() on the joining thread, unwinding the fork-join
/// region exactly like a serial call would.  Later exceptions in the same
/// region are dropped (first-failure-wins); queued tasks still run to
/// completion so stack-resident storage stays valid.
class TaskGroup {
 public:
  TaskGroup() = default;
  ~TaskGroup() { POCHOIR_ASSERT(pending_.load() == 0); }

  TaskGroup(const TaskGroup&) = delete;
  TaskGroup& operator=(const TaskGroup&) = delete;

  /// Fork `f` to run asynchronously within this group.
  template <typename F>
  void spawn(F&& f) {
    pending_.fetch_add(1, std::memory_order_relaxed);
    auto* task = new detail::TaskImpl<std::decay_t<F>>(this, std::forward<F>(f));
    Scheduler::instance().submit(task);
  }

  /// Fork a pre-constructed task whose storage outlives this group's
  /// wait() — e.g. a stack-resident task built with heap_allocated=false.
  /// The hot-path alternative to spawn(): no heap traffic per fork.
  void spawn_prepared(Task* task) {
    pending_.fetch_add(1, std::memory_order_relaxed);
    Scheduler::instance().submit(task);
  }

  /// Join: executes pending work until every spawned task has finished,
  /// then rethrows the first exception captured from a task, if any.
  void wait();

  /// Join without rethrowing (used when the caller already holds its own
  /// exception and only needs stack-resident task storage to quiesce).
  void wait_quiet();

  /// Called by Task on completion.
  void finish_one() { pending_.fetch_sub(1, std::memory_order_acq_rel); }

  /// Stores the first exception thrown by a task in this group.
  void capture_exception(std::exception_ptr e) noexcept;

  /// Rethrows the captured exception, if any (cleared afterwards).
  void rethrow_any();

  [[nodiscard]] bool has_error() const {
    return has_error_.load(std::memory_order_acquire);
  }

 private:
  std::atomic<std::int64_t> pending_{0};
  std::atomic<bool> has_error_{false};
  std::mutex error_mutex_;
  std::exception_ptr error_;
};

}  // namespace pochoir::rt
