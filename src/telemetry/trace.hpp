// Scoped span tracing: a lock-free per-thread ring buffer of timed events
// that exports to chrome://tracing / Perfetto JSON (see export.hpp).
//
// Design constraints, in order:
//   1. Recording a span while tracing is off must cost one relaxed load.
//   2. Recording while tracing is on must not allocate, lock, or touch
//      shared cache lines — each thread owns a fixed-capacity ring and is
//      its only writer; the exporter is the only concurrent reader and
//      synchronizes through one release/acquire counter per ring.
//   3. Span names are compile-time string literals (`const char*` stored by
//      pointer), so an Event is 32 bytes and recording is a handful of
//      stores.
//
// When a ring wraps, the oldest events are overwritten and a dropped
// counter records how many; the exporter reports the loss rather than
// blocking the traced thread.
#pragma once

#include <atomic>
#include <cstdint>
#include <cstdlib>
#include <memory>
#include <mutex>
#include <vector>

#include "support/timer.hpp"

namespace pochoir::trace {

/// One completed span.  `name` must be a string literal (stored by
/// pointer, never copied or freed).
struct Event {
  const char* name = nullptr;
  std::uint64_t begin_ns = 0;
  std::uint64_t end_ns = 0;
  std::int64_t arg = -1;  ///< span-specific detail (depth, slab index, ...); -1 = none
};

/// Snapshot of one thread's ring, taken by the exporter.
struct ThreadLog {
  int tid = 0;
  std::uint64_t dropped = 0;
  std::vector<Event> events;
};

/// Process-wide trace collector.  Threads record into private rings; the
/// exporter drains copies under a registry mutex without stopping writers.
class Tracer {
 public:
  static constexpr std::uint32_t kCapacity = 1u << 16;  ///< events per thread

  static Tracer& instance() {
    static Tracer tracer;
    return tracer;
  }

  [[nodiscard]] bool active() const {
    return active_.load(std::memory_order_relaxed);
  }
  void set_active(bool on) { active_.store(on, std::memory_order_relaxed); }

  /// Record one completed span into the calling thread's ring.
  void record(const char* name, std::uint64_t begin_ns, std::uint64_t end_ns,
              std::int64_t arg) {
    Buffer& buf = local_buffer();
    const std::uint32_t count = buf.count.load(std::memory_order_relaxed);
    Event& slot = buf.events[count % kCapacity];
    slot.name = name;
    slot.begin_ns = begin_ns;
    slot.end_ns = end_ns;
    slot.arg = arg;
    if (count >= kCapacity) buf.dropped.fetch_add(1, std::memory_order_relaxed);
    // Release-publish so a drain that observes the new count also observes
    // the slot contents.
    buf.count.store(count + 1, std::memory_order_release);
  }

  /// Copy out everything recorded so far.  Safe to call while other
  /// threads keep tracing; events racing with the drain land in the next
  /// one.
  [[nodiscard]] std::vector<ThreadLog> drain_copy() {
    std::lock_guard<std::mutex> lock(registry_mutex_);
    std::vector<ThreadLog> logs;
    logs.reserve(buffers_.size());
    for (const auto& buf : buffers_) {
      ThreadLog log;
      log.tid = buf->tid;
      log.dropped = buf->dropped.load(std::memory_order_relaxed);
      const std::uint32_t count = buf->count.load(std::memory_order_acquire);
      const std::uint32_t kept = count < kCapacity ? count : kCapacity;
      log.events.reserve(kept);
      // Oldest-first: for a wrapped ring the oldest surviving event sits at
      // count % kCapacity.
      const std::uint32_t start = count < kCapacity ? 0 : count % kCapacity;
      for (std::uint32_t i = 0; i < kept; ++i) {
        log.events.push_back(buf->events[(start + i) % kCapacity]);
      }
      logs.push_back(std::move(log));
    }
    return logs;
  }

  /// Forget all recorded events (counts reset; rings stay allocated).
  void reset() {
    std::lock_guard<std::mutex> lock(registry_mutex_);
    for (const auto& buf : buffers_) {
      buf->count.store(0, std::memory_order_relaxed);
      buf->dropped.store(0, std::memory_order_relaxed);
    }
  }

 private:
  struct Buffer {
    int tid = 0;
    std::atomic<std::uint32_t> count{0};
    std::atomic<std::uint64_t> dropped{0};
    std::vector<Event> events;
  };

  Tracer() = default;

  Buffer& local_buffer() {
    thread_local Buffer* cached = nullptr;
    if (cached == nullptr) cached = &register_thread();
    return *cached;
  }

  Buffer& register_thread() {
    std::lock_guard<std::mutex> lock(registry_mutex_);
    auto buf = std::make_unique<Buffer>();
    buf->tid = static_cast<int>(buffers_.size());
    buf->events.resize(kCapacity);
    buffers_.push_back(std::move(buf));
    return *buffers_.back();
  }

  std::atomic<bool> active_{false};
  std::mutex registry_mutex_;
  // unique_ptr elements so Buffer addresses stay stable across push_back;
  // rings are never removed (thread ids stay meaningful for the whole
  // process) — a handful of 2 MiB rings, only touched if tracing is used.
  std::vector<std::unique_ptr<Buffer>> buffers_;
};

/// RAII scoped span.  Construct with `nullptr` to make it a no-op (used to
/// gate spans on a depth threshold without branching at the use site).
/// Costs one relaxed load when tracing is inactive.
class Span {
 public:
  explicit Span(const char* name, std::int64_t arg = -1)
      : name_(name != nullptr && Tracer::instance().active() ? name : nullptr),
        arg_(arg),
        begin_ns_(name_ != nullptr ? now_ns() : 0) {}

  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

  ~Span() {
    if (name_ != nullptr) {
      Tracer::instance().record(name_, begin_ns_, now_ns(), arg_);
    }
  }

 private:
  const char* name_;
  std::int64_t arg_;
  std::uint64_t begin_ns_;
};

/// Zoid-recursion spans are only recorded down to this depth (else the
/// trace drowns in microsecond leaves).  POCHOIR_TRACE_ZOID_DEPTH
/// overrides; default 2 keeps the top few fan-outs visible.
[[nodiscard]] inline int zoid_depth_limit() {
  static const int limit = [] {
    if (const char* v = std::getenv("POCHOIR_TRACE_ZOID_DEPTH")) {
      return std::atoi(v);
    }
    return 2;
  }();
  return limit;
}

}  // namespace pochoir::trace
