// Runtime telemetry counters: the always-compiled, near-zero-overhead-when-
// off measurement substrate.
//
// Two counter families:
//
//   - WorkerStats: per-worker scheduler counters (spawns, steals, failed
//     steals, tasks run, idle spins, parks).  Each worker owns one
//     cache-line-padded slot and increments it with relaxed atomics, so
//     collection never introduces cross-core contention; the scheduler
//     aggregates slots into a SchedulerCounters snapshot on demand.
//
//   - WalkStats: per-run walk counters (space/time cuts, base cases by
//     engine, zoid size/height histograms, points updated).  Accumulated
//     through WalkContext at zoid / time-step granularity only — never in
//     an inner loop — preserving the allocation-free, branch-light hot path
//     established in PR 1.
//
// Everything is gated on one process-wide flag (telemetry::enabled()),
// default off unless POCHOIR_TELEMETRY is set; when off the only cost is a
// relaxed load + branch at coarse granularity.
#pragma once

#include <array>
#include <atomic>
#include <bit>
#include <cstdint>
#include <cstdlib>

namespace pochoir::telemetry {

namespace detail {

inline bool env_truthy(const char* name) {
  const char* v = std::getenv(name);
  return v != nullptr && v[0] != '\0' && !(v[0] == '0' && v[1] == '\0');
}

inline std::atomic<bool>& enabled_flag() {
  static std::atomic<bool> flag{env_truthy("POCHOIR_TELEMETRY")};
  return flag;
}

}  // namespace detail

/// Process-wide counter-collection switch.  Defaults to POCHOIR_TELEMETRY
/// (unset/"0" = off).  Reading it is one relaxed atomic load.
[[nodiscard]] inline bool enabled() {
  return detail::enabled_flag().load(std::memory_order_relaxed);
}

inline void set_enabled(bool on) {
  detail::enabled_flag().store(on, std::memory_order_relaxed);
}

/// Per-worker scheduler counters.  One cache line per worker: increments
/// are relaxed stores to an owned line, so enabling telemetry does not
/// serialize the work-stealing hot paths.
struct alignas(64) WorkerStats {
  std::atomic<std::uint64_t> spawns{0};         ///< tasks submitted by this thread
  std::atomic<std::uint64_t> tasks_run{0};      ///< tasks executed by this thread
  std::atomic<std::uint64_t> steals{0};         ///< successful steals
  std::atomic<std::uint64_t> failed_steals{0};  ///< steal rounds that found nothing
  std::atomic<std::uint64_t> idle_spins{0};     ///< relax-loop iterations while idle
  std::atomic<std::uint64_t> parks{0};          ///< times this worker blocked on the CV
};

/// Plain aggregate of scheduler counters (a point-in-time snapshot; deltas
/// of two snapshots describe one run).
struct SchedulerCounters {
  std::uint64_t spawns = 0;
  std::uint64_t tasks_run = 0;
  std::uint64_t steals = 0;
  std::uint64_t failed_steals = 0;
  std::uint64_t idle_spins = 0;
  std::uint64_t parks = 0;

  SchedulerCounters& operator+=(const WorkerStats& w) {
    spawns += w.spawns.load(std::memory_order_relaxed);
    tasks_run += w.tasks_run.load(std::memory_order_relaxed);
    steals += w.steals.load(std::memory_order_relaxed);
    failed_steals += w.failed_steals.load(std::memory_order_relaxed);
    idle_spins += w.idle_spins.load(std::memory_order_relaxed);
    parks += w.parks.load(std::memory_order_relaxed);
    return *this;
  }

  SchedulerCounters operator-(const SchedulerCounters& o) const {
    SchedulerCounters d;
    d.spawns = spawns - o.spawns;
    d.tasks_run = tasks_run - o.tasks_run;
    d.steals = steals - o.steals;
    d.failed_steals = failed_steals - o.failed_steals;
    d.idle_spins = idle_spins - o.idle_spins;
    d.parks = parks - o.parks;
    return d;
  }

  /// Fraction of executed tasks that arrived via a steal — the
  /// load-balancing activity of the run.
  [[nodiscard]] double steal_ratio() const {
    return tasks_run > 0
               ? static_cast<double>(steals) / static_cast<double>(tasks_run)
               : 0.0;
  }
};

inline constexpr int kHistogramBuckets = 32;

/// log2 bucket index for histogram counters (bucket k holds [2^k, 2^(k+1))).
[[nodiscard]] inline int log2_bucket(std::uint64_t v) {
  const int b = v == 0 ? 0 : std::bit_width(v) - 1;
  return b < kHistogramBuckets ? b : kHistogramBuckets - 1;
}

/// Plain snapshot of the walk counters.
struct WalkCounters {
  std::uint64_t space_cuts = 0;      ///< hyperspace/dim cuts applied
  std::uint64_t time_cuts = 0;       ///< time halvings applied
  std::uint64_t base_interior = 0;   ///< base-case zoids run on the interior clone
  std::uint64_t base_boundary = 0;   ///< base-case zoids run on the boundary clone
  std::uint64_t loops_steps = 0;     ///< whole time steps run by the loops engine
  std::uint64_t points_interior = 0; ///< points updated in interior base cases
  std::uint64_t points_boundary = 0; ///< points updated in boundary base cases
  std::uint64_t points_loops = 0;    ///< points updated by the loops engine
  std::array<std::uint64_t, kHistogramBuckets> zoid_points_hist{};  ///< base zoid volume, log2 buckets
  std::array<std::uint64_t, kHistogramBuckets> zoid_height_hist{};  ///< base zoid height, log2 buckets

  [[nodiscard]] std::uint64_t points_total() const {
    return points_interior + points_boundary + points_loops;
  }
  [[nodiscard]] std::uint64_t base_cases() const {
    return base_interior + base_boundary;
  }

  WalkCounters operator-(const WalkCounters& o) const {
    WalkCounters d;
    d.space_cuts = space_cuts - o.space_cuts;
    d.time_cuts = time_cuts - o.time_cuts;
    d.base_interior = base_interior - o.base_interior;
    d.base_boundary = base_boundary - o.base_boundary;
    d.loops_steps = loops_steps - o.loops_steps;
    d.points_interior = points_interior - o.points_interior;
    d.points_boundary = points_boundary - o.points_boundary;
    d.points_loops = points_loops - o.points_loops;
    for (int i = 0; i < kHistogramBuckets; ++i) {
      d.zoid_points_hist[i] = zoid_points_hist[i] - o.zoid_points_hist[i];
      d.zoid_height_hist[i] = zoid_height_hist[i] - o.zoid_height_hist[i];
    }
    return d;
  }
};

/// Thread-safe walk-counter sink.  All increments are relaxed atomics and
/// happen at zoid or time-step granularity — the inner row loops never see
/// a counter.  Walkers reach it through WalkContext::stats (nullptr = off).
class WalkStats {
 public:
  void on_space_cut() { space_cuts_.fetch_add(1, kOrder); }
  void on_time_cut() { time_cuts_.fetch_add(1, kOrder); }

  /// One base-case zoid handed to a kernel clone; `points` is its exact
  /// space-time volume.
  void on_base(std::uint64_t points, std::int64_t height, bool interior) {
    if (interior) {
      base_interior_.fetch_add(1, kOrder);
      points_interior_.fetch_add(points, kOrder);
    } else {
      base_boundary_.fetch_add(1, kOrder);
      points_boundary_.fetch_add(points, kOrder);
    }
    zoid_points_hist_[static_cast<std::size_t>(log2_bucket(points))].fetch_add(
        1, kOrder);
    const std::uint64_t h =
        height > 0 ? static_cast<std::uint64_t>(height) : 0;
    zoid_height_hist_[static_cast<std::size_t>(log2_bucket(h))].fetch_add(
        1, kOrder);
  }

  /// One whole time step completed by the loops engine (`points` = spatial
  /// grid volume).
  void on_loops_step(std::uint64_t points) {
    loops_steps_.fetch_add(1, kOrder);
    points_loops_.fetch_add(points, kOrder);
  }

  [[nodiscard]] WalkCounters snapshot() const {
    WalkCounters c;
    c.space_cuts = space_cuts_.load(kOrder);
    c.time_cuts = time_cuts_.load(kOrder);
    c.base_interior = base_interior_.load(kOrder);
    c.base_boundary = base_boundary_.load(kOrder);
    c.loops_steps = loops_steps_.load(kOrder);
    c.points_interior = points_interior_.load(kOrder);
    c.points_boundary = points_boundary_.load(kOrder);
    c.points_loops = points_loops_.load(kOrder);
    for (int i = 0; i < kHistogramBuckets; ++i) {
      c.zoid_points_hist[static_cast<std::size_t>(i)] =
          zoid_points_hist_[static_cast<std::size_t>(i)].load(kOrder);
      c.zoid_height_hist[static_cast<std::size_t>(i)] =
          zoid_height_hist_[static_cast<std::size_t>(i)].load(kOrder);
    }
    return c;
  }

 private:
  static constexpr auto kOrder = std::memory_order_relaxed;

  std::atomic<std::uint64_t> space_cuts_{0};
  std::atomic<std::uint64_t> time_cuts_{0};
  std::atomic<std::uint64_t> base_interior_{0};
  std::atomic<std::uint64_t> base_boundary_{0};
  std::atomic<std::uint64_t> loops_steps_{0};
  std::atomic<std::uint64_t> points_interior_{0};
  std::atomic<std::uint64_t> points_boundary_{0};
  std::atomic<std::uint64_t> points_loops_{0};
  std::array<std::atomic<std::uint64_t>, kHistogramBuckets> zoid_points_hist_{};
  std::array<std::atomic<std::uint64_t>, kHistogramBuckets> zoid_height_hist_{};
};

/// The process-wide walk-stat sink.  Stencil::context() attaches it to the
/// WalkContext whenever telemetry::enabled(); sessions read deltas of its
/// snapshot, so concurrent runs aggregate rather than clobber.
inline WalkStats& walk_stats() {
  static WalkStats stats;
  return stats;
}

}  // namespace pochoir::telemetry
