// Telemetry reporting: per-run snapshots, a process-wide registry with
// JSON export, the chrome://tracing exporter, and the RAII trace::Session
// that ties counters + trace to one measured region.
//
// All file output goes through io::atomic_write_file so a crash mid-export
// never leaves a truncated JSON behind.
#pragma once

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "runtime/scheduler.hpp"
#include "support/atomic_file.hpp"
#include "support/timer.hpp"
#include "telemetry/stats.hpp"
#include "telemetry/trace.hpp"

namespace pochoir::telemetry {

/// Everything measured for one labelled region (a bench config, an example
/// run, a pochoirc-generated Run call): wall time plus walk and scheduler
/// counter deltas.
struct RunTelemetry {
  std::string label;
  double seconds = 0.0;
  WalkCounters walk;
  SchedulerCounters sched;

  [[nodiscard]] std::uint64_t points() const { return walk.points_total(); }
  [[nodiscard]] double points_per_s() const {
    return seconds > 0.0 ? static_cast<double>(points()) / seconds : 0.0;
  }
};

namespace detail {

inline void json_escape_into(std::string& out, const std::string& s) {
  for (char c : s) {
    if (c == '"' || c == '\\') out.push_back('\\');
    if (static_cast<unsigned char>(c) < 0x20) {
      out += "?";  // control chars never appear in our labels; stay valid
      continue;
    }
    out.push_back(c);
  }
}

template <std::size_t N>
inline std::string hist_json(const std::array<std::uint64_t, N>& hist) {
  // Trim to the last non-zero bucket so small runs stay readable.
  std::size_t last = 0;
  for (std::size_t i = 0; i < N; ++i) {
    if (hist[i] != 0) last = i + 1;
  }
  std::string out = "[";
  for (std::size_t i = 0; i < last; ++i) {
    if (i != 0) out += ",";
    out += std::to_string(hist[i]);
  }
  out += "]";
  return out;
}

}  // namespace detail

/// Serializes one RunTelemetry as a JSON object.  With include_label=false
/// the caller is embedding it under its own key (e.g. a bench row's
/// "telemetry" field).
inline std::string to_json(const RunTelemetry& t, bool include_label = true) {
  std::string out = "{";
  if (include_label) {
    out += "\"label\": \"";
    detail::json_escape_into(out, t.label);
    out += "\", ";
  }
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.6f", t.seconds);
  out += "\"seconds\": ";
  out += buf;
  std::snprintf(buf, sizeof(buf), "%.1f", t.points_per_s());
  out += ", \"points\": " + std::to_string(t.points());
  out += ", \"points_per_s\": ";
  out += buf;
  const WalkCounters& w = t.walk;
  out += ", \"walk\": {";
  out += "\"space_cuts\": " + std::to_string(w.space_cuts);
  out += ", \"time_cuts\": " + std::to_string(w.time_cuts);
  out += ", \"base_interior\": " + std::to_string(w.base_interior);
  out += ", \"base_boundary\": " + std::to_string(w.base_boundary);
  out += ", \"loops_steps\": " + std::to_string(w.loops_steps);
  out += ", \"points_interior\": " + std::to_string(w.points_interior);
  out += ", \"points_boundary\": " + std::to_string(w.points_boundary);
  out += ", \"points_loops\": " + std::to_string(w.points_loops);
  out += ", \"zoid_points_hist\": " + detail::hist_json(w.zoid_points_hist);
  out += ", \"zoid_height_hist\": " + detail::hist_json(w.zoid_height_hist);
  out += "}";
  const SchedulerCounters& s = t.sched;
  out += ", \"sched\": {";
  out += "\"spawns\": " + std::to_string(s.spawns);
  out += ", \"tasks_run\": " + std::to_string(s.tasks_run);
  out += ", \"steals\": " + std::to_string(s.steals);
  out += ", \"failed_steals\": " + std::to_string(s.failed_steals);
  out += ", \"idle_spins\": " + std::to_string(s.idle_spins);
  out += ", \"parks\": " + std::to_string(s.parks);
  std::snprintf(buf, sizeof(buf), "%.4f", s.steal_ratio());
  out += ", \"steal_ratio\": ";
  out += buf;
  out += "}}";
  return out;
}

/// Process-wide accumulation of finished sessions, exportable as one JSON
/// snapshot (POCHOIR_TELEMETRY_JSON or an explicit export_json call).
class Registry {
 public:
  static Registry& instance() {
    static Registry registry;
    return registry;
  }

  void record(RunTelemetry t) {
    std::lock_guard<std::mutex> lock(mutex_);
    sessions_.push_back(std::move(t));
  }

  [[nodiscard]] std::vector<RunTelemetry> sessions() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return sessions_;
  }

  /// Writes {"schema": ..., "sessions": [...], totals} atomically.
  bool export_json(const std::string& path) const {
    const std::vector<RunTelemetry> sessions = this->sessions();
    RunTelemetry totals;
    totals.label = "totals";
    for (const RunTelemetry& t : sessions) {
      totals.seconds += t.seconds;
      totals.walk.space_cuts += t.walk.space_cuts;
      totals.walk.time_cuts += t.walk.time_cuts;
      totals.walk.base_interior += t.walk.base_interior;
      totals.walk.base_boundary += t.walk.base_boundary;
      totals.walk.loops_steps += t.walk.loops_steps;
      totals.walk.points_interior += t.walk.points_interior;
      totals.walk.points_boundary += t.walk.points_boundary;
      totals.walk.points_loops += t.walk.points_loops;
      for (int i = 0; i < kHistogramBuckets; ++i) {
        totals.walk.zoid_points_hist[static_cast<std::size_t>(i)] +=
            t.walk.zoid_points_hist[static_cast<std::size_t>(i)];
        totals.walk.zoid_height_hist[static_cast<std::size_t>(i)] +=
            t.walk.zoid_height_hist[static_cast<std::size_t>(i)];
      }
      totals.sched.spawns += t.sched.spawns;
      totals.sched.tasks_run += t.sched.tasks_run;
      totals.sched.steals += t.sched.steals;
      totals.sched.failed_steals += t.sched.failed_steals;
      totals.sched.idle_spins += t.sched.idle_spins;
      totals.sched.parks += t.sched.parks;
    }
    const auto result = io::atomic_write_file(path, [&](std::FILE* f) {
      std::fputs("{\"schema\": \"pochoir-telemetry-v1\", \"sessions\": [",
                 f);
      for (std::size_t i = 0; i < sessions.size(); ++i) {
        if (i != 0) std::fputs(", ", f);
        std::fputs(to_json(sessions[i]).c_str(), f);
      }
      std::fputs("], \"totals\": ", f);
      std::fputs(to_json(totals).c_str(), f);
      std::fputs("}\n", f);
      return std::ferror(f) == 0;
    });
    return result.ok;
  }

 private:
  Registry() = default;

  mutable std::mutex mutex_;
  std::vector<RunTelemetry> sessions_;
};

}  // namespace pochoir::telemetry

namespace pochoir::trace {

/// Exports everything recorded so far as a chrome://tracing / Perfetto
/// "traceEvents" JSON array of complete ("ph":"X") events.  Timestamps are
/// microseconds relative to the earliest recorded span.
inline bool write_chrome_trace(const std::string& path) {
  const std::vector<ThreadLog> logs = Tracer::instance().drain_copy();
  std::uint64_t epoch_ns = ~0ULL;
  for (const ThreadLog& log : logs) {
    for (const Event& ev : log.events) {
      if (ev.begin_ns < epoch_ns) epoch_ns = ev.begin_ns;
    }
  }
  if (epoch_ns == ~0ULL) epoch_ns = 0;
  const auto result = io::atomic_write_file(path, [&](std::FILE* f) {
    std::fputs("{\"displayTimeUnit\": \"ms\", \"traceEvents\": [", f);
    bool first = true;
    for (const ThreadLog& log : logs) {
      for (const Event& ev : log.events) {
        if (!first) std::fputs(",\n", f);
        first = false;
        const double ts_us =
            static_cast<double>(ev.begin_ns - epoch_ns) * 1e-3;
        const double dur_us =
            static_cast<double>(ev.end_ns - ev.begin_ns) * 1e-3;
        std::fprintf(f,
                     "{\"name\": \"%s\", \"cat\": \"pochoir\", \"ph\": \"X\","
                     " \"pid\": 1, \"tid\": %d, \"ts\": %.3f, \"dur\": %.3f",
                     ev.name, log.tid, ts_us, dur_us);
        if (ev.arg >= 0) {
          std::fprintf(f, ", \"args\": {\"v\": %lld}",
                       static_cast<long long>(ev.arg));
        }
        std::fputs("}", f);
      }
      if (log.dropped != 0) {
        if (!first) std::fputs(",\n", f);
        first = false;
        std::fprintf(f,
                     "{\"name\": \"dropped %llu events\", \"cat\": "
                     "\"pochoir\", \"ph\": \"X\", \"pid\": 1, \"tid\": %d, "
                     "\"ts\": 0, \"dur\": 0}",
                     static_cast<unsigned long long>(log.dropped), log.tid);
      }
    }
    std::fputs("]}\n", f);
    return std::ferror(f) == 0;
  });
  return result.ok;
}

/// RAII measured region: snapshots walk + scheduler counters on entry,
/// records the deltas into the telemetry Registry on finish()/destruction.
///
/// Environment hooks (evaluated by the first Session that sees them):
///   POCHOIR_TRACE=out.json        activate tracing; write the Chrome trace
///                                 when the owning session finishes
///   POCHOIR_TELEMETRY_JSON=p.json export the registry snapshot on finish
///
/// `force_enable` turns counters on for this session even without
/// POCHOIR_TELEMETRY (used by benches that always want a telemetry block);
/// the previous flag state is restored on finish.
class Session {
 public:
  explicit Session(std::string label, bool force_enable = false)
      : label_(std::move(label)) {
    const char* trace_path = std::getenv("POCHOIR_TRACE");
    if (trace_path != nullptr && trace_path[0] != '\0' &&
        std::string(trace_path) != "off" && !Tracer::instance().active()) {
      trace_path_ = trace_path;
      owns_trace_ = true;
      Tracer::instance().set_active(true);
    }
    prev_enabled_ = telemetry::enabled();
    if (force_enable || owns_trace_) telemetry::set_enabled(true);
    begin_ns_ = now_ns();
    walk0_ = telemetry::walk_stats().snapshot();
    sched0_ = rt::Scheduler::counters_now();
  }

  Session(const Session&) = delete;
  Session& operator=(const Session&) = delete;

  ~Session() {
    if (!finished_) finish();
  }

  /// Ends the measured region and returns its telemetry.  Idempotent; the
  /// destructor calls it if the caller did not.
  telemetry::RunTelemetry finish() {
    if (finished_) return result_;
    finished_ = true;
    result_.label = label_;
    result_.seconds = static_cast<double>(now_ns() - begin_ns_) * 1e-9;
    result_.walk = telemetry::walk_stats().snapshot() - walk0_;
    result_.sched = rt::Scheduler::counters_now() - sched0_;
    telemetry::Registry::instance().record(result_);
    if (owns_trace_) {
      write_chrome_trace(trace_path_);
      Tracer::instance().set_active(false);
    }
    if (const char* snap = std::getenv("POCHOIR_TELEMETRY_JSON")) {
      if (snap[0] != '\0') {
        telemetry::Registry::instance().export_json(snap);
      }
    }
    telemetry::set_enabled(prev_enabled_);
    return result_;
  }

 private:
  std::string label_;
  std::string trace_path_;
  bool owns_trace_ = false;
  bool prev_enabled_ = false;
  bool finished_ = false;
  std::uint64_t begin_ns_ = 0;
  telemetry::WalkCounters walk0_;
  telemetry::SchedulerCounters sched0_;
  telemetry::RunTelemetry result_;
};

}  // namespace pochoir::trace
