// User-facing error type.
//
// The library distinguishes two failure classes: *internal invariants*
// (broken zoid geometry, scheduler bookkeeping) stay on POCHOIR_ASSERT and
// abort, because continuing would compute garbage; *user-facing misuse*
// (bad extents, running before registration, nonpositive step counts)
// throws pochoir::Error so callers — long-running services in particular —
// can recover without losing the process.
#pragma once

#include <stdexcept>
#include <string>

namespace pochoir {

class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

namespace detail {

/// Throws pochoir::Error when `cond` is false.
inline void check_usage(bool cond, const char* msg) {
  if (!cond) throw Error(msg);
}

}  // namespace detail
}  // namespace pochoir
