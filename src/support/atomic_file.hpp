// Crash-safe file replacement: write-temp-then-atomic-rename with bounded
// retry/backoff.
//
// A reader never observes a half-written file: the payload goes to
// `<path>.tmp`, is flushed, and only then renamed over the destination
// (rename(2) is atomic within a filesystem).  If any step fails the
// destination keeps its previous content.  Used by the checkpoint writer
// (resilience/checkpoint.hpp) and the bench JSON reports.
#pragma once

#include <chrono>
#include <cstdio>
#include <filesystem>
#include <functional>
#include <string>
#include <thread>
#include <utility>

namespace pochoir::io {

struct AtomicWriteResult {
  bool ok = false;
  int attempts = 0;           ///< attempts consumed (>= 1 unless retries < 0)
  std::string error;          ///< last failure description when !ok
};

/// Replaces `path` with the bytes produced by `writer(FILE*)`.  `writer`
/// returns false (or the stream errors) to signal a failed attempt.  Up to
/// `1 + retries` attempts are made, sleeping `backoff_ms << attempt`
/// between them.  `fail_hook`, when set and returning true, fails the
/// attempt before any IO — the fault-injection seam used by tests.
template <typename Writer>
AtomicWriteResult atomic_write_file(const std::string& path, Writer&& writer,
                                    int retries = 3, int backoff_ms = 10,
                                    const std::function<bool()>& fail_hook = {}) {
  namespace fs = std::filesystem;
  AtomicWriteResult result;
  const std::string tmp = path + ".tmp";
  for (int attempt = 0; attempt <= retries; ++attempt) {
    if (attempt > 0 && backoff_ms > 0) {
      std::this_thread::sleep_for(
          std::chrono::milliseconds(static_cast<std::int64_t>(backoff_ms)
                                    << (attempt - 1)));
    }
    ++result.attempts;
    if (fail_hook && fail_hook()) {
      result.error = "injected IO failure";
      continue;
    }
    std::error_code ec;
    const fs::path parent = fs::path(path).parent_path();
    if (!parent.empty()) fs::create_directories(parent, ec);
    std::FILE* f = std::fopen(tmp.c_str(), "wb");
    if (f == nullptr) {
      result.error = "cannot open " + tmp;
      continue;
    }
    const bool wrote = writer(f);
    const bool flushed = std::fflush(f) == 0 && std::ferror(f) == 0;
    std::fclose(f);
    if (!wrote || !flushed) {
      result.error = "short write to " + tmp;
      fs::remove(tmp, ec);
      continue;
    }
    fs::rename(tmp, path, ec);
    if (ec) {
      result.error = "rename to " + path + " failed: " + ec.message();
      fs::remove(tmp, ec);
      continue;
    }
    result.ok = true;
    result.error.clear();
    return result;
  }
  return result;
}

}  // namespace pochoir::io
