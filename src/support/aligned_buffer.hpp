// Cache-line / page aligned storage for grid data.
//
// Pochoir owns the layout of its arrays (the paper's copy-in/copy-out
// rationale, §2); aligning the backing store to 64 bytes keeps grid rows on
// predictable cache-line boundaries and enables vectorized base cases.
#pragma once

#include <cstddef>
#include <cstdlib>
#include <new>
#include <utility>

#include "support/assertion.hpp"

namespace pochoir {

/// Owning, aligned, fixed-size buffer of trivially relocatable elements.
template <typename T>
class AlignedBuffer {
 public:
  static constexpr std::size_t kAlignment = 64;

  AlignedBuffer() = default;

  explicit AlignedBuffer(std::size_t count) : size_(count) {
    if (count == 0) return;
    const std::size_t bytes = round_up(count * sizeof(T));
    data_ = static_cast<T*>(::operator new(bytes, std::align_val_t(kAlignment)));
    for (std::size_t i = 0; i < count; ++i) new (data_ + i) T();
  }

  AlignedBuffer(const AlignedBuffer& other) : AlignedBuffer(other.size_) {
    for (std::size_t i = 0; i < size_; ++i) data_[i] = other.data_[i];
  }

  AlignedBuffer& operator=(const AlignedBuffer& other) {
    if (this != &other) {
      AlignedBuffer tmp(other);
      swap(tmp);
    }
    return *this;
  }

  AlignedBuffer(AlignedBuffer&& other) noexcept { swap(other); }

  AlignedBuffer& operator=(AlignedBuffer&& other) noexcept {
    swap(other);
    return *this;
  }

  ~AlignedBuffer() {
    if (data_ == nullptr) return;
    for (std::size_t i = 0; i < size_; ++i) data_[i].~T();
    ::operator delete(data_, std::align_val_t(kAlignment));
  }

  void swap(AlignedBuffer& other) noexcept {
    std::swap(data_, other.data_);
    std::swap(size_, other.size_);
  }

  [[nodiscard]] T* data() { return data_; }
  [[nodiscard]] const T* data() const { return data_; }
  [[nodiscard]] std::size_t size() const { return size_; }

  T& operator[](std::size_t i) {
    POCHOIR_DEBUG_ASSERT(i < size_);
    return data_[i];
  }
  const T& operator[](std::size_t i) const {
    POCHOIR_DEBUG_ASSERT(i < size_);
    return data_[i];
  }

 private:
  static std::size_t round_up(std::size_t bytes) {
    return (bytes + kAlignment - 1) / kAlignment * kAlignment;
  }

  T* data_ = nullptr;
  std::size_t size_ = 0;
};

}  // namespace pochoir
