// Lightweight assertion macros used throughout the library.
//
// POCHOIR_ASSERT is active in all build types for cheap invariants that guard
// algorithmic correctness (zoid well-definedness, index ranges on slow
// paths).  POCHOIR_DEBUG_ASSERT compiles away unless POCHOIR_DEBUG_CHECKS is
// defined and is used on hot paths (per-point accessor checks).
#pragma once

#include <cstdio>
#include <cstdlib>

namespace pochoir::detail {

[[noreturn]] inline void assert_fail(const char* expr, const char* file,
                                     int line, const char* msg) {
  std::fprintf(stderr, "pochoir: assertion failed: %s\n  at %s:%d\n  %s\n",
               expr, file, line, msg != nullptr ? msg : "");
  std::abort();
}

}  // namespace pochoir::detail

#define POCHOIR_ASSERT(expr)                                              \
  do {                                                                    \
    if (!(expr)) {                                                        \
      ::pochoir::detail::assert_fail(#expr, __FILE__, __LINE__, nullptr); \
    }                                                                     \
  } while (0)

#define POCHOIR_ASSERT_MSG(expr, msg)                                 \
  do {                                                                \
    if (!(expr)) {                                                    \
      ::pochoir::detail::assert_fail(#expr, __FILE__, __LINE__, msg); \
    }                                                                 \
  } while (0)

#if defined(POCHOIR_DEBUG_CHECKS)
#define POCHOIR_DEBUG_ASSERT(expr) POCHOIR_ASSERT(expr)
#else
#define POCHOIR_DEBUG_ASSERT(expr) \
  do {                             \
  } while (0)
#endif
