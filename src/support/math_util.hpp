// Small integer helpers shared by the geometry and core modules.
#pragma once

#include <cstdint>
#include <type_traits>

namespace pochoir {

/// Ceiling division for nonnegative numerator, positive denominator.
constexpr std::int64_t ceil_div(std::int64_t a, std::int64_t b) {
  return (a + b - 1) / b;
}

/// Floor division that is correct for negative numerators as well.
constexpr std::int64_t floor_div(std::int64_t a, std::int64_t b) {
  std::int64_t q = a / b;
  std::int64_t r = a % b;
  return (r != 0 && ((r < 0) != (b < 0))) ? q - 1 : q;
}

/// Mathematical (always nonnegative) modulus, the `mod` of Figure 6 of the
/// paper: mod(-1, 10) == 9.
constexpr std::int64_t mod_floor(std::int64_t a, std::int64_t b) {
  std::int64_t r = a % b;
  return r < 0 ? r + b : r;
}

/// Floor of log base 2; ilog2(1) == 0.  Undefined for x <= 0.
constexpr int ilog2(std::int64_t x) {
  int lg = -1;
  while (x > 0) {
    x >>= 1;
    ++lg;
  }
  return lg;
}

/// Integer power, used for the 3^k subzoid counts of a hyperspace cut.
constexpr std::int64_t ipow(std::int64_t base, int exp) {
  std::int64_t r = 1;
  for (int i = 0; i < exp; ++i) r *= base;
  return r;
}

/// True if x is a power of two (x > 0).
constexpr bool is_pow2(std::int64_t x) { return x > 0 && (x & (x - 1)) == 0; }

/// Smallest power of two >= x (x >= 1).
constexpr std::int64_t next_pow2(std::int64_t x) {
  std::int64_t p = 1;
  while (p < x) p <<= 1;
  return p;
}

}  // namespace pochoir
