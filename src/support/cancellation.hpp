// Cooperative cancellation for long-running walks.
//
// A CancelToken carries an explicit cancel flag and an optional deadline.
// The TRAP/STRAP walkers and the loops engine poll it at zoid / time-step
// granularity and unwind by simply declining further work; the supervised
// runner (resilience/supervisor.hpp) then restores the last slab-boundary
// snapshot so arrays are never observed mid-step.
//
// cancelled() is designed for hot-path polling: a relaxed atomic load, plus
// a clock read only every 256th poll per thread when a deadline is set.
// Boundary decisions (slab starts, final reports) use cancelled_now(),
// which always consults the clock.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>

namespace pochoir {

class CancelToken {
  using Clock = std::chrono::steady_clock;

 public:
  /// Requests cancellation; observed by the next poll on any thread.
  void cancel() noexcept { cancelled_.store(true, std::memory_order_relaxed); }

  /// Arms a deadline `delay` from now; polls past it behave like cancel().
  void set_deadline_after(std::chrono::nanoseconds delay) noexcept {
    deadline_ = Clock::now() + delay;
    has_deadline_.store(true, std::memory_order_release);
  }
  void set_deadline_after_ms(std::int64_t ms) noexcept {
    set_deadline_after(std::chrono::milliseconds(ms));
  }

  /// Clears both the flag and any armed deadline (token reuse).
  void reset() noexcept {
    cancelled_.store(false, std::memory_order_relaxed);
    deadline_hit_.store(false, std::memory_order_relaxed);
    has_deadline_.store(false, std::memory_order_relaxed);
  }

  /// Hot-path poll: cheap; the deadline clock is sampled 1-in-256.
  [[nodiscard]] bool cancelled() const noexcept {
    if (cancelled_.load(std::memory_order_relaxed)) return true;
    if (!has_deadline_.load(std::memory_order_acquire)) return false;
    thread_local std::uint32_t polls = 0;
    if ((++polls & 0xFFu) != 0) return false;
    return check_deadline();
  }

  /// Boundary poll: always consults the clock when a deadline is armed.
  [[nodiscard]] bool cancelled_now() const noexcept {
    if (cancelled_.load(std::memory_order_relaxed)) return true;
    if (!has_deadline_.load(std::memory_order_acquire)) return false;
    return check_deadline();
  }

  /// True when cancellation was caused by the deadline rather than an
  /// explicit cancel() (lets reports distinguish timeout from abort).
  [[nodiscard]] bool deadline_expired() const noexcept {
    return deadline_hit_.load(std::memory_order_relaxed);
  }

 private:
  bool check_deadline() const noexcept {
    if (Clock::now() < deadline_) return false;
    deadline_hit_.store(true, std::memory_order_relaxed);
    cancelled_.store(true, std::memory_order_relaxed);
    return true;
  }

  mutable std::atomic<bool> cancelled_{false};
  mutable std::atomic<bool> deadline_hit_{false};
  std::atomic<bool> has_deadline_{false};
  Clock::time_point deadline_{};
};

}  // namespace pochoir
