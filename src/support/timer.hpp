// Wall-clock timing used by the benchmark harnesses.
#pragma once

#include <chrono>

namespace pochoir {

/// Monotonic wall-clock stopwatch.
class Timer {
 public:
  Timer() : start_(Clock::now()) {}

  /// Restart the stopwatch.
  void reset() { start_ = Clock::now(); }

  /// Seconds elapsed since construction or the last reset().
  [[nodiscard]] double seconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  /// Milliseconds elapsed.
  [[nodiscard]] double millis() const { return seconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

/// Times a callable and returns elapsed seconds.
template <typename F>
double timed_seconds(F&& f) {
  Timer t;
  f();
  return t.seconds();
}

}  // namespace pochoir
