// Wall-clock timing used by the benchmark harnesses and the telemetry
// layer.  Everything is derived from one steady_clock-based now_ns() so a
// single report never mixes clock sources (bench seconds and trace span
// timestamps are directly comparable).
#pragma once

#include <chrono>
#include <cstdint>

namespace pochoir {

/// Monotonic nanoseconds since an arbitrary (per-process) epoch.  The one
/// time source shared by Timer and the trace/telemetry spans.
[[nodiscard]] inline std::uint64_t now_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

/// Monotonic wall-clock stopwatch.
class Timer {
 public:
  Timer() : start_ns_(now_ns()) {}

  /// Restart the stopwatch.
  void reset() { start_ns_ = now_ns(); }

  /// Seconds elapsed since construction or the last reset().
  [[nodiscard]] double seconds() const {
    return static_cast<double>(now_ns() - start_ns_) * 1e-9;
  }

  /// Milliseconds elapsed.
  [[nodiscard]] double millis() const { return seconds() * 1e3; }

 private:
  std::uint64_t start_ns_;
};

/// Times a callable and returns elapsed seconds.
template <typename F>
double timed_seconds(F&& f) {
  Timer t;
  f();
  return t.seconds();
}

}  // namespace pochoir
