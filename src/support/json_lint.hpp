// Minimal JSON syntax validator: a recursive-descent scanner that accepts
// exactly RFC 8259 documents and reports the first offending byte offset.
// No parse tree, no allocation proportional to input structure — it exists
// so CI and the tests can assert that every telemetry/trace/bench JSON the
// runtime emits is well-formed without pulling in a JSON library.
#pragma once

#include <cstddef>
#include <string>
#include <string_view>

namespace pochoir::json {

struct JsonLintResult {
  bool ok = false;
  std::size_t pos = 0;  ///< byte offset of the first error (0 if ok)
  std::string error;    ///< empty if ok
};

namespace detail {

inline constexpr int kMaxDepth = 256;

class Linter {
 public:
  explicit Linter(std::string_view text) : text_(text) {}

  JsonLintResult run() {
    skip_ws();
    if (!value(0)) return fail_result();
    skip_ws();
    if (pos_ != text_.size()) {
      set_error("trailing content after top-level value");
      return fail_result();
    }
    JsonLintResult r;
    r.ok = true;
    return r;
  }

 private:
  bool value(int depth) {
    if (depth > kMaxDepth) return set_error("nesting too deep");
    if (pos_ >= text_.size()) return set_error("unexpected end of input");
    switch (text_[pos_]) {
      case '{': return object(depth);
      case '[': return array(depth);
      case '"': return string();
      case 't': return literal("true");
      case 'f': return literal("false");
      case 'n': return literal("null");
      default: return number();
    }
  }

  bool object(int depth) {
    ++pos_;  // '{'
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      return true;
    }
    while (true) {
      skip_ws();
      if (peek() != '"') return set_error("expected string key");
      if (!string()) return false;
      skip_ws();
      if (peek() != ':') return set_error("expected ':' after key");
      ++pos_;
      skip_ws();
      if (!value(depth + 1)) return false;
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      if (peek() == '}') {
        ++pos_;
        return true;
      }
      return set_error("expected ',' or '}' in object");
    }
  }

  bool array(int depth) {
    ++pos_;  // '['
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      return true;
    }
    while (true) {
      skip_ws();
      if (!value(depth + 1)) return false;
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      if (peek() == ']') {
        ++pos_;
        return true;
      }
      return set_error("expected ',' or ']' in array");
    }
  }

  bool string() {
    ++pos_;  // '"'
    while (pos_ < text_.size()) {
      const unsigned char c = static_cast<unsigned char>(text_[pos_]);
      if (c == '"') {
        ++pos_;
        return true;
      }
      if (c == '\\') {
        ++pos_;
        if (pos_ >= text_.size()) return set_error("unterminated escape");
        const char e = text_[pos_];
        if (e == 'u') {
          for (int i = 0; i < 4; ++i) {
            ++pos_;
            if (pos_ >= text_.size() || !is_hex(text_[pos_])) {
              return set_error("invalid \\u escape");
            }
          }
        } else if (e != '"' && e != '\\' && e != '/' && e != 'b' && e != 'f' &&
                   e != 'n' && e != 'r' && e != 't') {
          return set_error("invalid escape character");
        }
        ++pos_;
        continue;
      }
      if (c < 0x20) return set_error("raw control character in string");
      ++pos_;
    }
    return set_error("unterminated string");
  }

  bool number() {
    const std::size_t start = pos_;
    if (peek() == '-') ++pos_;
    if (!is_digit(peek())) return set_error("invalid number");
    if (peek() == '0') {
      ++pos_;
    } else {
      while (is_digit(peek())) ++pos_;
    }
    if (peek() == '.') {
      ++pos_;
      if (!is_digit(peek())) return set_error("digit required after '.'");
      while (is_digit(peek())) ++pos_;
    }
    if (peek() == 'e' || peek() == 'E') {
      ++pos_;
      if (peek() == '+' || peek() == '-') ++pos_;
      if (!is_digit(peek())) return set_error("digit required in exponent");
      while (is_digit(peek())) ++pos_;
    }
    return pos_ > start;
  }

  bool literal(std::string_view word) {
    if (text_.substr(pos_, word.size()) != word) {
      return set_error("invalid literal");
    }
    pos_ += word.size();
    return true;
  }

  void skip_ws() {
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
      ++pos_;
    }
  }

  [[nodiscard]] char peek() const {
    return pos_ < text_.size() ? text_[pos_] : '\0';
  }

  static bool is_digit(char c) { return c >= '0' && c <= '9'; }
  static bool is_hex(char c) {
    return is_digit(c) || (c >= 'a' && c <= 'f') || (c >= 'A' && c <= 'F');
  }

  bool set_error(const char* what) {
    if (error_.empty()) {
      error_ = what;
      error_pos_ = pos_;
    }
    return false;
  }

  JsonLintResult fail_result() const {
    JsonLintResult r;
    r.ok = false;
    r.pos = error_pos_;
    r.error = error_.empty() ? "invalid JSON" : error_;
    return r;
  }

  std::string_view text_;
  std::size_t pos_ = 0;
  std::size_t error_pos_ = 0;
  std::string error_;
};

}  // namespace detail

/// Validates that `text` is one well-formed JSON document.
[[nodiscard]] inline JsonLintResult lint(std::string_view text) {
  return detail::Linter(text).run();
}

}  // namespace pochoir::json
