// Deterministic pseudo-random generation for workload initialization.
//
// Benchmarks and tests must be reproducible across runs and machines, so we
// use a fixed, fully specified generator (splitmix64 seeding a
// xoshiro256**) rather than std::random_device.
#pragma once

#include <cstdint>

namespace pochoir {

/// splitmix64: used to expand a user seed into generator state.
constexpr std::uint64_t splitmix64(std::uint64_t& state) {
  std::uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// xoshiro256** — small, fast, high-quality PRNG (public-domain algorithm).
class Rng {
 public:
  explicit constexpr Rng(std::uint64_t seed = 0x9e3779b9u) {
    std::uint64_t sm = seed;
    for (auto& word : s_) word = splitmix64(sm);
  }

  /// Next 64 random bits.
  constexpr std::uint64_t next_u64() {
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
  }

  /// Uniform double in [0, 1).
  constexpr double next_double() {
    return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in [lo, hi).
  constexpr double uniform(double lo, double hi) {
    return lo + (hi - lo) * next_double();
  }

  /// Uniform integer in [0, n); n must be positive.
  constexpr std::int64_t next_below(std::int64_t n) {
    return static_cast<std::int64_t>(next_u64() % static_cast<std::uint64_t>(n));
  }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }
  std::uint64_t s_[4] = {};
};

}  // namespace pochoir
