// Plain-text table printer used by the benchmark harnesses to emit the
// paper's tables and figure series in a uniform, diffable format.
#pragma once

#include <cstdio>
#include <string>
#include <vector>

namespace pochoir {

/// Accumulates rows of strings and prints them with aligned columns.
class Table {
 public:
  explicit Table(std::vector<std::string> header) : header_(std::move(header)) {}

  /// Append one row; missing cells render empty, extra cells are kept.
  void add_row(std::vector<std::string> row) { rows_.push_back(std::move(row)); }

  /// Render to stdout with a separator under the header.
  void print() const {
    std::vector<std::size_t> width(header_.size(), 0);
    auto widen = [&](const std::vector<std::string>& row) {
      if (row.size() > width.size()) width.resize(row.size(), 0);
      for (std::size_t i = 0; i < row.size(); ++i) {
        width[i] = std::max(width[i], row[i].size());
      }
    };
    widen(header_);
    for (const auto& row : rows_) widen(row);

    auto print_row = [&](const std::vector<std::string>& row) {
      for (std::size_t i = 0; i < width.size(); ++i) {
        const std::string& cell = i < row.size() ? row[i] : empty_;
        std::printf("%-*s%s", static_cast<int>(width[i]), cell.c_str(),
                    i + 1 < width.size() ? "  " : "\n");
      }
    };
    print_row(header_);
    std::size_t total = 0;
    for (std::size_t w : width) total += w + 2;
    std::printf("%s\n", std::string(total > 2 ? total - 2 : 0, '-').c_str());
    for (const auto& row : rows_) print_row(row);
  }

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
  std::string empty_;
};

/// printf-style helper returning std::string, for building table cells.
template <typename... Args>
std::string strf(const char* fmt, Args... args) {
  char buf[256];
  std::snprintf(buf, sizeof(buf), fmt, args...);
  return std::string(buf);
}

}  // namespace pochoir
