// Numerical health monitoring: per-slab NaN/Inf/divergence scans.
//
// An unstable scheme (or a flipped bit) produces NaN/Inf values that
// propagate silently through every later step; on a long campaign that
// means hours of garbage before anyone looks at the output.  The
// supervisor optionally sweeps every circular time level of every
// registered array after each slab and converts the first offending value
// into a structured RunReport error, rolling the arrays back to the last
// healthy slab boundary.
//
// Only arithmetic cell types are scanned; struct-valued cells (LBM, PSA)
// are skipped — the scan cannot know which members are meaningful.
#pragma once

#include <cmath>
#include <cstdint>
#include <limits>
#include <string>
#include <type_traits>

#include "core/array.hpp"

namespace pochoir::resilience {

struct HealthIssue {
  bool found = false;
  std::string message;
};

/// Scans the raw storage (all time levels) of one array.  `limit` bounds
/// |value|; use infinity to check only for NaN/Inf.
template <typename T, int D>
void scan_array(const Array<T, D>& a, double limit, int array_index,
                HealthIssue& out) {
  if (out.found) return;
  if constexpr (std::is_arithmetic_v<T>) {
    const T* data = a.data();
    const std::int64_t n = a.total_size();
    for (std::int64_t i = 0; i < n; ++i) {
      const double v = static_cast<double>(data[i]);
      const bool bad_fp = std::isnan(v) || std::isinf(v);
      if (bad_fp || std::fabs(v) > limit) {
        out.found = true;
        out.message = "array " + std::to_string(array_index) +
                      (bad_fp ? " holds non-finite value " : " diverged to ") +
                      std::to_string(v) + " at storage index " +
                      std::to_string(i) + " (time level " +
                      std::to_string(i / a.level_size()) + ")";
        return;
      }
    }
  } else {
    (void)a;
    (void)limit;
    (void)array_index;
  }
}

}  // namespace pochoir::resilience
