// Slab checkpoints: versioned, CRC32C-checksummed snapshots of all
// registered arrays, written atomically so a crash at any instant leaves a
// loadable generation on disk.
//
// On-disk format (native endianness, version 1):
//
//   u32 magic "HCOP"        u32 version
//   u64 generation          i64 steps_done        i64 steps_target
//   u32 array_count
//   per array:  u32 dims    u32 elem_size
//               i64 levels  i64 level_size
//               i64 extents[dims]
//               u64 payload_bytes
//   payloads, concatenated in array order
//   u32 crc32c over everything above
//
// Files are named `<base>.<generation>.ckpt`; the writer goes through
// io::atomic_write_file (temp + rename + bounded retry/backoff) and prunes
// old generations after a successful write.  The loader walks generations
// newest-first and skips any snapshot whose magic, structure, length, or
// checksum does not verify — a flipped byte or truncated file silently
// falls back to the previous generation.
#pragma once

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <functional>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "support/atomic_file.hpp"

namespace pochoir::resilience {

// --- CRC32C (Castagnoli), table-driven software implementation ------------

namespace detail {

inline const std::uint32_t* crc32c_table() {
  static const auto table = [] {
    static std::uint32_t t[256];
    constexpr std::uint32_t kPoly = 0x82F63B78u;  // reflected Castagnoli
    for (std::uint32_t i = 0; i < 256; ++i) {
      std::uint32_t crc = i;
      for (int bit = 0; bit < 8; ++bit) {
        crc = (crc >> 1) ^ ((crc & 1u) != 0 ? kPoly : 0u);
      }
      t[i] = crc;
    }
    return t;
  }();
  return table;
}

}  // namespace detail

/// Incremental CRC32C; start with crc = 0 and chain over buffers.
inline std::uint32_t crc32c(std::uint32_t crc, const void* data,
                            std::size_t bytes) {
  const auto* p = static_cast<const unsigned char*>(data);
  const std::uint32_t* table = detail::crc32c_table();
  crc = ~crc;
  for (std::size_t i = 0; i < bytes; ++i) {
    crc = (crc >> 8) ^ table[(crc ^ p[i]) & 0xFFu];
  }
  return ~crc;
}

// --- checkpoint data model -------------------------------------------------

constexpr std::uint32_t kCheckpointMagic = 0x504F4348u;  // "HCOP" on disk
constexpr std::uint32_t kCheckpointVersion = 1;

struct CheckpointMeta {
  std::uint64_t generation = 0;
  std::int64_t steps_done = 0;    ///< steps completed when the snapshot was taken
  std::int64_t steps_target = 0;  ///< total steps the interrupted run aimed for
};

/// Writer-side view of one array's storage (all circular time levels, raw).
struct ArraySnapshot {
  std::uint32_t dims = 0;
  std::uint32_t elem_size = 0;
  std::int64_t levels = 0;
  std::int64_t level_size = 0;
  std::vector<std::int64_t> extents;
  const unsigned char* data = nullptr;
  std::uint64_t bytes = 0;
};

/// Loader-side copy of one array's storage plus its layout metadata.
struct LoadedArray {
  std::uint32_t dims = 0;
  std::uint32_t elem_size = 0;
  std::int64_t levels = 0;
  std::int64_t level_size = 0;
  std::vector<std::int64_t> extents;
  std::vector<unsigned char> bytes;
};

struct LoadedCheckpoint {
  CheckpointMeta meta;
  std::vector<LoadedArray> arrays;
  std::string file;  ///< the generation file the data came from
};

// --- file naming -----------------------------------------------------------

inline std::string checkpoint_file_name(const std::string& base,
                                        std::uint64_t generation) {
  char buf[32];
  std::snprintf(buf, sizeof buf, ".%08llu.ckpt",
                static_cast<unsigned long long>(generation));
  return base + buf;
}

/// Existing generations for `base`, sorted ascending.
inline std::vector<std::pair<std::uint64_t, std::string>> list_checkpoints(
    const std::string& base) {
  namespace fs = std::filesystem;
  std::vector<std::pair<std::uint64_t, std::string>> found;
  const fs::path base_path(base);
  const fs::path dir =
      base_path.parent_path().empty() ? fs::path(".") : base_path.parent_path();
  const std::string stem = base_path.filename().string() + ".";
  std::error_code ec;
  for (fs::directory_iterator it(dir, ec), end; !ec && it != end;
       it.increment(ec)) {
    const std::string name = it->path().filename().string();
    if (name.size() <= stem.size() + 5 || name.compare(0, stem.size(), stem) != 0 ||
        name.compare(name.size() - 5, 5, ".ckpt") != 0) {
      continue;
    }
    const std::string digits = name.substr(stem.size(),
                                           name.size() - stem.size() - 5);
    if (digits.empty() ||
        digits.find_first_not_of("0123456789") != std::string::npos) {
      continue;
    }
    found.emplace_back(std::strtoull(digits.c_str(), nullptr, 10),
                       it->path().string());
  }
  std::sort(found.begin(), found.end());
  return found;
}

/// First unused generation number for `base` (1 on a fresh directory).
inline std::uint64_t next_generation(const std::string& base) {
  const auto existing = list_checkpoints(base);
  return existing.empty() ? 1 : existing.back().first + 1;
}

/// Deletes generations older than `newest - keep + 1`.
inline void prune_checkpoints(const std::string& base, std::uint64_t newest,
                              int keep) {
  if (keep < 1) keep = 1;
  std::error_code ec;
  for (const auto& [gen, path] : list_checkpoints(base)) {
    if (gen + static_cast<std::uint64_t>(keep) <= newest) {
      std::filesystem::remove(path, ec);
    }
  }
}

// --- writing ---------------------------------------------------------------

namespace detail {

template <typename T>
void append_pod(std::vector<unsigned char>& out, const T& v) {
  const auto* p = reinterpret_cast<const unsigned char*>(&v);
  out.insert(out.end(), p, p + sizeof(T));
}

inline std::vector<unsigned char> encode_header(
    const CheckpointMeta& meta, const std::vector<ArraySnapshot>& arrays) {
  std::vector<unsigned char> header;
  append_pod(header, kCheckpointMagic);
  append_pod(header, kCheckpointVersion);
  append_pod(header, meta.generation);
  append_pod(header, meta.steps_done);
  append_pod(header, meta.steps_target);
  append_pod(header, static_cast<std::uint32_t>(arrays.size()));
  for (const ArraySnapshot& a : arrays) {
    append_pod(header, a.dims);
    append_pod(header, a.elem_size);
    append_pod(header, a.levels);
    append_pod(header, a.level_size);
    for (std::int64_t e : a.extents) append_pod(header, e);
    append_pod(header, a.bytes);
  }
  return header;
}

}  // namespace detail

struct WriteCheckpointResult {
  bool ok = false;
  int attempts = 0;
  std::string file;
  std::string error;
};

/// Writes one checkpoint generation.  `io_fault`, when set and returning
/// true, fails an attempt before any IO (FaultPlan seam).  On success the
/// oldest generations beyond `keep_generations` are pruned.
inline WriteCheckpointResult write_checkpoint(
    const std::string& base, const CheckpointMeta& meta,
    const std::vector<ArraySnapshot>& arrays, int keep_generations = 2,
    int io_retries = 3, int io_backoff_ms = 10,
    const std::function<bool()>& io_fault = {}) {
  WriteCheckpointResult result;
  result.file = checkpoint_file_name(base, meta.generation);
  const std::vector<unsigned char> header = detail::encode_header(meta, arrays);
  const auto write_payload = [&](std::FILE* f) {
    std::uint32_t crc = crc32c(0, header.data(), header.size());
    if (std::fwrite(header.data(), 1, header.size(), f) != header.size()) {
      return false;
    }
    for (const ArraySnapshot& a : arrays) {
      crc = crc32c(crc, a.data, a.bytes);
      if (std::fwrite(a.data, 1, a.bytes, f) != a.bytes) return false;
    }
    return std::fwrite(&crc, 1, sizeof crc, f) == sizeof crc;
  };
  const io::AtomicWriteResult io = io::atomic_write_file(
      result.file, write_payload, io_retries, io_backoff_ms, io_fault);
  result.ok = io.ok;
  result.attempts = io.attempts;
  result.error = io.error;
  if (result.ok) prune_checkpoints(base, meta.generation, keep_generations);
  return result;
}

// --- loading ---------------------------------------------------------------

namespace detail {

class ByteReader {
 public:
  ByteReader(const unsigned char* data, std::size_t size)
      : data_(data), size_(size) {}

  template <typename T>
  bool read(T& out) {
    if (pos_ + sizeof(T) > size_) return false;
    std::memcpy(&out, data_ + pos_, sizeof(T));
    pos_ += sizeof(T);
    return true;
  }

  bool read_bytes(std::vector<unsigned char>& out, std::uint64_t n) {
    if (pos_ + n > size_) return false;
    out.assign(data_ + pos_, data_ + pos_ + n);
    pos_ += n;
    return true;
  }

  [[nodiscard]] std::size_t pos() const { return pos_; }

 private:
  const unsigned char* data_;
  std::size_t size_;
  std::size_t pos_ = 0;
};

}  // namespace detail

/// Parses and verifies one checkpoint file; nullopt on any structural or
/// checksum mismatch (the caller falls back to an older generation).
inline std::optional<LoadedCheckpoint> load_checkpoint_file(
    const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return std::nullopt;
  std::vector<unsigned char> raw;
  {
    std::error_code ec;
    const auto size = std::filesystem::file_size(path, ec);
    if (ec) {
      std::fclose(f);
      return std::nullopt;
    }
    raw.resize(static_cast<std::size_t>(size));
    const std::size_t got = raw.empty() ? 0 : std::fread(raw.data(), 1, raw.size(), f);
    std::fclose(f);
    if (got != raw.size()) return std::nullopt;
  }
  if (raw.size() < sizeof(std::uint32_t) * 3) return std::nullopt;
  const std::size_t body = raw.size() - sizeof(std::uint32_t);
  std::uint32_t stored_crc = 0;
  std::memcpy(&stored_crc, raw.data() + body, sizeof stored_crc);
  if (crc32c(0, raw.data(), body) != stored_crc) return std::nullopt;

  detail::ByteReader r(raw.data(), body);
  std::uint32_t magic = 0, version = 0, array_count = 0;
  LoadedCheckpoint out;
  if (!r.read(magic) || magic != kCheckpointMagic) return std::nullopt;
  if (!r.read(version) || version != kCheckpointVersion) return std::nullopt;
  if (!r.read(out.meta.generation) || !r.read(out.meta.steps_done) ||
      !r.read(out.meta.steps_target) || !r.read(array_count)) {
    return std::nullopt;
  }
  if (array_count > 4096) return std::nullopt;
  std::vector<std::uint64_t> payload_bytes;
  for (std::uint32_t i = 0; i < array_count; ++i) {
    LoadedArray a;
    if (!r.read(a.dims) || !r.read(a.elem_size) || !r.read(a.levels) ||
        !r.read(a.level_size) || a.dims > 16) {
      return std::nullopt;
    }
    a.extents.resize(a.dims);
    for (auto& e : a.extents) {
      if (!r.read(e)) return std::nullopt;
    }
    std::uint64_t bytes = 0;
    if (!r.read(bytes)) return std::nullopt;
    payload_bytes.push_back(bytes);
    out.arrays.push_back(std::move(a));
  }
  for (std::uint32_t i = 0; i < array_count; ++i) {
    if (!r.read_bytes(out.arrays[i].bytes, payload_bytes[i])) {
      return std::nullopt;
    }
  }
  if (r.pos() != body) return std::nullopt;  // trailing garbage
  out.file = path;
  return out;
}

/// Newest generation that verifies; corrupt or truncated snapshots are
/// skipped in favour of older ones.
inline std::optional<LoadedCheckpoint> load_latest_checkpoint(
    const std::string& base) {
  auto generations = list_checkpoints(base);
  for (auto it = generations.rbegin(); it != generations.rend(); ++it) {
    if (auto loaded = load_checkpoint_file(it->second)) return loaded;
  }
  return std::nullopt;
}

}  // namespace pochoir::resilience
