// Deterministic fault injection for the supervised execution layer.
//
// A FaultPlan describes, up front and reproducibly, every failure a test
// wants the supervisor to survive: checkpoint-write IO errors, a NaN
// planted at a chosen (t, x) site, a simulated task failure inside the
// parallel walk, a cooperative cancellation fired mid-slab, and a
// simulated process kill after a chosen slab.  The supervisor arms the
// plan at each slab boundary (begin_slab); the kernel hook and the IO
// seam consume armed faults exactly once, so a degraded retry of the same
// slab does not re-fail.
//
// The optional seed drives probabilistic IO failures for fuzz tests; all
// other knobs are explicit sites so every recovery path can be pinned.
#pragma once

#include <atomic>
#include <cstdint>

#include "support/cancellation.hpp"
#include "support/error.hpp"
#include "support/rng.hpp"

namespace pochoir::resilience {

struct FaultPlan {
  // --- configuration (set once, before the run) ---------------------------

  /// Seed for probabilistic faults; 0 keeps them off unless a probability
  /// is set explicitly.
  std::uint64_t seed = 0;

  /// Fail the first N checkpoint write *attempts* (each retry consumes one).
  int checkpoint_io_failures = 0;
  /// Additionally fail each attempt with this probability, drawn from `seed`.
  double checkpoint_io_failure_prob = 0.0;

  /// After the slab with this index completes, overwrite one element of the
  /// first registered array (flat storage index `poison_flat_index`) with a
  /// quiet NaN — silent corruption for the health monitor to catch.
  std::int64_t poison_after_slab = -1;
  std::int64_t poison_flat_index = 0;

  /// Throw a pochoir::Error from the kernel hook during this slab's first
  /// attempt (exercises abort propagation through the scheduler and the
  /// serial-degradation retry).
  std::int64_t fail_task_at_slab = -1;

  /// Fire CancelToken::cancel() from the kernel hook during this slab,
  /// after `cancel_after_calls` kernel invocations (mid-slab unwind).
  std::int64_t cancel_at_slab = -1;
  std::int64_t cancel_after_calls = 0;

  /// Stop supervising after this slab's checkpoint is written, as if the
  /// process had died (the round-trip tests resume() from here).
  std::int64_t kill_after_slab = -1;

  // --- runtime interface (supervisor / IO seam) ---------------------------

  [[nodiscard]] bool wants_kernel_hook() const {
    return fail_task_at_slab >= 0 || cancel_at_slab >= 0;
  }

  /// Arms per-slab faults; called by the supervisor before each attempt.
  /// `retry` suppresses single-shot faults so a degraded retry can succeed.
  void begin_slab(std::int64_t slab, CancelToken* token, bool retry) {
    token_ = token;
    kernel_calls_.store(0, std::memory_order_relaxed);
    task_failure_armed_.store(!retry && slab == fail_task_at_slab,
                              std::memory_order_relaxed);
    cancel_armed_.store(!retry && slab == cancel_at_slab && token != nullptr,
                        std::memory_order_relaxed);
  }

  /// Invoked per kernel call when the plan wants a kernel hook; throws the
  /// armed task failure, fires the armed cancellation.
  void on_kernel_call() {
    if (task_failure_armed_.load(std::memory_order_relaxed) &&
        task_failure_armed_.exchange(false, std::memory_order_relaxed)) {
      throw Error("fault injection: simulated task failure");
    }
    if (cancel_armed_.load(std::memory_order_relaxed)) {
      const std::int64_t n =
          kernel_calls_.fetch_add(1, std::memory_order_relaxed);
      if (n >= cancel_after_calls &&
          cancel_armed_.exchange(false, std::memory_order_relaxed)) {
        token_->cancel();
      }
    }
  }

  /// IO seam: true fails the current checkpoint write attempt.
  bool take_io_failure() {
    int budget = io_budget_.load(std::memory_order_relaxed);
    while (budget < checkpoint_io_failures) {
      if (io_budget_.compare_exchange_weak(budget, budget + 1,
                                           std::memory_order_relaxed)) {
        return true;
      }
    }
    if (checkpoint_io_failure_prob > 0.0) {
      std::uint64_t s = io_rng_state_.fetch_add(1, std::memory_order_relaxed);
      Rng rng(seed ^ (s * 0x9E3779B97F4A7C15ull));
      return rng.uniform(0.0, 1.0) < checkpoint_io_failure_prob;
    }
    return false;
  }

 private:
  CancelToken* token_ = nullptr;
  std::atomic<std::int64_t> kernel_calls_{0};
  std::atomic<bool> task_failure_armed_{false};
  std::atomic<bool> cancel_armed_{false};
  std::atomic<int> io_budget_{0};
  std::atomic<std::uint64_t> io_rng_state_{0};
};

}  // namespace pochoir::resilience
