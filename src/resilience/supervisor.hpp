// Supervised, slab-based execution: the control loop behind
// Stencil::run_supervised / Stencil::resume.
//
// The requested T steps are split into time slabs.  After each slab the
// supervisor optionally (a) applies planted faults, (b) scans numerical
// health, (c) captures an in-memory restore point, and (d) writes a
// checksummed on-disk checkpoint generation.  Failures never abort the
// process:
//
//   - a slab that throws under the parallel scheduler is rolled back and
//     retried on the serial loops engine (graceful degradation) before the
//     run gives up with RunStatus::kTaskFailure;
//   - cancellation or a deadline observed mid-slab rolls back to the slab
//     boundary, so arrays are always left in a consistent state;
//   - a failed health scan rolls back to the last healthy boundary and
//     reports kNumericalError instead of streaming corrupt data;
//   - checkpoint IO errors are retried with backoff and, if persistent,
//     recorded in the report while the computation continues.
//
// The loop is written against six capability callbacks so it stays
// independent of the Stencil template; core/stencil.hpp provides them.
#pragma once

#include <cstdint>
#include <limits>
#include <string>
#include <utility>

#include "core/options.hpp"
#include "resilience/fault_injection.hpp"
#include "support/cancellation.hpp"
#include "support/timer.hpp"
#include "telemetry/trace.hpp"

namespace pochoir::resilience {

enum class RunStatus {
  kOk,                ///< all requested steps completed
  kCancelled,         ///< CancelToken fired; stopped at a slab boundary
  kDeadlineExceeded,  ///< deadline passed; stopped at a slab boundary
  kNumericalError,    ///< health scan found NaN/Inf/divergence
  kTaskFailure,       ///< a slab threw, and the serial retry did not save it
  kCheckpointError,   ///< resume() found no usable checkpoint
  kSimulatedCrash,    ///< FaultPlan::kill_after_slab stopped the run
};

inline const char* to_string(RunStatus s) {
  switch (s) {
    case RunStatus::kOk: return "ok";
    case RunStatus::kCancelled: return "cancelled";
    case RunStatus::kDeadlineExceeded: return "deadline-exceeded";
    case RunStatus::kNumericalError: return "numerical-error";
    case RunStatus::kTaskFailure: return "task-failure";
    case RunStatus::kCheckpointError: return "checkpoint-error";
    case RunStatus::kSimulatedCrash: return "simulated-crash";
  }
  return "unknown";
}

/// Structured outcome of a supervised run.  steps_completed counts whole
/// slabs: on any non-Ok status the arrays hold exactly the state after
/// steps_completed steps (of this call), never a mid-step mixture.
struct RunReport {
  RunStatus status = RunStatus::kOk;
  std::int64_t steps_requested = 0;
  std::int64_t steps_completed = 0;
  std::int64_t slabs_completed = 0;
  std::int64_t checkpoints_written = 0;
  std::int64_t checkpoint_io_failures = 0;  ///< failed write attempts (retried)
  std::int64_t serial_retries = 0;
  double slab_seconds = 0.0;        ///< wall time inside run_slab (incl. retries)
  double checkpoint_seconds = 0.0;  ///< wall time writing on-disk checkpoints
  std::int64_t checkpoint_bytes = 0;  ///< payload bytes of successful checkpoints
  bool degraded = false;  ///< at least one slab ran on the serial fallback
  bool resumed = false;   ///< this run started from an on-disk checkpoint
  std::string message;

  [[nodiscard]] bool ok() const { return status == RunStatus::kOk; }
};

struct SupervisorOptions {
  /// Steps per slab; 0 runs the whole request as one slab (no mid-run
  /// checkpoints, near-zero overhead).
  std::int64_t slab_steps = 0;

  /// Base path for on-disk checkpoints (`<path>.<gen>.ckpt`); empty
  /// disables disk snapshots.
  std::string checkpoint_path;
  int keep_generations = 2;
  int io_retries = 3;
  int io_retry_backoff_ms = 10;

  /// Post-slab NaN/Inf scan; |value| > divergence_limit also fails.
  bool health_check = false;
  double divergence_limit = std::numeric_limits<double>::infinity();

  /// Retry a failed slab on the serial loops engine before giving up.
  bool degrade_to_serial = true;

  Algorithm algorithm = Algorithm::kTrap;
  bool parallel = true;

  /// External cancellation; may be null.  A deadline (>= 0, milliseconds
  /// from run start) is armed on this token, or on an internal one.
  CancelToken* cancel = nullptr;
  std::int64_t deadline_ms = -1;

  FaultPlan* faults = nullptr;
};

/// Runs `steps` in slabs.  Callbacks:
///   run_slab(n, serial)   execute n steps (serial=true forces the loops
///                         engine on the calling thread); throws on failure
///   capture()             record an in-memory restore point
///   rollback()            restore arrays + step counter to the last capture
///   health()              "" when healthy, else a description
///   apply_faults(slab)    plant post-slab faults from the FaultPlan
///   write_ckpt(report)    write one checkpoint generation, update counters
template <typename RunSlab, typename Capture, typename Rollback,
          typename Health, typename ApplyFaults, typename WriteCkpt>
RunReport supervise(const SupervisorOptions& opts, std::int64_t steps,
                    CancelToken* token, RunSlab&& run_slab, Capture&& capture,
                    Rollback&& rollback, Health&& health,
                    ApplyFaults&& apply_faults, WriteCkpt&& write_ckpt) {
  RunReport rep;
  rep.steps_requested = steps;
  const std::int64_t slab =
      opts.slab_steps > 0 && opts.slab_steps < steps ? opts.slab_steps : steps;
  // Restore points are captured only when something can need one; a plain
  // supervised run (no slabs, no cancellation, no faults, no health scan)
  // must stay within noise of Stencil::run.
  const bool protect = opts.slab_steps > 0 || token != nullptr ||
                       opts.faults != nullptr || opts.health_check;
  if (protect) capture();

  std::int64_t done = 0;
  std::int64_t slab_index = 0;
  while (done < steps) {
    if (token != nullptr && token->cancelled_now()) {
      rep.status = token->deadline_expired() ? RunStatus::kDeadlineExceeded
                                             : RunStatus::kCancelled;
      rep.message = "stopped at slab boundary";
      break;
    }
    const std::int64_t this_slab = slab < steps - done ? slab : steps - done;
    if (opts.faults != nullptr) {
      opts.faults->begin_slab(slab_index, token, /*retry=*/false);
    }
    bool slab_ok = false;
    Timer slab_timer;
    try {
      trace::Span slab_span("slab", slab_index);
      run_slab(this_slab, /*serial=*/false);
      slab_ok = true;
    } catch (const std::exception& e) {
      if (protect && opts.degrade_to_serial) {
        rollback();
        rep.degraded = true;
        ++rep.serial_retries;
        if (opts.faults != nullptr) {
          opts.faults->begin_slab(slab_index, token, /*retry=*/true);
        }
        try {
          trace::Span retry_span("degraded_retry", slab_index);
          run_slab(this_slab, /*serial=*/true);
          slab_ok = true;
        } catch (const std::exception& e2) {
          rollback();
          rep.status = RunStatus::kTaskFailure;
          rep.message = std::string("slab failed after serial retry: ") +
                        e2.what();
        }
      } else {
        if (protect) rollback();
        rep.status = RunStatus::kTaskFailure;
        rep.message = protect
                          ? std::string(e.what())
                          : std::string(e.what()) +
                                " (no restore point; arrays may be mid-step)";
      }
    }
    rep.slab_seconds += slab_timer.seconds();
    if (!slab_ok) break;
    if (token != nullptr && token->cancelled_now()) {
      // The walkers unwound mid-slab; the boundary snapshot is the last
      // consistent state.
      rollback();
      rep.status = token->deadline_expired() ? RunStatus::kDeadlineExceeded
                                             : RunStatus::kCancelled;
      rep.message = "cancelled mid-slab; rolled back to slab boundary";
      break;
    }
    if (opts.faults != nullptr) apply_faults(slab_index);
    if (opts.health_check) {
      trace::Span health_span("health_scan", slab_index);
      const std::string issue = health();
      if (!issue.empty()) {
        rollback();
        rep.status = RunStatus::kNumericalError;
        rep.message = issue;
        break;
      }
    }
    done += this_slab;
    ++slab_index;
    rep.slabs_completed = slab_index;
    rep.steps_completed = done;
    if (protect && done < steps) capture();
    if (!opts.checkpoint_path.empty()) write_ckpt(rep);
    if (opts.faults != nullptr && opts.faults->kill_after_slab >= 0 &&
        slab_index - 1 == opts.faults->kill_after_slab && done < steps) {
      rep.status = RunStatus::kSimulatedCrash;
      rep.message = "fault injection: simulated crash after slab " +
                    std::to_string(slab_index - 1);
      break;
    }
  }
  return rep;
}

}  // namespace pochoir::resilience
