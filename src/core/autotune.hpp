// ISAT-style coarsening autotuner (§4).
//
// The paper integrates the Intel Software Autotuning Tool to search for the
// optimal base-case size, noting that heuristics are used by default
// because full autotuning "can take hours".  This is the same idea at
// library scale: a grid search over (time, space) thresholds that times a
// caller-provided trial run and returns the fastest options.
#pragma once

#include <cstdint>
#include <vector>

#include "core/options.hpp"
#include "support/assertion.hpp"
#include "telemetry/trace.hpp"

namespace pochoir {

template <int D>
struct AutotuneSample {
  Options<D> options;
  double seconds = 0;
};

template <int D>
struct AutotuneResult {
  Options<D> best;
  double best_seconds = 0;
  std::vector<AutotuneSample<D>> samples;
};

/// Grid-searches coarsening thresholds.  `run_and_time(options)` must run a
/// representative slice of the real computation and return elapsed seconds.
/// When `protect_unit_stride` is set (the paper's >= 3D heuristic), the
/// unit-stride dimension is never cut regardless of the candidate width.
template <int D, typename RunFn>
AutotuneResult<D> autotune_coarsening(
    RunFn&& run_and_time, const std::vector<std::int64_t>& dt_candidates,
    const std::vector<std::int64_t>& dx_candidates,
    bool protect_unit_stride = (D >= 3)) {
  POCHOIR_ASSERT(!dt_candidates.empty() && !dx_candidates.empty());
  AutotuneResult<D> result;
  bool first = true;
  std::int64_t trial_index = 0;
  for (const std::int64_t dt : dt_candidates) {
    for (const std::int64_t dx : dx_candidates) {
      Options<D> opts;
      opts.dt_threshold = dt;
      opts.dx_threshold.fill(dx);
      if (protect_unit_stride) {
        opts.dx_threshold[D - 1] = Options<D>::kNeverCut;
      }
      // Each candidate shows up as one span in a POCHOIR_TRACE capture, so
      // the search itself is inspectable in Perfetto.
      trace::Span span("autotune_trial", trial_index++);
      const double secs = run_and_time(opts);
      result.samples.push_back({opts, secs});
      if (first || secs < result.best_seconds) {
        result.best = opts;
        result.best_seconds = secs;
        first = false;
      }
    }
  }
  return result;
}

}  // namespace pochoir
