// Boundary-condition library — §2 and §4 of the paper.
//
// Pochoir unifies periodic and nonperiodic stencils in one algorithm: the
// walker never special-cases the grid edge; instead, every off-domain read
// (which only the boundary clone can make) is routed to the array's
// registered boundary function.  This header provides the conditions used
// in the paper — periodic wrapping (Figure 6), constant and time-varying
// Dirichlet (Figure 11a), zero-derivative Neumann via clamping
// (Figure 11b) — plus per-dimension mixtures such as a cylinder.
#pragma once

#include <array>
#include <cstdint>

#include "core/array.hpp"
#include "support/math_util.hpp"

namespace pochoir {

/// Kind of condition applied along one dimension by mixed_boundary().
enum class BoundaryKind {
  kPeriodic,  ///< wrap modulo the extent
  kDirichlet, ///< constant value outside the domain
  kNeumann,   ///< zero derivative: clamp to the nearest edge point
};

/// Periodic wrap-around in every dimension (Figure 6's heat_bv).
template <typename T, int D>
BoundaryFn<T, D> periodic_boundary() {
  return [](const Array<T, D>& a, std::int64_t t,
            const std::array<std::int64_t, D>& idx) -> T {
    std::array<std::int64_t, D> wrapped;
    for (int i = 0; i < D; ++i) wrapped[i] = mod_floor(idx[i], a.extent(i));
    return a.at(t, wrapped);
  };
}

/// Constant Dirichlet condition: off-domain points hold `value`.
template <typename T, int D>
BoundaryFn<T, D> dirichlet_boundary(T value) {
  return [value](const Array<T, D>&, std::int64_t,
                 const std::array<std::int64_t, D>&) -> T { return value; };
}

/// Time-varying Dirichlet condition (Figure 11(a): `return 100 + 0.2*t;`).
/// `fn(t, idx)` computes the boundary value.
template <typename T, int D, typename F>
BoundaryFn<T, D> dirichlet_boundary_fn(F fn) {
  return [fn](const Array<T, D>&, std::int64_t t,
              const std::array<std::int64_t, D>& idx) -> T {
    return fn(t, idx);
  };
}

/// Zero-derivative Neumann condition: clamp coordinates to the domain edge
/// (Figure 11(b)).
template <typename T, int D>
BoundaryFn<T, D> neumann_boundary() {
  return [](const Array<T, D>& a, std::int64_t t,
            const std::array<std::int64_t, D>& idx) -> T {
    std::array<std::int64_t, D> clamped;
    for (int i = 0; i < D; ++i) {
      std::int64_t v = idx[i];
      if (v < 0) v = 0;
      if (v >= a.extent(i)) v = a.extent(i) - 1;
      clamped[i] = v;
    }
    return a.at(t, clamped);
  };
}

/// Per-dimension mixture, e.g. a 2D cylinder = {kPeriodic, kDirichlet}.
/// `dirichlet_value` is used for dimensions of kind kDirichlet.
template <typename T, int D>
BoundaryFn<T, D> mixed_boundary(std::array<BoundaryKind, D> kinds,
                                T dirichlet_value = T{}) {
  return [kinds, dirichlet_value](const Array<T, D>& a, std::int64_t t,
                                  const std::array<std::int64_t, D>& idx) -> T {
    std::array<std::int64_t, D> mapped;
    for (int i = 0; i < D; ++i) {
      std::int64_t v = idx[i];
      const std::int64_t n = a.extent(i);
      if (v >= 0 && v < n) {
        mapped[i] = v;
        continue;
      }
      switch (kinds[static_cast<std::size_t>(i)]) {
        case BoundaryKind::kPeriodic:
          mapped[i] = mod_floor(v, n);
          break;
        case BoundaryKind::kNeumann:
          mapped[i] = v < 0 ? 0 : n - 1;
          break;
        case BoundaryKind::kDirichlet:
          return dirichlet_value;
      }
    }
    return a.at(t, mapped);
  };
}

/// Zero-valued Dirichlet shorthand.
template <typename T, int D>
BoundaryFn<T, D> zero_boundary() {
  return dirichlet_boundary<T, D>(T{});
}

}  // namespace pochoir
