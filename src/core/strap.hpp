// STRAP — Frigo & Strumpen's parallel trapezoidal decomposition with
// *serial* space cuts (§3).
//
// STRAP applies the same trisection as TRAP but to one dimension per
// recursion step: the two black subzoids run in parallel, with a full
// synchronization point before (inverted) or after (upright) the gray
// subzoid.  A sequence of k space cuts therefore costs 2k parallel steps
// versus TRAP's k+1, which is the whole asymptotic difference analyzed in
// Theorems 3 and 5.  Both algorithms perform identical time cuts, hence
// identical cache behaviour.
//
// Like TrapWalker, the recursion is allocation-free: the DimCut pieces live
// in the walker's frame and parallel forks use stack-resident tasks
// (rt::parallel_invoke), so no recursion node touches the heap.
#pragma once

#include <cstdint>
#include <utility>

#include "core/walk_context.hpp"
#include "geometry/cuts.hpp"
#include "geometry/zoid.hpp"
#include "runtime/parallel.hpp"
#include "telemetry/trace.hpp"

namespace pochoir {

template <int D, typename Policy, typename InteriorBase, typename BoundaryBase>
class StrapWalker {
 public:
  StrapWalker(const WalkContext<D>& ctx, const Policy& policy,
              InteriorBase& interior_base, BoundaryBase& boundary_base)
      : ctx_(ctx),
        policy_(policy),
        interior_base_(interior_base),
        boundary_base_(boundary_base) {}

  void walk(const Zoid<D>& z) {
    if (z.height() < 1) return;
    walk_impl(z, /*interior=*/false, /*depth=*/0);
  }

 private:
  void walk_impl(const Zoid<D>& virtual_z, bool interior, int depth) {
    // Same zoid-granularity cancellation poll as TrapWalker.
    if (ctx_.should_stop()) return;
    const Zoid<D> z = interior ? virtual_z : ctx_.normalize(virtual_z);
    if (!interior) interior = ctx_.is_interior(z);
    trace::Span span(depth <= ctx_.trace_depth ? "zoid" : nullptr, depth);

    if (auto cut = plan_first_cut(z, ctx_.sigma, ctx_.dx_threshold, ctx_.grid)) {
      if (ctx_.stats != nullptr) ctx_.stats->on_space_cut();
      const int dim = cut->first;
      const DimCut& c = cut->second;
      if (c.count == 2 && c.seam) {
        // Torus seam cut: the black ring strictly precedes the seam piece.
        walk_impl(with_piece(z, dim, c.piece[0]), interior, depth + 1);
        walk_impl(with_piece(z, dim, c.piece[1]), interior, depth + 1);
        return;
      }
      if (c.count == 2) {
        const Zoid<D> a = with_piece(z, dim, c.piece[0]);
        const Zoid<D> b = with_piece(z, dim, c.piece[1]);
        policy_.invoke2([&] { walk_impl(a, interior, depth + 1); },
                        [&] { walk_impl(b, interior, depth + 1); });
        return;
      }
      const Zoid<D> black1 = with_piece(z, dim, c.piece[0]);
      const Zoid<D> gray = with_piece(z, dim, c.piece[1]);
      const Zoid<D> black3 = with_piece(z, dim, c.piece[2]);
      if (c.upright) {
        policy_.invoke2([&] { walk_impl(black1, interior, depth + 1); },
                        [&] { walk_impl(black3, interior, depth + 1); });
        walk_impl(gray, interior, depth + 1);
      } else {
        walk_impl(gray, interior, depth + 1);
        policy_.invoke2([&] { walk_impl(black1, interior, depth + 1); },
                        [&] { walk_impl(black3, interior, depth + 1); });
      }
      return;
    }

    if (z.height() > ctx_.dt_threshold) {
      if (ctx_.stats != nullptr) ctx_.stats->on_time_cut();
      const auto halves = time_cut(z);
      walk_impl(halves.first, interior, depth + 1);
      walk_impl(halves.second, interior, depth + 1);
      return;
    }

    if (ctx_.stats != nullptr) {
      ctx_.stats->on_base(static_cast<std::uint64_t>(z.volume()), z.height(),
                          interior);
    }
    if (interior) {
      interior_base_(z);
    } else {
      boundary_base_(z);
    }
  }

  const WalkContext<D>& ctx_;
  const Policy& policy_;
  InteriorBase& interior_base_;
  BoundaryBase& boundary_base_;
};

/// Convenience runner: walks the full space-time box [t0, t1) x grid.
template <int D, typename Policy, typename InteriorBase, typename BoundaryBase>
void run_strap(const WalkContext<D>& ctx, const Policy& policy,
               std::int64_t t0, std::int64_t t1, InteriorBase&& interior_base,
               BoundaryBase&& boundary_base) {
  StrapWalker<D, Policy, std::decay_t<InteriorBase>, std::decay_t<BoundaryBase>>
      walker(ctx, policy, interior_base, boundary_base);
  walker.walk(Zoid<D>::box(t0, t1, ctx.grid));
}

}  // namespace pochoir
