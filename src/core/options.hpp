// Execution options: base-case coarsening thresholds and algorithm choice.
//
// §4 of the paper: running the recursion down to single grid points costs
// ~36x on the 2D heat equation, so the base case is coarsened.  Pochoir's
// heuristics, reproduced here: 2D stops at 100x100 space chunks with 5 time
// steps; for >= 3 dimensions the unit-stride dimension is never cut (to
// preserve hardware prefetching) and the others stop at small widths with
// 3 time steps.  An ISAT-style autotuner (autotune.hpp) can replace the
// heuristics with measured values.
#pragma once

#include <array>
#include <cstdint>
#include <limits>

namespace pochoir {

/// Which algorithm executes a Stencil::run-family call.
enum class Algorithm {
  kTrap,          ///< TRAP: hyperspace cuts (the paper's contribution)
  kStrap,         ///< STRAP: Frigo-Strumpen-style serial space cuts
  kLoopsParallel, ///< parallel loop nest (cilk_for equivalent)
  kLoopsSerial,   ///< serial loop nest
};

/// Coarsening thresholds for the trapezoidal recursion.
template <int D>
struct Options {
  /// Largest base-case height; recursion time-cuts while height exceeds it.
  std::int64_t dt_threshold = 1;
  /// Largest base-case width per dimension; a dimension is never space-cut
  /// once its width is at or below its threshold.
  std::array<std::int64_t, D> dx_threshold{};

  static constexpr std::int64_t kNeverCut =
      std::numeric_limits<std::int64_t>::max() / 4;

  /// Fully uncoarsened recursion (used by the Figure 9/10 experiments).
  static Options uncoarsened() {
    Options o;
    o.dt_threshold = 1;
    o.dx_threshold.fill(1);
    return o;
  }

  /// The paper's coarsening heuristics (§4).
  static Options heuristic() {
    Options o;
    if constexpr (D == 1) {
      o.dt_threshold = 32;
      o.dx_threshold = {2048};
    } else if constexpr (D == 2) {
      o.dt_threshold = 5;
      o.dx_threshold.fill(100);
    } else {
      // "for 3 or more dimensions ... never cutting the unit-stride spatial
      //  dimension, and it cuts the rest ... into small hypercubes"
      o.dt_threshold = 3;
      o.dx_threshold.fill(3);
      o.dx_threshold[D - 1] = kNeverCut;
    }
    return o;
  }
};

}  // namespace pochoir
