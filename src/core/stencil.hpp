// The Pochoir object (§2): ties together a shape, registered arrays, and a
// kernel, and runs the stencil computation with a chosen algorithm.
//
//   Shape<2> shape = {{1,0,0},{0,0,0},{0,1,0},{0,-1,0},{0,0,-1},{0,0,1}};
//   Array<double,2> u({X, Y}, shape.depth());
//   u.register_boundary(periodic_boundary<double,2>());
//   Stencil<2, double> heat(shape);
//   heat.register_arrays(u);
//   heat.run(T, [](int64_t t, int64_t x, int64_t y, auto u) {
//     u(t+1,x,y) = u(t,x,y) + CX*(u(t,x+1,y) - 2*u(t,x,y) + u(t,x-1,y))
//                           + CY*(u(t,x,y+1) - 2*u(t,x,y) + u(t,x,y-1));
//   });
//
// The kernel is a *generic* callable over (t, x..., views...); the facade
// instantiates it against InteriorView and BoundaryView to obtain the two
// clones of §4, then drives TRAP (default), STRAP, or the loop baselines.
// run() is resumable: a second run(T') continues from step T, as in §2.
//
// For long-running jobs, run_supervised() executes the same computation in
// time slabs under the resilience layer (resilience/supervisor.hpp):
// checksummed on-disk checkpoints, cooperative cancellation/deadlines,
// numerical health scans, and serial-engine degradation, reported through
// a structured RunReport instead of aborts.  resume() restores the newest
// valid checkpoint and finishes the interrupted run.
#pragma once

#include <array>
#include <cstdint>
#include <cstring>
#include <functional>
#include <limits>
#include <string>
#include <tuple>
#include <type_traits>
#include <utility>
#include <vector>

#include "core/array.hpp"
#include "core/loops.hpp"
#include "core/options.hpp"
#include "core/shape.hpp"
#include "core/strap.hpp"
#include "core/trap.hpp"
#include "core/views.hpp"
#include "core/walk_context.hpp"
#include "resilience/checkpoint.hpp"
#include "resilience/health.hpp"
#include "resilience/supervisor.hpp"
#include "runtime/parallel.hpp"
#include "support/assertion.hpp"
#include "support/cancellation.hpp"
#include "support/error.hpp"
#include "support/timer.hpp"
#include "telemetry/stats.hpp"
#include "telemetry/trace.hpp"

namespace pochoir {

namespace detail {

template <int D, typename K, typename... Views, std::size_t... Is>
inline void call_kernel_impl(K& kernel, std::int64_t t,
                             const std::array<std::int64_t, D>& idx,
                             std::index_sequence<Is...>,
                             const Views&... views) {
  if constexpr (std::is_invocable_v<K&, std::int64_t, decltype(idx[Is])...,
                                    const Views&...>) {
    kernel(t, idx[Is]..., views...);
  } else {
    // Phase-1 style kernel (the DSL macros of Figure 6): the kernel closes
    // over the Pochoir arrays and accesses them through their own checked
    // operator(); no views are passed.
    kernel(t, idx[Is]...);
  }
}

/// Invokes kernel(t, x0, ..., x{D-1}, views...).
template <int D, typename K, typename... Views>
inline void call_kernel(K& kernel, std::int64_t t,
                        const std::array<std::int64_t, D>& idx,
                        const Views&... views) {
  call_kernel_impl<D>(kernel, t, idx, std::make_index_sequence<D>{}, views...);
}

/// Adapts a per-point functor f(t, idx) to the row-invoker signature
/// f(t, idx, row_end); used by paths that must keep per-point view
/// construction (shape checking, Phase-1 clones).
template <int D, typename PF>
auto point_fn_as_row(const PF& pf) {
  return [&pf](std::int64_t t, std::array<std::int64_t, D> idx,
               std::int64_t row_end) {
    for (; idx[D - 1] < row_end; ++idx[D - 1]) pf(t, idx);
  };
}

}  // namespace detail

template <int D, typename... Ts>
class Stencil {
  static_assert(sizeof...(Ts) >= 1, "a stencil needs at least one array");

 public:
  /// Creates a Pochoir object with the given computing shape; options
  /// default to the paper's coarsening heuristics.
  explicit Stencil(Shape<D> shape, Options<D> opts = Options<D>::heuristic())
      : shape_(std::move(shape)), opts_(opts) {}

  /// Registers the participating arrays, in the order the kernel receives
  /// its views.  Arrays must share extents and have >= depth+1 time levels.
  /// Misuse throws pochoir::Error (user input, not an internal invariant).
  void register_arrays(Array<Ts, D>&... arrays) {
    auto tentative = std::make_tuple(&arrays...);
    const auto grid = std::get<0>(tentative)->extents();
    auto check = [&](const auto& a) {
      detail::check_usage(a.extents() == grid,
                          "all registered arrays must share extents");
      detail::check_usage(
          a.time_levels() >= shape_.depth() + 1,
          "array has fewer time levels than the shape's depth requires "
          "(construct the array with depth >= shape.depth())");
    };
    (check(arrays), ...);
    arrays_ = tentative;
    grid_ = grid;
    registered_ = true;
  }

  /// Paper-style alias for the single-array case.
  template <typename A>
  void Register_Array(A& a) {
    static_assert(sizeof...(Ts) == 1);
    register_arrays(a);
  }

  [[nodiscard]] const Shape<D>& shape() const { return shape_; }
  [[nodiscard]] Options<D>& options() { return opts_; }
  [[nodiscard]] const Options<D>& options() const { return opts_; }
  [[nodiscard]] const std::array<std::int64_t, D>& grid() const { return grid_; }

  /// Steps executed so far across run() calls.
  [[nodiscard]] std::int64_t steps_done() const { return steps_done_; }

  /// Time index holding the results after the steps executed so far
  /// (T + k - 1 in §2, counting initial conditions at times 0..k-1).
  [[nodiscard]] std::int64_t result_time() const {
    return steps_done_ + shape_.depth() - 1;
  }

  /// Forgets execution history (e.g. after re-initializing the arrays).
  void reset() { steps_done_ = 0; }

  /// The kernel-invocation time range for the next `steps` steps; exposed
  /// for the analysis module and tests.
  [[nodiscard]] std::pair<std::int64_t, std::int64_t> time_range(
      std::int64_t steps) const {
    const std::int64_t t0 = shape_.depth() - shape_.home_dt() + steps_done_;
    return {t0, t0 + steps};
  }

  /// Walk parameters derived from the shape, grid and current options.
  [[nodiscard]] WalkContext<D> context() const {
    detail::check_usage(registered_,
                        "register_arrays must be called before running");
    WalkContext<D> ctx = WalkContext<D>::make(shape_, grid_, opts_);
    ctx.cancel = cancel_;
    if (telemetry::enabled()) ctx.stats = &telemetry::walk_stats();
    if (trace::Tracer::instance().active()) {
      ctx.trace_depth = trace::zoid_depth_limit();
    }
    return ctx;
  }

  /// Installs a cancellation token polled by every run path (TRAP/STRAP at
  /// zoid granularity, loops per time step); nullptr removes it.  A run
  /// interrupted this way may leave arrays mid-step — use run_supervised()
  /// when consistency at a slab boundary is required.
  void set_cancel_token(const CancelToken* token) { cancel_ = token; }

  // --- execution -----------------------------------------------------------

  /// Runs `steps` time steps with TRAP on the work-stealing pool
  /// (the paper's name.Run(T, kern)).
  template <typename K>
  void run(std::int64_t steps, K&& kernel) {
    run_with(rt::ParallelPolicy{}, Algorithm::kTrap, steps, kernel);
  }

  /// Paper-style alias.
  template <typename K>
  void Run(std::int64_t steps, K&& kernel) {
    run(steps, std::forward<K>(kernel));
  }

  /// Runs with an explicit algorithm on the work-stealing pool.
  template <typename K>
  void run(Algorithm alg, std::int64_t steps, K&& kernel) {
    if (alg == Algorithm::kLoopsSerial) {
      run_with(rt::SerialPolicy{}, alg, steps, kernel);
    } else {
      run_with(rt::ParallelPolicy{}, alg, steps, kernel);
    }
  }

  /// Runs with an explicit algorithm entirely on the calling thread
  /// (the "Pochoir 1 core" column of Figure 3).
  template <typename K>
  void run_serial(Algorithm alg, std::int64_t steps, K&& kernel) {
    run_with(rt::SerialPolicy{}, alg, steps, kernel);
  }

  // --- supervised execution (resilience layer) -----------------------------

  /// Runs `steps` in time slabs under the supervisor: slab checkpoints,
  /// cooperative cancellation/deadline, numerical health scans, and
  /// graceful degradation to the serial loops engine.  Never aborts on a
  /// recoverable failure; the outcome is the returned RunReport.  With the
  /// default options (no slabbing, no checkpoint path) this is a thin
  /// wrapper over run() with near-zero overhead.
  template <typename K>
  resilience::RunReport run_supervised(
      std::int64_t steps, K&& kernel,
      const resilience::SupervisorOptions& opts = {}) {
    validate_run(steps);
    if (opts.faults != nullptr && opts.faults->wants_kernel_hook()) {
      // Route every kernel invocation through the fault plan so task
      // failures and mid-slab cancellations fire at deterministic sites.
      auto* plan = opts.faults;
      auto hooked = [plan, &kernel](auto&&... args)
        requires std::is_invocable_v<std::remove_reference_t<K>&,
                                     decltype(args)...>
      {
        plan->on_kernel_call();
        kernel(std::forward<decltype(args)>(args)...);
      };
      return run_supervised_impl(steps, hooked, opts);
    }
    return run_supervised_impl(steps, kernel, opts);
  }

  /// Restores the newest valid checkpoint generation under
  /// `opts.checkpoint_path` (corrupt or truncated snapshots are skipped in
  /// favour of older ones) and finishes the interrupted run.  Returns a
  /// kCheckpointError report when no usable snapshot exists or its layout
  /// does not match the registered arrays.
  template <typename K>
  resilience::RunReport resume(K&& kernel,
                               const resilience::SupervisorOptions& opts) {
    namespace rs = resilience;
    detail::check_usage(registered_,
                        "register_arrays must be called before resume");
    detail::check_usage(!opts.checkpoint_path.empty(),
                        "resume needs SupervisorOptions::checkpoint_path");
    rs::RunReport rep;
    rep.resumed = true;
    auto loaded = rs::load_latest_checkpoint(opts.checkpoint_path);
    if (!loaded) {
      rep.status = rs::RunStatus::kCheckpointError;
      rep.message = "no valid checkpoint found at " + opts.checkpoint_path;
      return rep;
    }
    std::string err = restore_from_checkpoint(*loaded);
    if (!err.empty()) {
      rep.status = rs::RunStatus::kCheckpointError;
      rep.message = loaded->file + ": " + err;
      return rep;
    }
    const std::int64_t remaining =
        loaded->meta.steps_target - loaded->meta.steps_done;
    if (remaining <= 0) {
      rep.message = "checkpoint already holds the full run";
      return rep;
    }
    rs::RunReport sub = run_supervised(remaining, std::forward<K>(kernel), opts);
    sub.resumed = true;
    return sub;
  }

  /// Loop baseline with every access checked (no interior clone): the §4
  /// "modulo on every array index" ablation.
  template <typename K>
  void run_loops_checked_everywhere(std::int64_t steps, K&& kernel,
                                    bool parallel = true) {
    validate_run(steps);
    const auto pf = make_point_fn(kernel, boundary_factory());
    const auto ri = detail::point_fn_as_row<D>(pf);
    const auto [t0, t1] = time_range(steps);
    const WalkContext<D> ctx = context();
    if (parallel) {
      run_loops<D>(ctx, rt::ParallelPolicy{}, t0, t1, ri, pf,
                   /*interior_clone=*/false);
    } else {
      run_loops<D>(ctx, rt::SerialPolicy{}, t0, t1, ri, pf,
                   /*interior_clone=*/false);
    }
    steps_done_ += steps;
  }

  /// Serial run in which every array access is traced into `sink` (e.g. a
  /// CacheSim) — the substrate for the Figure 10 experiments.
  template <typename Sink, typename K>
  void run_traced(Algorithm alg, std::int64_t steps, K&& kernel, Sink& sink) {
    auto factory = [&sink](auto& a, std::int64_t, const auto&) {
      return TracedView(a, sink);
    };
    run_with_factory(rt::SerialPolicy{}, alg, steps, kernel, factory, factory);
  }

  /// Phase-1 compliance run: every access is validated against the declared
  /// shape; aborts with a diagnostic on violation.  Serial, checked, slow —
  /// exactly the paper's debugging mode.
  template <typename K>
  void run_debug(std::int64_t steps, K&& kernel) {
    auto factory = [this](auto& a, std::int64_t t, const auto& idx) {
      using A = std::remove_reference_t<decltype(a)>;
      return ShapeCheckedView<typename A::value_type, D>(a, shape_, t, idx);
    };
    run_with_factory(rt::SerialPolicy{}, Algorithm::kLoopsSerial, steps,
                     kernel, factory, factory);
  }

  /// Runs `steps` steps with custom per-zoid base cases (`ib` for interior
  /// zoids, `bb` for boundary zoids) under TRAP; used by the split-pointer
  /// path and the compiler-generated postsource.
  template <typename Policy, typename IB, typename BB>
  void run_custom_base(const Policy& pol, std::int64_t steps, IB&& ib,
                       BB&& bb) {
    validate_run(steps);
    trace::Span span("stencil_run", steps);
    const auto [t0, t1] = time_range(steps);
    const WalkContext<D> ctx = context();
    run_trap(ctx, pol, t0, t1, ib, bb);
    steps_done_ += steps;
  }

  /// Runs with explicit interior/boundary kernel clones, Phase-1 style
  /// f(t, x...) — the entry point used by pochoirc's -split-macro-shadow
  /// postsource, where the interior clone shadows array accesses with
  /// unchecked ones (Figure 12(b)).
  template <typename KI, typename KB>
  void run_cloned(std::int64_t steps, KI&& ki, KB&& kb, bool parallel = true) {
    validate_run(steps);
    const auto [t0, t1] = time_range(steps);
    const WalkContext<D> ctx = context();
    const auto pi = [&ki](std::int64_t t, const std::array<std::int64_t, D>& idx) {
      detail::call_kernel<D>(ki, t, idx);
    };
    const auto pb_raw = [&kb](std::int64_t t,
                              const std::array<std::int64_t, D>& idx) {
      detail::call_kernel<D>(kb, t, idx);
    };
    const auto pb = wrap_boundary_point_fn(pb_raw);
    const auto ri = detail::point_fn_as_row<D>(pi);
    auto ib = [&ri](const Zoid<D>& z) { for_each_row<D>(z, ri); };
    auto bb = make_boundary_base(ri, pb);
    if (parallel) {
      run_trap(ctx, rt::ParallelPolicy{}, t0, t1, ib, bb);
    } else {
      run_trap(ctx, rt::SerialPolicy{}, t0, t1, ib, bb);
    }
    steps_done_ += steps;
  }

  /// Runs with a custom interior *zoid* base (pointer-walking code from
  /// pochoirc's -split-pointer mode, Figure 12(c)) and a Phase-1 style
  /// boundary kernel for boundary zoids.
  template <typename IB, typename KB>
  void run_split(std::int64_t steps, IB&& interior_base, KB&& boundary_kernel,
                 bool parallel = true) {
    validate_run(steps);
    const auto [t0, t1] = time_range(steps);
    const WalkContext<D> ctx = context();
    const auto pb_raw = [&boundary_kernel](
                            std::int64_t t,
                            const std::array<std::int64_t, D>& idx) {
      detail::call_kernel<D>(boundary_kernel, t, idx);
    };
    const auto pb = wrap_boundary_point_fn(pb_raw);
    auto bb = [&pb](const Zoid<D>& z) { for_each_point(z, pb); };
    if (parallel) {
      run_trap(ctx, rt::ParallelPolicy{}, t0, t1, interior_base, bb);
    } else {
      run_trap(ctx, rt::SerialPolicy{}, t0, t1, interior_base, bb);
    }
    steps_done_ += steps;
  }

  /// Runs a tap-based linear stencil with the split-pointer base case
  /// (Figure 12(c)); single-array stencils only.  The LinearStencil must
  /// agree with this object's shape on home_dt and depth.
  template <typename LS>
  void run_linear(std::int64_t steps, const LS& lin, bool parallel = true) {
    static_assert(sizeof...(Ts) == 1,
                  "split-pointer base cases support one array");
    POCHOIR_ASSERT(lin.home_dt() == shape_.home_dt());
    auto& a = *std::get<0>(arrays_);
    auto ib = [&](const Zoid<D>& z) { lin.base_interior(a, z); };
    auto bb = [&](const Zoid<D>& z) { lin.base_boundary(a, z); };
    if (parallel) {
      run_custom_base(rt::ParallelPolicy{}, steps, ib, bb);
    } else {
      run_custom_base(rt::SerialPolicy{}, steps, ib, bb);
    }
  }

 private:
  /// User-input checks shared by every run entry point; throws
  /// pochoir::Error (misuse), never aborts (reserved for internal bugs).
  void validate_run(std::int64_t steps) const {
    detail::check_usage(registered_,
                        "register_arrays must be called before running");
    detail::check_usage(steps > 0, "step count must be positive");
  }

  // --- resilience glue -----------------------------------------------------

  /// Installs a token for the duration of one supervised run, restoring
  /// whatever set_cancel_token() had put there on exit.
  class CancelTokenScope {
   public:
    CancelTokenScope(Stencil& s, const CancelToken* token)
        : s_(s), prev_(s.cancel_) {
      if (token != nullptr) s_.cancel_ = token;
    }
    ~CancelTokenScope() { s_.cancel_ = prev_; }
    CancelTokenScope(const CancelTokenScope&) = delete;
    CancelTokenScope& operator=(const CancelTokenScope&) = delete;

   private:
    Stencil& s_;
    const CancelToken* prev_;
  };

  /// In-memory slab-boundary snapshot: raw bytes of every registered array
  /// (all circular time levels) plus the step counter.
  struct RestorePoint {
    std::int64_t steps_done = 0;
    std::array<std::vector<unsigned char>, sizeof...(Ts)> bytes;
  };

  void capture_restore_point(RestorePoint& rp) const {
    rp.steps_done = steps_done_;
    std::size_t i = 0;
    std::apply(
        [&](auto*... arrs) {
          auto one = [&](const auto& a) {
            const std::size_t n = array_bytes(a);
            rp.bytes[i].resize(n);
            std::memcpy(rp.bytes[i].data(), a.data(), n);
            ++i;
          };
          (one(*arrs), ...);
        },
        arrays_);
  }

  void apply_restore_point(const RestorePoint& rp) {
    steps_done_ = rp.steps_done;
    std::size_t i = 0;
    std::apply(
        [&](auto*... arrs) {
          auto one = [&](auto& a) {
            std::memcpy(a.data(), rp.bytes[i].data(), rp.bytes[i].size());
            ++i;
          };
          (one(*arrs), ...);
        },
        arrays_);
  }

  template <typename T>
  static std::size_t array_bytes(const Array<T, D>& a) {
    return static_cast<std::size_t>(a.total_size()) * sizeof(T);
  }

  template <typename T>
  static resilience::ArraySnapshot make_snapshot(const Array<T, D>& a) {
    resilience::ArraySnapshot s;
    s.dims = static_cast<std::uint32_t>(D);
    s.elem_size = static_cast<std::uint32_t>(sizeof(T));
    s.levels = a.time_levels();
    s.level_size = a.level_size();
    s.extents.assign(a.extents().begin(), a.extents().end());
    s.data = reinterpret_cast<const unsigned char*>(a.data());
    s.bytes = static_cast<std::uint64_t>(array_bytes(a));
    return s;
  }

  [[nodiscard]] std::vector<resilience::ArraySnapshot> array_snapshots() const {
    std::vector<resilience::ArraySnapshot> out;
    out.reserve(sizeof...(Ts));
    std::apply(
        [&](auto*... arrs) { (out.push_back(make_snapshot(*arrs)), ...); },
        arrays_);
    return out;
  }

  template <typename T>
  std::string validate_loaded(const Array<T, D>& a,
                              const resilience::LoadedArray& la,
                              std::size_t index) const {
    auto fail = [&](const char* what) {
      return "array " + std::to_string(index) + ": " + what;
    };
    if (la.dims != static_cast<std::uint32_t>(D)) {
      return fail("dimensionality mismatch");
    }
    if (la.elem_size != sizeof(T)) return fail("element size mismatch");
    if (la.levels != a.time_levels()) return fail("time-level count mismatch");
    if (la.level_size != a.level_size()) return fail("level size mismatch");
    const std::vector<std::int64_t> ext(a.extents().begin(),
                                        a.extents().end());
    if (la.extents != ext) return fail("extents mismatch");
    if (la.bytes.size() != array_bytes(a)) return fail("payload size mismatch");
    return {};
  }

  /// Restores arrays + step counter from a verified checkpoint.  Two-pass:
  /// every array's layout is validated against the snapshot before any
  /// byte is copied, so a mismatch never leaves a partial restore.
  /// Returns "" on success, else a description of the mismatch.
  std::string restore_from_checkpoint(const resilience::LoadedCheckpoint& ck) {
    if (ck.arrays.size() != sizeof...(Ts)) {
      return "checkpoint holds " + std::to_string(ck.arrays.size()) +
             " arrays, this stencil registers " + std::to_string(sizeof...(Ts));
    }
    std::string err;
    std::size_t i = 0;
    std::apply(
        [&](auto*... arrs) {
          auto check = [&](const auto& a) {
            if (err.empty()) err = validate_loaded(a, ck.arrays[i], i);
            ++i;
          };
          (check(*arrs), ...);
        },
        arrays_);
    if (!err.empty()) return err;
    i = 0;
    std::apply(
        [&](auto*... arrs) {
          auto copy = [&](auto& a) {
            std::memcpy(a.data(), ck.arrays[i].bytes.data(),
                        ck.arrays[i].bytes.size());
            ++i;
          };
          (copy(*arrs), ...);
        },
        arrays_);
    steps_done_ = ck.meta.steps_done;
    return {};
  }

  /// "" when every registered array is finite and bounded, else the first
  /// issue found.
  [[nodiscard]] std::string health_scan(double limit) const {
    resilience::HealthIssue issue;
    int i = 0;
    std::apply(
        [&](auto*... arrs) {
          ((resilience::scan_array(*arrs, limit, i, issue), ++i), ...);
        },
        arrays_);
    return issue.found ? issue.message : std::string{};
  }

  /// FaultPlan::poison_after_slab target: plants a quiet NaN in the first
  /// registered array's storage (no-op for non-floating-point cells).
  void poison_first_array(std::int64_t flat_index) {
    auto& a = *std::get<0>(arrays_);
    using T = typename std::remove_reference_t<decltype(a)>::value_type;
    if constexpr (std::is_floating_point_v<T>) {
      const std::int64_t n = a.total_size();
      if (n > 0) {
        const std::int64_t at =
            flat_index >= 0 && flat_index < n ? flat_index : 0;
        a.data()[at] = std::numeric_limits<T>::quiet_NaN();
      }
    } else {
      (void)flat_index;
    }
  }

  template <typename K>
  resilience::RunReport run_supervised_impl(
      std::int64_t steps, K& kernel, const resilience::SupervisorOptions& opts) {
    namespace rs = resilience;
    CancelToken internal_token;
    CancelToken* token = opts.cancel;
    if (token == nullptr &&
        (opts.deadline_ms >= 0 ||
         (opts.faults != nullptr && opts.faults->cancel_at_slab >= 0))) {
      token = &internal_token;
    }
    if (token != nullptr && opts.deadline_ms >= 0) {
      token->set_deadline_after_ms(opts.deadline_ms);
    }
    CancelTokenScope scope(*this, token);

    const std::int64_t target_total = steps_done_ + steps;
    std::uint64_t generation = opts.checkpoint_path.empty()
                                   ? 0
                                   : rs::next_generation(opts.checkpoint_path);
    RestorePoint restore;

    auto run_slab = [&](std::int64_t n, bool serial) {
      if (serial) {
        run_with(rt::SerialPolicy{}, Algorithm::kLoopsSerial, n, kernel);
      } else if (opts.parallel) {
        run_with(rt::ParallelPolicy{}, opts.algorithm, n, kernel);
      } else {
        run_with(rt::SerialPolicy{}, opts.algorithm, n, kernel);
      }
    };
    auto capture = [&] { capture_restore_point(restore); };
    auto rollback = [&] { apply_restore_point(restore); };
    auto health = [&] { return health_scan(opts.divergence_limit); };
    auto apply_faults = [&](std::int64_t slab) {
      if (opts.faults->poison_after_slab == slab) {
        poison_first_array(opts.faults->poison_flat_index);
      }
    };
    auto write_ckpt = [&](rs::RunReport& rep) {
      trace::Span ckpt_span("checkpoint_io");
      Timer ckpt_timer;
      rs::CheckpointMeta meta;
      meta.generation = generation++;
      meta.steps_done = steps_done_;
      meta.steps_target = target_total;
      std::function<bool()> io_fault;
      if (opts.faults != nullptr) {
        io_fault = [plan = opts.faults] { return plan->take_io_failure(); };
      }
      const auto snaps = array_snapshots();
      std::int64_t snap_bytes = 0;
      for (const auto& s : snaps) snap_bytes += static_cast<std::int64_t>(s.bytes);
      const rs::WriteCheckpointResult w = rs::write_checkpoint(
          opts.checkpoint_path, meta, snaps, opts.keep_generations,
          opts.io_retries, opts.io_retry_backoff_ms, io_fault);
      rep.checkpoint_seconds += ckpt_timer.seconds();
      rep.checkpoint_io_failures += w.attempts - (w.ok ? 1 : 0);
      if (w.ok) {
        ++rep.checkpoints_written;
        rep.checkpoint_bytes += snap_bytes;
      } else {
        // Persistent IO failure degrades durability, not the computation.
        rep.message = "checkpoint write failed after " +
                      std::to_string(w.attempts) + " attempts: " + w.error;
      }
    };
    return rs::supervise(opts, steps, token, run_slab, capture, rollback,
                         health, apply_faults, write_ckpt);
  }

  /// The standard execution path: interior work runs through row-granular
  /// views (time-level base pointers hoisted once per unit-stride row, no
  /// modulo in the inner loop), closing most of the gap to the split-pointer
  /// base case of LinearStencil.
  template <typename Policy, typename K>
  void run_with(const Policy& pol, Algorithm alg, std::int64_t steps,
                K& kernel) {
    validate_run(steps);
    // InteriorRowView caches one base pointer per circular time level in a
    // fixed-size table; arrays deeper than its capacity take the per-point
    // path instead of aborting mid-run.
    std::int64_t max_levels = 0;
    std::apply(
        [&](auto*... arrs) {
          ((max_levels = arrs->time_levels() > max_levels ? arrs->time_levels()
                                                          : max_levels),
           ...);
        },
        arrays_);
    if (max_levels > kMaxRowViewTimeLevels) {
      run_with_factory(pol, alg, steps, kernel, interior_factory(),
                       boundary_factory());
      return;
    }
    trace::Span span("stencil_run", steps);
    const auto [t0, t1] = time_range(steps);
    const WalkContext<D> ctx = context();
    const auto pb_raw = make_point_fn(kernel, boundary_factory());
    const auto pb = wrap_boundary_point_fn(pb_raw);
    const auto ri = make_row_fn(kernel, interior_row_factory());
    dispatch(pol, alg, ctx, t0, t1, ri, pb, /*interior_clone=*/true);
    steps_done_ += steps;
  }

  static constexpr std::int64_t kMaxRowViewTimeLevels =
      InteriorRowView<int, D>::kMaxTimeLevels;

  static auto interior_factory() {
    return [](auto& a, std::int64_t, const auto&) { return InteriorView(a); };
  }
  static auto boundary_factory() {
    return [](auto& a, std::int64_t, const auto&) { return BoundaryView(a); };
  }
  auto interior_row_factory() const {
    const std::int64_t home = shape_.home_dt();
    return [home](auto& a, std::int64_t t, const auto&) {
      using A = std::remove_reference_t<decltype(a)>;
      return InteriorRowView<typename A::value_type, D>(a, t, home);
    };
  }

  /// Boundary zoids may carry virtual coordinates (seam pieces wrap past
  /// the grid edge); the kernel is always invoked with true coordinates
  /// obtained by a modulo computation (§4).
  template <typename PB>
  auto wrap_boundary_point_fn(const PB& pb_raw) const {
    return [this, &pb_raw](std::int64_t t,
                           const std::array<std::int64_t, D>& idx) {
      std::array<std::int64_t, D> true_idx;
      for (int i = 0; i < D; ++i) {
        true_idx[i] = mod_floor(idx[static_cast<std::size_t>(i)],
                                grid_[static_cast<std::size_t>(i)]);
      }
      pb_raw(t, true_idx);
    };
  }

  /// Drives the chosen algorithm with a row-granular interior invoker
  /// ri(t, idx, row_end) and a per-point boundary functor pb(t, idx).
  template <typename Policy, typename RI, typename PB>
  void dispatch(const Policy& pol, Algorithm alg, const WalkContext<D>& ctx,
                std::int64_t t0, std::int64_t t1, const RI& ri, const PB& pb,
                bool interior_clone) {
    auto ib = [&ri](const Zoid<D>& z) { for_each_row<D>(z, ri); };
    auto bb = make_boundary_base(ri, pb);
    switch (alg) {
      case Algorithm::kTrap:
        run_trap(ctx, pol, t0, t1, ib, bb);
        break;
      case Algorithm::kStrap:
        run_strap(ctx, pol, t0, t1, ib, bb);
        break;
      case Algorithm::kLoopsParallel:
        run_loops<D>(ctx, pol, t0, t1, ri, pb, interior_clone);
        break;
      case Algorithm::kLoopsSerial:
        run_loops<D>(ctx, rt::SerialPolicy{}, t0, t1, ri, pb, interior_clone);
        break;
    }
  }

  /// Boundary-zoid base case with row splitting: rows whose outer
  /// coordinates are safely interior run the checked clone only on the
  /// `reach`-wide flanks and the fast interior row invoker on the middle —
  /// the ghost-cell trick applied inside boundary zoids.  This matters most
  /// for the paper's >=3D heuristic, where the unit-stride dimension is
  /// never cut and every zoid spans the full row.
  template <typename RI, typename PB>
  auto make_boundary_base(const RI& ri, const PB& pb) const {
    const auto& reach = shape_.reaches();
    const auto& grid = grid_;
    return [&ri, &pb, &reach, &grid](const Zoid<D>& z) {
      for_each_row<D>(z, [&](std::int64_t t, std::array<std::int64_t, D> idx,
                             std::int64_t row_end) {
        bool outer_safe = true;
        for (int i = 0; i + 1 < D; ++i) {
          if (idx[i] < reach[static_cast<std::size_t>(i)] ||
              idx[i] >= grid[static_cast<std::size_t>(i)] -
                            reach[static_cast<std::size_t>(i)]) {
            outer_safe = false;
            break;
          }
        }
        const std::int64_t lo = idx[D - 1];
        const std::int64_t n = grid[D - 1];
        const std::int64_t r = reach[D - 1];
        if (!outer_safe || lo < 0 || row_end > n) {
          for (idx[D - 1] = lo; idx[D - 1] < row_end; ++idx[D - 1]) pb(t, idx);
          return;
        }
        const std::int64_t safe_lo = lo > r ? lo : r;
        const std::int64_t safe_hi = row_end < n - r ? row_end : n - r;
        if (safe_lo >= safe_hi) {
          for (idx[D - 1] = lo; idx[D - 1] < row_end; ++idx[D - 1]) pb(t, idx);
          return;
        }
        for (idx[D - 1] = lo; idx[D - 1] < safe_lo; ++idx[D - 1]) pb(t, idx);
        idx[D - 1] = safe_lo;
        ri(t, idx, safe_hi);
        for (idx[D - 1] = safe_hi; idx[D - 1] < row_end; ++idx[D - 1]) pb(t, idx);
      });
    };
  }

  /// Builds a per-point functor f(t, idx) that calls the kernel with views
  /// created by `factory(array, t, idx)` for each registered array.
  template <typename K, typename Factory>
  auto make_point_fn(K& kernel, Factory factory) {
    return std::apply(
        [&kernel, factory](auto*... arrs) {
          return [&kernel, factory, arrs...](
                     std::int64_t t, const std::array<std::int64_t, D>& idx) {
            detail::call_kernel<D>(kernel, t, idx, factory(*arrs, t, idx)...);
          };
        },
        arrays_);
  }

  /// Builds a row functor f(t, idx, row_end) that instantiates views ONCE
  /// per unit-stride row via `factory(array, t, idx)` and invokes the
  /// kernel for idx[D-1] in [idx[D-1], row_end).  Paired with
  /// InteriorRowView this hoists the circular-time and row address
  /// arithmetic out of the inner loop.
  template <typename K, typename Factory>
  auto make_row_fn(K& kernel, Factory factory) {
    return std::apply(
        [&kernel, factory](auto*... arrs) {
          return [&kernel, factory, arrs...](std::int64_t t,
                                             std::array<std::int64_t, D> idx,
                                             std::int64_t row_end) {
            // The row views live here for the whole row; kernels receive
            // pointer-sized handles, so the per-point copy is trivial.
            const auto views = std::make_tuple(factory(*arrs, t, idx)...);
            std::apply(
                [&](const auto&... v) {
                  for (; idx[D - 1] < row_end; ++idx[D - 1]) {
                    detail::call_kernel<D>(kernel, t, idx, v.handle()...);
                  }
                },
                views);
          };
        },
        arrays_);
  }

  /// Per-point-view execution used by the traced and shape-checked paths,
  /// whose view factories depend on the individual home point.
  template <typename Policy, typename K, typename FI, typename FB>
  void run_with_factory(const Policy& pol, Algorithm alg, std::int64_t steps,
                        K& kernel, FI interior_fac, FB boundary_fac) {
    validate_run(steps);
    trace::Span span("stencil_run", steps);
    const auto [t0, t1] = time_range(steps);
    const WalkContext<D> ctx = context();
    const auto pi = make_point_fn(kernel, interior_fac);
    const auto pb_raw = make_point_fn(kernel, boundary_fac);
    const auto pb = wrap_boundary_point_fn(pb_raw);
    const auto ri = detail::point_fn_as_row<D>(pi);
    dispatch(pol, alg, ctx, t0, t1, ri, pb, /*interior_clone=*/true);
    steps_done_ += steps;
  }

  Shape<D> shape_;
  Options<D> opts_;
  std::tuple<Array<Ts, D>*...> arrays_{};
  std::array<std::int64_t, D> grid_{};
  bool registered_ = false;
  std::int64_t steps_done_ = 0;
  const CancelToken* cancel_ = nullptr;
};

}  // namespace pochoir
