// The Pochoir object (§2): ties together a shape, registered arrays, and a
// kernel, and runs the stencil computation with a chosen algorithm.
//
//   Shape<2> shape = {{1,0,0},{0,0,0},{0,1,0},{0,-1,0},{0,0,-1},{0,0,1}};
//   Array<double,2> u({X, Y}, shape.depth());
//   u.register_boundary(periodic_boundary<double,2>());
//   Stencil<2, double> heat(shape);
//   heat.register_arrays(u);
//   heat.run(T, [](int64_t t, int64_t x, int64_t y, auto u) {
//     u(t+1,x,y) = u(t,x,y) + CX*(u(t,x+1,y) - 2*u(t,x,y) + u(t,x-1,y))
//                           + CY*(u(t,x,y+1) - 2*u(t,x,y) + u(t,x,y-1));
//   });
//
// The kernel is a *generic* callable over (t, x..., views...); the facade
// instantiates it against InteriorView and BoundaryView to obtain the two
// clones of §4, then drives TRAP (default), STRAP, or the loop baselines.
// run() is resumable: a second run(T') continues from step T, as in §2.
#pragma once

#include <array>
#include <cstdint>
#include <tuple>
#include <utility>

#include "core/array.hpp"
#include "core/loops.hpp"
#include "core/options.hpp"
#include "core/shape.hpp"
#include "core/strap.hpp"
#include "core/trap.hpp"
#include "core/views.hpp"
#include "core/walk_context.hpp"
#include "runtime/parallel.hpp"
#include "support/assertion.hpp"

namespace pochoir {

namespace detail {

template <int D, typename K, typename... Views, std::size_t... Is>
inline void call_kernel_impl(K& kernel, std::int64_t t,
                             const std::array<std::int64_t, D>& idx,
                             std::index_sequence<Is...>,
                             const Views&... views) {
  if constexpr (std::is_invocable_v<K&, std::int64_t, decltype(idx[Is])...,
                                    const Views&...>) {
    kernel(t, idx[Is]..., views...);
  } else {
    // Phase-1 style kernel (the DSL macros of Figure 6): the kernel closes
    // over the Pochoir arrays and accesses them through their own checked
    // operator(); no views are passed.
    kernel(t, idx[Is]...);
  }
}

/// Invokes kernel(t, x0, ..., x{D-1}, views...).
template <int D, typename K, typename... Views>
inline void call_kernel(K& kernel, std::int64_t t,
                        const std::array<std::int64_t, D>& idx,
                        const Views&... views) {
  call_kernel_impl<D>(kernel, t, idx, std::make_index_sequence<D>{}, views...);
}

/// Adapts a per-point functor f(t, idx) to the row-invoker signature
/// f(t, idx, row_end); used by paths that must keep per-point view
/// construction (shape checking, Phase-1 clones).
template <int D, typename PF>
auto point_fn_as_row(const PF& pf) {
  return [&pf](std::int64_t t, std::array<std::int64_t, D> idx,
               std::int64_t row_end) {
    for (; idx[D - 1] < row_end; ++idx[D - 1]) pf(t, idx);
  };
}

}  // namespace detail

template <int D, typename... Ts>
class Stencil {
  static_assert(sizeof...(Ts) >= 1, "a stencil needs at least one array");

 public:
  /// Creates a Pochoir object with the given computing shape; options
  /// default to the paper's coarsening heuristics.
  explicit Stencil(Shape<D> shape, Options<D> opts = Options<D>::heuristic())
      : shape_(std::move(shape)), opts_(opts) {}

  /// Registers the participating arrays, in the order the kernel receives
  /// its views.  Arrays must share extents and have >= depth+1 time levels.
  void register_arrays(Array<Ts, D>&... arrays) {
    arrays_ = std::make_tuple(&arrays...);
    grid_ = std::get<0>(arrays_)->extents();
    auto check = [&](const auto& a) {
      POCHOIR_ASSERT_MSG(a.extents() == grid_,
                         "all registered arrays must share extents");
      POCHOIR_ASSERT_MSG(a.time_levels() >= shape_.depth() + 1,
                         "array has fewer time levels than the shape's depth");
    };
    (check(arrays), ...);
    registered_ = true;
  }

  /// Paper-style alias for the single-array case.
  template <typename A>
  void Register_Array(A& a) {
    static_assert(sizeof...(Ts) == 1);
    register_arrays(a);
  }

  [[nodiscard]] const Shape<D>& shape() const { return shape_; }
  [[nodiscard]] Options<D>& options() { return opts_; }
  [[nodiscard]] const Options<D>& options() const { return opts_; }
  [[nodiscard]] const std::array<std::int64_t, D>& grid() const { return grid_; }

  /// Steps executed so far across run() calls.
  [[nodiscard]] std::int64_t steps_done() const { return steps_done_; }

  /// Time index holding the results after the steps executed so far
  /// (T + k - 1 in §2, counting initial conditions at times 0..k-1).
  [[nodiscard]] std::int64_t result_time() const {
    return steps_done_ + shape_.depth() - 1;
  }

  /// Forgets execution history (e.g. after re-initializing the arrays).
  void reset() { steps_done_ = 0; }

  /// The kernel-invocation time range for the next `steps` steps; exposed
  /// for the analysis module and tests.
  [[nodiscard]] std::pair<std::int64_t, std::int64_t> time_range(
      std::int64_t steps) const {
    const std::int64_t t0 = shape_.depth() - shape_.home_dt() + steps_done_;
    return {t0, t0 + steps};
  }

  /// Walk parameters derived from the shape, grid and current options.
  [[nodiscard]] WalkContext<D> context() const {
    POCHOIR_ASSERT_MSG(registered_, "register_arrays before running");
    return WalkContext<D>::make(shape_, grid_, opts_);
  }

  // --- execution -----------------------------------------------------------

  /// Runs `steps` time steps with TRAP on the work-stealing pool
  /// (the paper's name.Run(T, kern)).
  template <typename K>
  void run(std::int64_t steps, K&& kernel) {
    run_with(rt::ParallelPolicy{}, Algorithm::kTrap, steps, kernel);
  }

  /// Paper-style alias.
  template <typename K>
  void Run(std::int64_t steps, K&& kernel) {
    run(steps, std::forward<K>(kernel));
  }

  /// Runs with an explicit algorithm on the work-stealing pool.
  template <typename K>
  void run(Algorithm alg, std::int64_t steps, K&& kernel) {
    if (alg == Algorithm::kLoopsSerial) {
      run_with(rt::SerialPolicy{}, alg, steps, kernel);
    } else {
      run_with(rt::ParallelPolicy{}, alg, steps, kernel);
    }
  }

  /// Runs with an explicit algorithm entirely on the calling thread
  /// (the "Pochoir 1 core" column of Figure 3).
  template <typename K>
  void run_serial(Algorithm alg, std::int64_t steps, K&& kernel) {
    run_with(rt::SerialPolicy{}, alg, steps, kernel);
  }

  /// Loop baseline with every access checked (no interior clone): the §4
  /// "modulo on every array index" ablation.
  template <typename K>
  void run_loops_checked_everywhere(std::int64_t steps, K&& kernel,
                                    bool parallel = true) {
    const auto pf = make_point_fn(kernel, boundary_factory());
    const auto ri = detail::point_fn_as_row<D>(pf);
    const auto [t0, t1] = time_range(steps);
    const WalkContext<D> ctx = context();
    if (parallel) {
      run_loops<D>(ctx, rt::ParallelPolicy{}, t0, t1, ri, pf,
                   /*interior_clone=*/false);
    } else {
      run_loops<D>(ctx, rt::SerialPolicy{}, t0, t1, ri, pf,
                   /*interior_clone=*/false);
    }
    steps_done_ += steps;
  }

  /// Serial run in which every array access is traced into `sink` (e.g. a
  /// CacheSim) — the substrate for the Figure 10 experiments.
  template <typename Sink, typename K>
  void run_traced(Algorithm alg, std::int64_t steps, K&& kernel, Sink& sink) {
    auto factory = [&sink](auto& a, std::int64_t, const auto&) {
      return TracedView(a, sink);
    };
    run_with_factory(rt::SerialPolicy{}, alg, steps, kernel, factory, factory);
  }

  /// Phase-1 compliance run: every access is validated against the declared
  /// shape; aborts with a diagnostic on violation.  Serial, checked, slow —
  /// exactly the paper's debugging mode.
  template <typename K>
  void run_debug(std::int64_t steps, K&& kernel) {
    auto factory = [this](auto& a, std::int64_t t, const auto& idx) {
      using A = std::remove_reference_t<decltype(a)>;
      return ShapeCheckedView<typename A::value_type, D>(a, shape_, t, idx);
    };
    run_with_factory(rt::SerialPolicy{}, Algorithm::kLoopsSerial, steps,
                     kernel, factory, factory);
  }

  /// Runs `steps` steps with custom per-zoid base cases (`ib` for interior
  /// zoids, `bb` for boundary zoids) under TRAP; used by the split-pointer
  /// path and the compiler-generated postsource.
  template <typename Policy, typename IB, typename BB>
  void run_custom_base(const Policy& pol, std::int64_t steps, IB&& ib,
                       BB&& bb) {
    const auto [t0, t1] = time_range(steps);
    const WalkContext<D> ctx = context();
    run_trap(ctx, pol, t0, t1, ib, bb);
    steps_done_ += steps;
  }

  /// Runs with explicit interior/boundary kernel clones, Phase-1 style
  /// f(t, x...) — the entry point used by pochoirc's -split-macro-shadow
  /// postsource, where the interior clone shadows array accesses with
  /// unchecked ones (Figure 12(b)).
  template <typename KI, typename KB>
  void run_cloned(std::int64_t steps, KI&& ki, KB&& kb, bool parallel = true) {
    POCHOIR_ASSERT_MSG(registered_, "register_arrays before running");
    const auto [t0, t1] = time_range(steps);
    const WalkContext<D> ctx = context();
    const auto pi = [&ki](std::int64_t t, const std::array<std::int64_t, D>& idx) {
      detail::call_kernel<D>(ki, t, idx);
    };
    const auto pb_raw = [&kb](std::int64_t t,
                              const std::array<std::int64_t, D>& idx) {
      detail::call_kernel<D>(kb, t, idx);
    };
    const auto pb = wrap_boundary_point_fn(pb_raw);
    const auto ri = detail::point_fn_as_row<D>(pi);
    auto ib = [&ri](const Zoid<D>& z) { for_each_row<D>(z, ri); };
    auto bb = make_boundary_base(ri, pb);
    if (parallel) {
      run_trap(ctx, rt::ParallelPolicy{}, t0, t1, ib, bb);
    } else {
      run_trap(ctx, rt::SerialPolicy{}, t0, t1, ib, bb);
    }
    steps_done_ += steps;
  }

  /// Runs with a custom interior *zoid* base (pointer-walking code from
  /// pochoirc's -split-pointer mode, Figure 12(c)) and a Phase-1 style
  /// boundary kernel for boundary zoids.
  template <typename IB, typename KB>
  void run_split(std::int64_t steps, IB&& interior_base, KB&& boundary_kernel,
                 bool parallel = true) {
    POCHOIR_ASSERT_MSG(registered_, "register_arrays before running");
    const auto [t0, t1] = time_range(steps);
    const WalkContext<D> ctx = context();
    const auto pb_raw = [&boundary_kernel](
                            std::int64_t t,
                            const std::array<std::int64_t, D>& idx) {
      detail::call_kernel<D>(boundary_kernel, t, idx);
    };
    const auto pb = wrap_boundary_point_fn(pb_raw);
    auto bb = [&pb](const Zoid<D>& z) { for_each_point(z, pb); };
    if (parallel) {
      run_trap(ctx, rt::ParallelPolicy{}, t0, t1, interior_base, bb);
    } else {
      run_trap(ctx, rt::SerialPolicy{}, t0, t1, interior_base, bb);
    }
    steps_done_ += steps;
  }

  /// Runs a tap-based linear stencil with the split-pointer base case
  /// (Figure 12(c)); single-array stencils only.  The LinearStencil must
  /// agree with this object's shape on home_dt and depth.
  template <typename LS>
  void run_linear(std::int64_t steps, const LS& lin, bool parallel = true) {
    static_assert(sizeof...(Ts) == 1,
                  "split-pointer base cases support one array");
    POCHOIR_ASSERT(lin.home_dt() == shape_.home_dt());
    auto& a = *std::get<0>(arrays_);
    auto ib = [&](const Zoid<D>& z) { lin.base_interior(a, z); };
    auto bb = [&](const Zoid<D>& z) { lin.base_boundary(a, z); };
    if (parallel) {
      run_custom_base(rt::ParallelPolicy{}, steps, ib, bb);
    } else {
      run_custom_base(rt::SerialPolicy{}, steps, ib, bb);
    }
  }

 private:
  /// The standard execution path: interior work runs through row-granular
  /// views (time-level base pointers hoisted once per unit-stride row, no
  /// modulo in the inner loop), closing most of the gap to the split-pointer
  /// base case of LinearStencil.
  template <typename Policy, typename K>
  void run_with(const Policy& pol, Algorithm alg, std::int64_t steps,
                K& kernel) {
    POCHOIR_ASSERT_MSG(registered_, "register_arrays before running");
    // InteriorRowView caches one base pointer per circular time level in a
    // fixed-size table; arrays deeper than its capacity take the per-point
    // path instead of aborting mid-run.
    std::int64_t max_levels = 0;
    std::apply(
        [&](auto*... arrs) {
          ((max_levels = arrs->time_levels() > max_levels ? arrs->time_levels()
                                                          : max_levels),
           ...);
        },
        arrays_);
    if (max_levels > kMaxRowViewTimeLevels) {
      run_with_factory(pol, alg, steps, kernel, interior_factory(),
                       boundary_factory());
      return;
    }
    const auto [t0, t1] = time_range(steps);
    const WalkContext<D> ctx = context();
    const auto pb_raw = make_point_fn(kernel, boundary_factory());
    const auto pb = wrap_boundary_point_fn(pb_raw);
    const auto ri = make_row_fn(kernel, interior_row_factory());
    dispatch(pol, alg, ctx, t0, t1, ri, pb, /*interior_clone=*/true);
    steps_done_ += steps;
  }

  static constexpr std::int64_t kMaxRowViewTimeLevels =
      InteriorRowView<int, D>::kMaxTimeLevels;

  static auto interior_factory() {
    return [](auto& a, std::int64_t, const auto&) { return InteriorView(a); };
  }
  static auto boundary_factory() {
    return [](auto& a, std::int64_t, const auto&) { return BoundaryView(a); };
  }
  auto interior_row_factory() const {
    const std::int64_t home = shape_.home_dt();
    return [home](auto& a, std::int64_t t, const auto&) {
      using A = std::remove_reference_t<decltype(a)>;
      return InteriorRowView<typename A::value_type, D>(a, t, home);
    };
  }

  /// Boundary zoids may carry virtual coordinates (seam pieces wrap past
  /// the grid edge); the kernel is always invoked with true coordinates
  /// obtained by a modulo computation (§4).
  template <typename PB>
  auto wrap_boundary_point_fn(const PB& pb_raw) const {
    return [this, &pb_raw](std::int64_t t,
                           const std::array<std::int64_t, D>& idx) {
      std::array<std::int64_t, D> true_idx;
      for (int i = 0; i < D; ++i) {
        true_idx[i] = mod_floor(idx[static_cast<std::size_t>(i)],
                                grid_[static_cast<std::size_t>(i)]);
      }
      pb_raw(t, true_idx);
    };
  }

  /// Drives the chosen algorithm with a row-granular interior invoker
  /// ri(t, idx, row_end) and a per-point boundary functor pb(t, idx).
  template <typename Policy, typename RI, typename PB>
  void dispatch(const Policy& pol, Algorithm alg, const WalkContext<D>& ctx,
                std::int64_t t0, std::int64_t t1, const RI& ri, const PB& pb,
                bool interior_clone) {
    auto ib = [&ri](const Zoid<D>& z) { for_each_row<D>(z, ri); };
    auto bb = make_boundary_base(ri, pb);
    switch (alg) {
      case Algorithm::kTrap:
        run_trap(ctx, pol, t0, t1, ib, bb);
        break;
      case Algorithm::kStrap:
        run_strap(ctx, pol, t0, t1, ib, bb);
        break;
      case Algorithm::kLoopsParallel:
        run_loops<D>(ctx, pol, t0, t1, ri, pb, interior_clone);
        break;
      case Algorithm::kLoopsSerial:
        run_loops<D>(ctx, rt::SerialPolicy{}, t0, t1, ri, pb, interior_clone);
        break;
    }
  }

  /// Boundary-zoid base case with row splitting: rows whose outer
  /// coordinates are safely interior run the checked clone only on the
  /// `reach`-wide flanks and the fast interior row invoker on the middle —
  /// the ghost-cell trick applied inside boundary zoids.  This matters most
  /// for the paper's >=3D heuristic, where the unit-stride dimension is
  /// never cut and every zoid spans the full row.
  template <typename RI, typename PB>
  auto make_boundary_base(const RI& ri, const PB& pb) const {
    const auto& reach = shape_.reaches();
    const auto& grid = grid_;
    return [&ri, &pb, &reach, &grid](const Zoid<D>& z) {
      for_each_row<D>(z, [&](std::int64_t t, std::array<std::int64_t, D> idx,
                             std::int64_t row_end) {
        bool outer_safe = true;
        for (int i = 0; i + 1 < D; ++i) {
          if (idx[i] < reach[static_cast<std::size_t>(i)] ||
              idx[i] >= grid[static_cast<std::size_t>(i)] -
                            reach[static_cast<std::size_t>(i)]) {
            outer_safe = false;
            break;
          }
        }
        const std::int64_t lo = idx[D - 1];
        const std::int64_t n = grid[D - 1];
        const std::int64_t r = reach[D - 1];
        if (!outer_safe || lo < 0 || row_end > n) {
          for (idx[D - 1] = lo; idx[D - 1] < row_end; ++idx[D - 1]) pb(t, idx);
          return;
        }
        const std::int64_t safe_lo = lo > r ? lo : r;
        const std::int64_t safe_hi = row_end < n - r ? row_end : n - r;
        if (safe_lo >= safe_hi) {
          for (idx[D - 1] = lo; idx[D - 1] < row_end; ++idx[D - 1]) pb(t, idx);
          return;
        }
        for (idx[D - 1] = lo; idx[D - 1] < safe_lo; ++idx[D - 1]) pb(t, idx);
        idx[D - 1] = safe_lo;
        ri(t, idx, safe_hi);
        for (idx[D - 1] = safe_hi; idx[D - 1] < row_end; ++idx[D - 1]) pb(t, idx);
      });
    };
  }

  /// Builds a per-point functor f(t, idx) that calls the kernel with views
  /// created by `factory(array, t, idx)` for each registered array.
  template <typename K, typename Factory>
  auto make_point_fn(K& kernel, Factory factory) {
    return std::apply(
        [&kernel, factory](auto*... arrs) {
          return [&kernel, factory, arrs...](
                     std::int64_t t, const std::array<std::int64_t, D>& idx) {
            detail::call_kernel<D>(kernel, t, idx, factory(*arrs, t, idx)...);
          };
        },
        arrays_);
  }

  /// Builds a row functor f(t, idx, row_end) that instantiates views ONCE
  /// per unit-stride row via `factory(array, t, idx)` and invokes the
  /// kernel for idx[D-1] in [idx[D-1], row_end).  Paired with
  /// InteriorRowView this hoists the circular-time and row address
  /// arithmetic out of the inner loop.
  template <typename K, typename Factory>
  auto make_row_fn(K& kernel, Factory factory) {
    return std::apply(
        [&kernel, factory](auto*... arrs) {
          return [&kernel, factory, arrs...](std::int64_t t,
                                             std::array<std::int64_t, D> idx,
                                             std::int64_t row_end) {
            // The row views live here for the whole row; kernels receive
            // pointer-sized handles, so the per-point copy is trivial.
            const auto views = std::make_tuple(factory(*arrs, t, idx)...);
            std::apply(
                [&](const auto&... v) {
                  for (; idx[D - 1] < row_end; ++idx[D - 1]) {
                    detail::call_kernel<D>(kernel, t, idx, v.handle()...);
                  }
                },
                views);
          };
        },
        arrays_);
  }

  /// Per-point-view execution used by the traced and shape-checked paths,
  /// whose view factories depend on the individual home point.
  template <typename Policy, typename K, typename FI, typename FB>
  void run_with_factory(const Policy& pol, Algorithm alg, std::int64_t steps,
                        K& kernel, FI interior_fac, FB boundary_fac) {
    POCHOIR_ASSERT_MSG(registered_, "register_arrays before running");
    const auto [t0, t1] = time_range(steps);
    const WalkContext<D> ctx = context();
    const auto pi = make_point_fn(kernel, interior_fac);
    const auto pb_raw = make_point_fn(kernel, boundary_fac);
    const auto pb = wrap_boundary_point_fn(pb_raw);
    const auto ri = detail::point_fn_as_row<D>(pi);
    dispatch(pol, alg, ctx, t0, t1, ri, pb, /*interior_clone=*/true);
    steps_done_ += steps;
  }

  Shape<D> shape_;
  Options<D> opts_;
  std::tuple<Array<Ts, D>*...> arrays_{};
  std::array<std::int64_t, D> grid_{};
  bool registered_ = false;
  std::int64_t steps_done_ = 0;
};

}  // namespace pochoir
