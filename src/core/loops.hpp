// LOOPS — the straightforward loop-nest baseline (Figure 1).
//
// One serial loop over time; the outermost spatial dimension optionally
// parallelized (the paper's cilk_for baseline).  For boundary handling the
// baseline mirrors the ghost-cell trick referenced in the paper: each
// innermost row is split into a checked prefix, an unchecked interior
// middle, and a checked suffix, so interior points pay no boundary test.
// The middle runs through a *row invoker* ri(t, idx, row_end) so view setup
// and time-level address arithmetic are hoisted to row granularity (the
// same invoker the TRAP/STRAP base cases use).  Setting
// `interior_clone = false` forces the checked clone everywhere — the
// "modulo/check on every access" variant used for the §4 ablation (2.3x
// degradation on periodic heat).
#pragma once

#include <array>
#include <cstdint>

#include "core/walk_context.hpp"
#include "runtime/parallel.hpp"
#include "telemetry/trace.hpp"

namespace pochoir {

namespace detail {

template <int I, int D, typename RI, typename KB>
void loops_nest(std::int64_t t, std::array<std::int64_t, D>& idx,
                const std::array<std::int64_t, D>& grid,
                const std::array<std::int64_t, D>& reach, bool prefix_interior,
                bool interior_clone, const RI& ri, const KB& kb) {
  if constexpr (I == D - 1) {
    const std::int64_t n = grid[I];
    const std::int64_t r = reach[I];
    if (interior_clone && prefix_interior && n > 2 * r) {
      for (idx[I] = 0; idx[I] < r; ++idx[I]) kb(t, idx);
      idx[I] = r;
      ri(t, idx, n - r);
      for (idx[I] = n - r; idx[I] < n; ++idx[I]) kb(t, idx);
    } else {
      for (idx[I] = 0; idx[I] < n; ++idx[I]) kb(t, idx);
    }
  } else {
    const std::int64_t n = grid[I];
    const std::int64_t r = reach[I];
    for (idx[I] = 0; idx[I] < n; ++idx[I]) {
      const bool here_interior =
          prefix_interior && idx[I] >= r && idx[I] < n - r;
      loops_nest<I + 1, D>(t, idx, grid, reach, here_interior, interior_clone,
                           ri, kb);
    }
  }
}

template <typename Policy, typename RI, typename KB>
void loops_time_step_1d(const Policy& policy, std::int64_t t, std::int64_t n,
                        std::int64_t r, const RI& ri, const KB& kb,
                        bool interior_clone) {
  if (!interior_clone || n <= 2 * r) {
    policy.for_range(0, n, 0, [&](std::int64_t x) {
      std::array<std::int64_t, 1> idx{x};
      kb(t, idx);
    });
    return;
  }
  for (std::int64_t x = 0; x < r; ++x) {
    std::array<std::int64_t, 1> idx{x};
    kb(t, idx);
  }
  // Interior middle in row chunks: one invocation of the row invoker per
  // chunk, so view setup amortizes over the whole chunk.
  const std::int64_t lo = r;
  const std::int64_t hi = n - r;
  std::int64_t chunks = 1;
  if constexpr (Policy::is_parallel) {
    const std::int64_t target = 8 * rt::Scheduler::instance().num_threads();
    chunks = hi - lo < target ? hi - lo : target;
    if (chunks < 1) chunks = 1;
  }
  policy.for_range(0, chunks, 1, [&](std::int64_t c) {
    const std::int64_t a = lo + (hi - lo) * c / chunks;
    const std::int64_t b = lo + (hi - lo) * (c + 1) / chunks;
    std::array<std::int64_t, 1> idx{a};
    ri(t, idx, b);
  });
  for (std::int64_t x = hi; x < n; ++x) {
    std::array<std::int64_t, 1> idx{x};
    kb(t, idx);
  }
}

}  // namespace detail

/// Runs the loop-nest baseline over [t0, t1) x grid.  `ri` is the interior
/// row invoker f(t, idx, row_end); `kb` is the checked per-point boundary
/// functor f(t, idx).
template <int D, typename Policy, typename RI, typename KB>
void run_loops(const WalkContext<D>& ctx, const Policy& policy,
               std::int64_t t0, std::int64_t t1, const RI& ri, const KB& kb,
               bool interior_clone = true) {
  const auto& grid = ctx.grid;
  const auto& reach = ctx.reach;
  // Telemetry at time-step granularity: one spatial-volume increment per
  // completed step, nothing inside the nest.
  std::uint64_t step_points = 1;
  for (int i = 0; i < D; ++i) {
    step_points *= static_cast<std::uint64_t>(grid[static_cast<std::size_t>(i)]);
  }
  for (std::int64_t t = t0; t < t1; ++t) {
    // Cancellation unwinds between whole time steps; the loops engine has
    // no finer consistent boundary.
    if (ctx.should_stop()) return;
    trace::Span span(ctx.trace_depth >= 0 ? "loops_step" : nullptr, t);
    if constexpr (D == 1) {
      detail::loops_time_step_1d(policy, t, grid[0], reach[0], ri, kb,
                                 interior_clone);
    } else {
      policy.for_range(0, grid[0], 0, [&](std::int64_t x0) {
        std::array<std::int64_t, D> idx{};
        idx[0] = x0;
        const bool slab_interior = x0 >= reach[0] && x0 < grid[0] - reach[0];
        detail::loops_nest<1, D>(t, idx, grid, reach, slab_interior,
                                 interior_clone, ri, kb);
      });
    }
    if (ctx.stats != nullptr) ctx.stats->on_loops_step(step_points);
  }
}

}  // namespace pochoir
