// LOOPS — the straightforward loop-nest baseline (Figure 1).
//
// One serial loop over time; the outermost spatial dimension optionally
// parallelized (the paper's cilk_for baseline).  For boundary handling the
// baseline mirrors the ghost-cell trick referenced in the paper: each
// innermost row is split into a checked prefix, an unchecked interior
// middle, and a checked suffix, so interior points pay no boundary test.
// Setting `interior_clone = false` forces the checked clone everywhere —
// the "modulo/check on every access" variant used for the §4 ablation
// (2.3x degradation on periodic heat).
#pragma once

#include <array>
#include <cstdint>

#include "core/walk_context.hpp"
#include "runtime/parallel.hpp"

namespace pochoir {

namespace detail {

template <int I, int D, typename KI, typename KB>
void loops_nest(std::int64_t t, std::array<std::int64_t, D>& idx,
                const std::array<std::int64_t, D>& grid,
                const std::array<std::int64_t, D>& reach, bool prefix_interior,
                bool interior_clone, const KI& ki, const KB& kb) {
  if constexpr (I == D - 1) {
    const std::int64_t n = grid[I];
    const std::int64_t r = reach[I];
    if (interior_clone && prefix_interior && n > 2 * r) {
      for (idx[I] = 0; idx[I] < r; ++idx[I]) kb(t, idx);
      for (idx[I] = r; idx[I] < n - r; ++idx[I]) ki(t, idx);
      for (idx[I] = n - r; idx[I] < n; ++idx[I]) kb(t, idx);
    } else {
      for (idx[I] = 0; idx[I] < n; ++idx[I]) kb(t, idx);
    }
  } else {
    const std::int64_t n = grid[I];
    const std::int64_t r = reach[I];
    for (idx[I] = 0; idx[I] < n; ++idx[I]) {
      const bool here_interior =
          prefix_interior && idx[I] >= r && idx[I] < n - r;
      loops_nest<I + 1, D>(t, idx, grid, reach, here_interior, interior_clone,
                           ki, kb);
    }
  }
}

template <typename Policy, typename KI, typename KB>
void loops_time_step_1d(const Policy& policy, std::int64_t t, std::int64_t n,
                        std::int64_t r, const KI& ki, const KB& kb,
                        bool interior_clone) {
  policy.for_range(0, n, 0, [&](std::int64_t x) {
    std::array<std::int64_t, 1> idx{x};
    if (interior_clone && x >= r && x < n - r) {
      ki(t, idx);
    } else {
      kb(t, idx);
    }
  });
}

}  // namespace detail

/// Runs the loop-nest baseline over [t0, t1) x grid.  `ki`/`kb` are the
/// interior and boundary point functors f(t, idx).
template <int D, typename Policy, typename KI, typename KB>
void run_loops(const WalkContext<D>& ctx, const Policy& policy,
               std::int64_t t0, std::int64_t t1, const KI& ki, const KB& kb,
               bool interior_clone = true) {
  const auto& grid = ctx.grid;
  const auto& reach = ctx.reach;
  for (std::int64_t t = t0; t < t1; ++t) {
    if constexpr (D == 1) {
      detail::loops_time_step_1d(policy, t, grid[0], reach[0], ki, kb,
                                 interior_clone);
    } else {
      policy.for_range(0, grid[0], 0, [&](std::int64_t x0) {
        std::array<std::int64_t, D> idx{};
        idx[0] = x0;
        const bool slab_interior = x0 >= reach[0] && x0 < grid[0] - reach[0];
        detail::loops_nest<1, D>(t, idx, grid, reach, slab_interior,
                                 interior_clone, ki, kb);
      });
    }
  }
}

}  // namespace pochoir
