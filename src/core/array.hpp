// Pochoir arrays — §2 of the paper (Pochoir_Array_dimD).
//
// An Array<T, D> is a D-dimensional spatial grid with a circular temporal
// dimension of depth+1 levels (times are reused modulo depth+1 as the
// computation proceeds).  Storage is row-major with the last spatial
// dimension unit-stride, 64-byte aligned, and owned by the array (the
// paper's copy-in/copy-out design keeps layout under library control).
//
// Access paths:
//   at(t, i...)        unchecked reference         (the "interior" path)
//   get(t, i...)       checked read; off-domain coordinates are served by
//                      the array's boundary function (the "boundary" path)
//   operator()(t,i...) checked read/write proxy — the Phase-1 template-
//                      library semantics of Figure 6.
#pragma once

#include <array>
#include <cstdint>
#include <functional>
#include <ostream>
#include <type_traits>
#include <utility>

#include "support/aligned_buffer.hpp"
#include "support/assertion.hpp"
#include "support/error.hpp"
#include "support/math_util.hpp"

namespace pochoir {

template <typename T, int D>
class Array;

/// Boundary function: supplies the value of off-domain grid points.
/// Equivalent to the paper's Pochoir_Boundary_dimD construct.
template <typename T, int D>
using BoundaryFn = std::function<T(const Array<T, D>&, std::int64_t,
                                   const std::array<std::int64_t, D>&)>;

template <typename T, int D>
class Array {
 public:
  using value_type = T;
  static constexpr int kDims = D;

  /// Convenience constructor with sizes in natural order and depth 1:
  /// Array<double, 2> u(X, Y);
  template <typename... Sz>
    requires(sizeof...(Sz) == D && (std::is_integral_v<Sz> && ...))
  explicit Array(Sz... sizes)
      : Array(std::array<std::int64_t, D>{static_cast<std::int64_t>(sizes)...},
              1) {}

  /// Brace-friendly constructor: Array<double, 2> u({X, Y}, depth).
  Array(std::initializer_list<std::int64_t> extents, std::int64_t depth = 1)
      : Array(to_extents(extents), depth) {}

  /// Creates a grid with the given spatial extents and temporal depth
  /// (depth+1 circular time levels; depth must match the stencil shape).
  /// Constructor misuse (non-positive extents or depth) throws
  /// pochoir::Error — it is user input, not an internal invariant.
  explicit Array(std::array<std::int64_t, D> extents, std::int64_t depth = 1)
      : extents_(extents), levels_(depth + 1) {
    detail::check_usage(depth >= 1, "array temporal depth must be >= 1");
    std::int64_t stride = 1;
    for (int i = D - 1; i >= 0; --i) {
      detail::check_usage(extents_[static_cast<std::size_t>(i)] >= 1,
                          "array extents must be positive");
      strides_[static_cast<std::size_t>(i)] = stride;
      stride *= extents_[static_cast<std::size_t>(i)];
    }
    level_size_ = stride;
    storage_ = AlignedBuffer<T>(
        static_cast<std::size_t>(level_size_ * levels_));
  }

  /// Extent of spatial dimension i in natural order (0 = outermost,
  /// D-1 = unit stride).
  [[nodiscard]] std::int64_t extent(int i) const {
    return extents_[static_cast<std::size_t>(i)];
  }
  [[nodiscard]] const std::array<std::int64_t, D>& extents() const {
    return extents_;
  }

  /// Paper-compatible size(i): dimension indices count from the
  /// unit-stride dimension upward, so size(0) == extent(D-1).
  [[nodiscard]] std::int64_t size(int i) const { return extent(D - 1 - i); }

  /// Number of circular time levels (stencil depth + 1).
  [[nodiscard]] std::int64_t time_levels() const { return levels_; }

  /// Grid points per time level.
  [[nodiscard]] std::int64_t level_size() const { return level_size_; }

  /// Element stride of spatial dimension i.
  [[nodiscard]] std::int64_t stride(int i) const {
    return strides_[static_cast<std::size_t>(i)];
  }

  /// Base pointer of the backing store (time level 0, origin).
  [[nodiscard]] T* data() { return storage_.data(); }
  [[nodiscard]] const T* data() const { return storage_.data(); }

  /// Total elements across all time levels.
  [[nodiscard]] std::int64_t total_size() const { return level_size_ * levels_; }

  /// True if idx lies inside the spatial domain.
  [[nodiscard]] bool in_domain(const std::array<std::int64_t, D>& idx) const {
    for (int i = 0; i < D; ++i) {
      const auto u = static_cast<std::uint64_t>(idx[static_cast<std::size_t>(i)]);
      if (u >= static_cast<std::uint64_t>(extents_[static_cast<std::size_t>(i)])) {
        return false;
      }
    }
    return true;
  }

  /// Linear element index of (t, idx) in the backing store.
  [[nodiscard]] std::int64_t linear_index(
      std::int64_t t, const std::array<std::int64_t, D>& idx) const {
    return wrap_time(t) * level_size_ + spatial_offset(idx);
  }

  // --- unchecked access ("interior clone" path) ---------------------------

  /// Unchecked reference; idx must be in-domain.
  [[nodiscard]] T& at(std::int64_t t, const std::array<std::int64_t, D>& idx) {
    POCHOIR_DEBUG_ASSERT(in_domain(idx));
    return storage_[static_cast<std::size_t>(linear_index(t, idx))];
  }
  [[nodiscard]] const T& at(std::int64_t t,
                            const std::array<std::int64_t, D>& idx) const {
    POCHOIR_DEBUG_ASSERT(in_domain(idx));
    return storage_[static_cast<std::size_t>(linear_index(t, idx))];
  }

  /// Variadic unchecked access: a.interior(t, x, y) in the paper's naming.
  template <typename... Idx>
  [[nodiscard]] T& interior(std::int64_t t, Idx... i) {
    static_assert(sizeof...(Idx) == D);
    return at(t, std::array<std::int64_t, D>{static_cast<std::int64_t>(i)...});
  }
  template <typename... Idx>
  [[nodiscard]] const T& interior(std::int64_t t, Idx... i) const {
    static_assert(sizeof...(Idx) == D);
    return at(t, std::array<std::int64_t, D>{static_cast<std::int64_t>(i)...});
  }

  // --- checked access ("boundary clone" path) -----------------------------

  /// Checked read: in-domain points come from storage, off-domain points
  /// from the boundary function.
  [[nodiscard]] T get(std::int64_t t,
                      const std::array<std::int64_t, D>& idx) const {
    if (in_domain(idx)) return at(t, idx);
    POCHOIR_ASSERT_MSG(static_cast<bool>(boundary_),
                       "off-domain access without a registered boundary "
                       "function (Register_Boundary)");
    return boundary_(*this, t, idx);
  }

  template <typename... Idx>
  [[nodiscard]] T get(std::int64_t t, Idx... i) const {
    static_assert(sizeof...(Idx) == D);
    return get(t, std::array<std::int64_t, D>{static_cast<std::int64_t>(i)...});
  }

  /// Registers the boundary function (each array has exactly one; a new
  /// registration replaces the previous one, as in §2).
  void register_boundary(BoundaryFn<T, D> fn) { boundary_ = std::move(fn); }

  /// True once a boundary function has been registered.
  [[nodiscard]] bool has_boundary() const { return static_cast<bool>(boundary_); }

  [[nodiscard]] const BoundaryFn<T, D>& boundary() const { return boundary_; }

  // --- Phase-1 proxy access (Figure 6 semantics) ---------------------------

  /// Read/write proxy for one grid point: reads are boundary-checked,
  /// writes must land in-domain.
  class Ref {
   public:
    Ref(Array& a, std::int64_t t, std::array<std::int64_t, D> idx)
        : a_(a), t_(t), idx_(idx) {}

    operator T() const { return a_.get(t_, idx_); }  // NOLINT(google-explicit-constructor)

    Ref& operator=(const T& v) {
      POCHOIR_ASSERT_MSG(a_.in_domain(idx_), "write outside the domain");
      a_.at(t_, idx_) = v;
      return *this;
    }
    Ref& operator=(const Ref& other) { return *this = static_cast<T>(other); }
    Ref& operator+=(const T& v) { return *this = static_cast<T>(*this) + v; }
    Ref& operator-=(const T& v) { return *this = static_cast<T>(*this) - v; }
    Ref& operator*=(const T& v) { return *this = static_cast<T>(*this) * v; }

    /// Explicit value read (useful where implicit conversion is awkward).
    [[nodiscard]] T value() const { return static_cast<T>(*this); }

   private:
    Array& a_;
    std::int64_t t_;
    std::array<std::int64_t, D> idx_;
  };

  template <typename... Idx>
  [[nodiscard]] Ref operator()(std::int64_t t, Idx... i) {
    static_assert(sizeof...(Idx) == D);
    return Ref(*this, t,
               std::array<std::int64_t, D>{static_cast<std::int64_t>(i)...});
  }

  template <typename... Idx>
  [[nodiscard]] T operator()(std::int64_t t, Idx... i) const {
    return get(t, i...);
  }

  /// Fills time level of `t` by evaluating f(idx) at every point; handy for
  /// initial conditions.
  template <typename F>
  void fill_time(std::int64_t t, F&& f) {
    std::array<std::int64_t, D> idx{};
    fill_rec<0>(t, idx, f);
  }

  /// Pretty printer (the paper overloads << for Pochoir arrays).  Prints
  /// the newest time level for 1D/2D arrays, a summary otherwise.
  friend std::ostream& operator<<(std::ostream& os, const Array& a) {
    os << "Pochoir_Array<" << D << "d> extents=";
    for (int i = 0; i < D; ++i) os << (i != 0 ? "x" : "") << a.extent(i);
    os << " levels=" << a.levels_ << "\n";
    return os;
  }

 private:
  static std::array<std::int64_t, D> to_extents(
      std::initializer_list<std::int64_t> list) {
    detail::check_usage(list.size() == static_cast<std::size_t>(D),
                        "extent count must equal the dimensionality");
    std::array<std::int64_t, D> out{};
    std::size_t i = 0;
    for (std::int64_t v : list) out[i++] = v;
    return out;
  }

  template <int I, typename F>
  void fill_rec(std::int64_t t, std::array<std::int64_t, D>& idx, F&& f) {
    if constexpr (I == D) {
      at(t, idx) = f(const_cast<const std::array<std::int64_t, D>&>(idx));
    } else {
      for (idx[I] = 0; idx[I] < extents_[I]; ++idx[I]) fill_rec<I + 1>(t, idx, f);
    }
  }

  [[nodiscard]] std::int64_t wrap_time(std::int64_t t) const {
    return mod_floor(t, levels_);
  }

  [[nodiscard]] std::int64_t spatial_offset(
      const std::array<std::int64_t, D>& idx) const {
    std::int64_t off = 0;
    for (int i = 0; i < D; ++i) {
      off += idx[static_cast<std::size_t>(i)] * strides_[static_cast<std::size_t>(i)];
    }
    return off;
  }

  std::array<std::int64_t, D> extents_{};
  std::array<std::int64_t, D> strides_{};
  std::int64_t levels_ = 2;
  std::int64_t level_size_ = 0;
  AlignedBuffer<T> storage_;
  BoundaryFn<T, D> boundary_;
};

}  // namespace pochoir
