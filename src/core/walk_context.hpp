// Shared walk parameters for TRAP/STRAP: stencil slopes, halo reach, grid
// extents (for the interior/boundary zoid test), coarsening thresholds, and
// the cooperative cancellation token polled at zoid granularity.
#pragma once

#include <array>
#include <cstdint>

#include "core/options.hpp"
#include "core/shape.hpp"
#include "geometry/zoid.hpp"
#include "support/cancellation.hpp"
#include "telemetry/stats.hpp"

namespace pochoir {

template <int D>
struct WalkContext {
  std::array<std::int64_t, D> sigma{};
  std::array<std::int64_t, D> reach{};
  std::array<std::int64_t, D> grid{};
  std::int64_t dt_threshold = 1;
  std::array<std::int64_t, D> dx_threshold{};
  /// Optional cancellation token; walkers decline further work once it
  /// fires and unwind without touching more grid points.
  const CancelToken* cancel = nullptr;
  /// Optional walk-counter sink (telemetry).  Null = counting off; walkers
  /// increment at zoid/time-step granularity only, never in inner loops.
  telemetry::WalkStats* stats = nullptr;
  /// Zoid recursion levels at or above this depth emit trace spans
  /// (-1 = tracing off for this walk).
  int trace_depth = -1;

  /// Hot-path poll for the walkers and the loops engine.
  [[nodiscard]] bool should_stop() const {
    return cancel != nullptr && cancel->cancelled();
  }

  static WalkContext make(const Shape<D>& shape,
                          const std::array<std::int64_t, D>& grid,
                          const Options<D>& opts) {
    WalkContext ctx;
    // The walking slope must respect anti-dependencies as well as data
    // dependencies: with depth k >= 2, the write at invocation t reuses the
    // circular time level holding grid time t-k, which readers at
    // invocation t-1 may still need at spatial distance up to reach_i
    // (sigma_i only bounds offset/span).  Using reach_i as the cut slope is
    // safe for both directions; for depth-1 stencils (every benchmark in
    // the paper) reach_i == sigma_i, so nothing changes there.
    ctx.sigma = shape.reaches();
    ctx.reach = shape.reaches();
    ctx.grid = grid;
    ctx.dt_threshold = opts.dt_threshold < 1 ? 1 : opts.dt_threshold;
    ctx.dx_threshold = opts.dx_threshold;
    for (auto& th : ctx.dx_threshold) {
      if (th < 1) th = 1;
    }
    return ctx;
  }

  /// Shifts any dimension whose entire span lies at or beyond the seam back
  /// by the period (virtual -> true coordinates, §4).  Subzoids of a seam
  /// triangle stop crossing the seam after further cuts; normalizing them
  /// re-engages the interior fast path.
  [[nodiscard]] Zoid<D> normalize(Zoid<D> z) const {
    for (int i = 0; i < D; ++i) {
      const std::int64_t n = grid[static_cast<std::size_t>(i)];
      while (z.min_lo(i) >= n) {
        z.x0[i] -= n;
        z.x1[i] -= n;
      }
    }
    return z;
  }

  /// A zoid is *interior* when every access made while processing it stays
  /// inside the grid; interior zoids run the fast unchecked clone, and all
  /// subzoids of an interior zoid remain interior (§4, code cloning).
  [[nodiscard]] bool is_interior(const Zoid<D>& z) const {
    for (int i = 0; i < D; ++i) {
      if (z.min_lo(i) - reach[static_cast<std::size_t>(i)] < 0) return false;
      if (z.max_hi(i) + reach[static_cast<std::size_t>(i)] >
          grid[static_cast<std::size_t>(i)]) {
        return false;
      }
    }
    return true;
  }
};

}  // namespace pochoir
