// Tap-based linear stencils with pointer-walking base cases — the library
// form of the compiler's -split-pointer optimization (§4, Figure 12(c)).
//
// A linear stencil computes  u(t+home, x) = sum_j coeff_j * u(t+dt_j, x+dx_j).
// Given the taps, the base case materializes one C-style pointer per term
// and walks all of them down the unit-stride dimension, exactly like the
// postsource in Figure 12(c): address arithmetic happens once per row, and
// the inner loop is pure loads/stores with pointer increments.  The generic
// per-point path (views + full index arithmetic per access) plays the role
// of -split-macro-shadow in the Figure 13 comparison.
#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "core/array.hpp"
#include "core/shape.hpp"
#include "geometry/zoid.hpp"
#include "support/assertion.hpp"
#include "support/math_util.hpp"

namespace pochoir {

template <typename T, int D>
class LinearStencil {
 public:
  /// One term of the update: value at offset (dt, dx) scaled by coeff.
  struct Tap {
    std::int64_t dt = 0;
    std::array<std::int64_t, D> dx{};
    T coeff{};
  };

  /// `home_dt` is the time offset of the written cell (1 for the
  /// u(t+1,...) = f(u(t,...)) convention).
  LinearStencil(std::int64_t home_dt, std::vector<Tap> taps)
      : home_dt_(home_dt), taps_(std::move(taps)) {
    POCHOIR_ASSERT_MSG(!taps_.empty(), "a linear stencil needs taps");
    for (const Tap& tap : taps_) {
      POCHOIR_ASSERT_MSG(tap.dt < home_dt_,
                         "taps must read strictly earlier time levels");
    }
  }

  [[nodiscard]] std::int64_t home_dt() const { return home_dt_; }
  [[nodiscard]] const std::vector<Tap>& taps() const { return taps_; }

  /// The equivalent Pochoir shape (home cell first).
  [[nodiscard]] Shape<D> shape() const {
    std::vector<ShapeCell<D>> cells;
    cells.reserve(taps_.size() + 1);
    cells.push_back({home_dt_, {}});
    for (const Tap& tap : taps_) cells.push_back({tap.dt, tap.dx});
    return Shape<D>(std::move(cells));
  }

  /// Split-pointer base case for interior zoids: per row, one pointer per
  /// tap, incremented down the unit-stride dimension.
  void base_interior(Array<T, D>& a, const Zoid<D>& z) const {
    const std::int64_t levels = a.time_levels();
    const std::int64_t ls = a.level_size();
    T* const base = a.data();
    const std::size_t num_taps = taps_.size();
    POCHOIR_ASSERT(num_taps <= kMaxTaps);

    // Per-tap spatial offset (constant across the walk).
    std::array<std::int64_t, kMaxTaps> tap_spatial{};
    for (std::size_t j = 0; j < num_taps; ++j) {
      std::int64_t off = 0;
      for (int i = 0; i < D; ++i) off += taps_[j].dx[i] * a.stride(i);
      tap_spatial[j] = off;
    }

    std::array<std::int64_t, D> lo = z.x0;
    std::array<std::int64_t, D> hi = z.x1;
    for (std::int64_t t = z.t0; t < z.t1; ++t) {
      T* const out_level = base + mod_floor(t + home_dt_, levels) * ls;
      std::array<T*, kMaxTaps> tap_level;
      for (std::size_t j = 0; j < num_taps; ++j) {
        tap_level[j] = base + mod_floor(t + taps_[j].dt, levels) * ls;
      }
      walk_rows(a, lo, hi, [&](std::int64_t row_off, std::int64_t lo_last,
                               std::int64_t len) {
        T* out = out_level + row_off + lo_last;
        std::array<const T*, kMaxTaps> p;
        std::array<T, kMaxTaps> coeff;
        for (std::size_t j = 0; j < num_taps; ++j) {
          p[j] = tap_level[j] + row_off + lo_last + tap_spatial[j];
          coeff[j] = taps_[j].coeff;
        }
        row_update(out, p, coeff, num_taps, len);
      });
      for (int i = 0; i < D; ++i) {
        lo[i] += z.dx0[i];
        hi[i] += z.dx1[i];
      }
    }
  }

  /// Checked base case for boundary zoids: true coordinates via modulo,
  /// off-domain reads via the array's boundary function.
  void base_boundary(Array<T, D>& a, const Zoid<D>& z) const {
    for_each_point(z, [&](std::int64_t t, const std::array<std::int64_t, D>& v) {
      std::array<std::int64_t, D> idx;
      for (int i = 0; i < D; ++i) idx[i] = mod_floor(v[i], a.extent(i));
      T acc{};
      for (const Tap& tap : taps_) {
        std::array<std::int64_t, D> at;
        for (int i = 0; i < D; ++i) at[i] = idx[i] + tap.dx[i];
        acc += tap.coeff * a.get(t + tap.dt, at);
      }
      a.at(t + home_dt_, idx) = acc;
    });
  }

 private:
  static constexpr std::size_t kMaxTaps = 32;

  /// Unit-stride row update with a compile-time tap count for the common
  /// sizes, so the inner loop fully unrolls and vectorizes like the
  /// hand-written pointer code of Figure 12(c).
  template <std::size_t J>
  static void row_update_fixed(T* __restrict out,
                               const std::array<const T*, kMaxTaps>& p,
                               const std::array<T, kMaxTaps>& coeff,
                               std::int64_t len) {
    for (std::int64_t n = 0; n < len; ++n) {
      T acc = coeff[0] * p[0][n];
      for (std::size_t j = 1; j < J; ++j) acc += coeff[j] * p[j][n];
      out[n] = acc;
    }
  }

  static void row_update(T* out, const std::array<const T*, kMaxTaps>& p,
                         const std::array<T, kMaxTaps>& coeff,
                         std::size_t num_taps, std::int64_t len) {
    switch (num_taps) {
      case 3: return row_update_fixed<3>(out, p, coeff, len);
      case 4: return row_update_fixed<4>(out, p, coeff, len);
      case 5: return row_update_fixed<5>(out, p, coeff, len);
      case 6: return row_update_fixed<6>(out, p, coeff, len);
      case 7: return row_update_fixed<7>(out, p, coeff, len);
      case 8: return row_update_fixed<8>(out, p, coeff, len);
      case 9: return row_update_fixed<9>(out, p, coeff, len);
      default:
        for (std::int64_t n = 0; n < len; ++n) {
          T acc{};
          for (std::size_t j = 0; j < num_taps; ++j) acc += coeff[j] * p[j][n];
          out[n] = acc;
        }
    }
  }

  /// Invokes fn(row_offset, lo_last, length) for every unit-stride row of
  /// the box [lo, hi).
  template <typename F>
  void walk_rows(const Array<T, D>& a, const std::array<std::int64_t, D>& lo,
                 const std::array<std::int64_t, D>& hi, F&& fn) const {
    const std::int64_t len = hi[D - 1] - lo[D - 1];
    if (len <= 0) return;
    if constexpr (D == 1) {
      fn(0, lo[0], len);
    } else {
      std::array<std::int64_t, D - 1> idx;
      for (int i = 0; i < D - 1; ++i) {
        if (lo[i] >= hi[i]) return;  // empty box at this time step
        idx[i] = lo[i];
      }
      while (true) {
        std::int64_t row_off = 0;
        for (int i = 0; i < D - 1; ++i) row_off += idx[i] * a.stride(i);
        fn(row_off, lo[D - 1], len);
        int i = D - 2;
        for (; i >= 0; --i) {
          if (++idx[i] < hi[i]) break;
          idx[i] = lo[i];
        }
        if (i < 0) break;
      }
    }
  }

  std::int64_t home_dt_;
  std::vector<Tap> taps_;
};

}  // namespace pochoir
