// Kernel views: the library-form of Pochoir's code cloning (§4).
//
// The Pochoir compiler clones the user kernel into a fast *interior* clone
// (no boundary checks) and a slower *boundary* clone (checked accesses that
// may call the boundary function).  Here the user writes one generic kernel
//
//     auto kern = [](int64_t t, int64_t x, int64_t y, auto u) {
//       u(t+1, x, y) = ... u(t, x-1, y) ...;
//     };
//
// and the walker instantiates it twice: with InteriorView (raw references,
// compiles to direct loads/stores) and with BoundaryView (a proxy whose
// reads consult the boundary function when off-domain).  Because both view
// types expose the same expression interface, a kernel that compiles
// against the checked view compiles against the unchecked one — the
// library-level restatement of the Pochoir Guarantee.
//
// For struct-valued cells (e.g. the LBM distribution record), use the
// read()/write() methods, which both views also share.
#pragma once

#include <array>
#include <cstdint>

#include "core/array.hpp"
#include "core/shape.hpp"
#include "support/assertion.hpp"

namespace pochoir {

/// Unchecked view: the interior clone's access path.
template <typename T, int D>
class InteriorView {
 public:
  explicit InteriorView(Array<T, D>& a) : a_(&a) {}

  template <typename... Idx>
  [[nodiscard]] T& operator()(std::int64_t t, Idx... i) const {
    static_assert(sizeof...(Idx) == D);
    return a_->at(t, std::array<std::int64_t, D>{static_cast<std::int64_t>(i)...});
  }

  template <typename... Idx>
  [[nodiscard]] T read(std::int64_t t, Idx... i) const {
    return operator()(t, i...);
  }

  /// write(t, idx..., value)
  template <typename... Rest>
  void write(std::int64_t t, Rest... rest) const {
    write_impl(t, std::make_index_sequence<sizeof...(Rest) - 1>{}, rest...);
  }

  [[nodiscard]] Array<T, D>& array() const { return *a_; }

 private:
  template <std::size_t... Is, typename... Rest>
  void write_impl(std::int64_t t, std::index_sequence<Is...>, Rest... rest) const {
    auto tuple = std::forward_as_tuple(rest...);
    std::array<std::int64_t, D> idx{
        static_cast<std::int64_t>(std::get<Is>(tuple))...};
    a_->at(t, idx) = std::get<sizeof...(Rest) - 1>(tuple);
  }

  Array<T, D>* a_;
};

/// Unchecked view with row-granularity address hoisting: the interior
/// clone's access path used by the row-walking base case.  Constructed once
/// per unit-stride row, it resolves the circular-time-level base pointer of
/// every dt the shape can reach ONCE (one mod_floor per level per row), so
/// each access in the inner loop is a table lookup plus a linear offset the
/// compiler strength-reduces — the library analogue of the hoisted pointers
/// in the compiler's -split-pointer postsource (Figure 12(c)).
///
/// `home_dt` anchors the reachable window: a kernel invoked at time t only
/// touches t+dt for dt in [home_dt - depth, home_dt] (shape rule: reads are
/// strictly earlier than the written cell), i.e. exactly time_levels()
/// distinct absolute times.
template <typename T, int D>
class InteriorRowView {
 public:
  static constexpr std::int64_t kMaxTimeLevels = 16;

  InteriorRowView(Array<T, D>& a, std::int64_t t_row, std::int64_t home_dt)
      : a_(&a),
        t_lo_(t_row + home_dt - a.time_levels() + 1),
        levels_(a.time_levels()) {
    POCHOIR_ASSERT(levels_ <= kMaxTimeLevels);
    T* const base = a.data();
    const std::int64_t ls = a.level_size();
    for (std::int64_t k = 0; k < levels_; ++k) {
      level_base_[static_cast<std::size_t>(k)] =
          base + mod_floor(t_lo_ + k, levels_) * ls;
    }
    for (int i = 0; i < D; ++i) strides_[static_cast<std::size_t>(i)] = a.stride(i);
  }

  /// Pointer-sized proxy handed to kernels.  Kernels take views by value
  /// per invocation; copying the full row view (its level-pointer table is
  /// past the scalarization threshold) per point would drown the win, so
  /// the kernel-facing object is one pointer into the row-lifetime view.
  class Handle {
   public:
    explicit Handle(const InteriorRowView* v) : v_(v) {}

    template <typename... Idx>
    [[nodiscard]] T& operator()(std::int64_t t, Idx... i) const {
      return (*v_)(t, i...);
    }
    template <typename... Idx>
    [[nodiscard]] T read(std::int64_t t, Idx... i) const {
      return v_->read(t, i...);
    }
    template <typename... Rest>
    void write(std::int64_t t, Rest... rest) const {
      v_->write(t, rest...);
    }
    [[nodiscard]] Array<T, D>& array() const { return v_->array(); }

   private:
    const InteriorRowView* v_;
  };

  [[nodiscard]] Handle handle() const { return Handle(this); }

  template <typename... Idx>
  [[nodiscard]] T& operator()(std::int64_t t, Idx... i) const {
    static_assert(sizeof...(Idx) == D);
    return *(level_ptr(t) +
             spatial_offset(std::array<std::int64_t, D>{
                 static_cast<std::int64_t>(i)...}));
  }

  template <typename... Idx>
  [[nodiscard]] T read(std::int64_t t, Idx... i) const {
    return operator()(t, i...);
  }

  /// write(t, idx..., value)
  template <typename... Rest>
  void write(std::int64_t t, Rest... rest) const {
    write_impl(t, std::make_index_sequence<sizeof...(Rest) - 1>{}, rest...);
  }

  [[nodiscard]] Array<T, D>& array() const { return *a_; }

 private:
  [[nodiscard]] T* level_ptr(std::int64_t t) const {
    POCHOIR_DEBUG_ASSERT(t >= t_lo_ && t < t_lo_ + levels_);
    return level_base_[static_cast<std::size_t>(t - t_lo_)];
  }

  [[nodiscard]] std::int64_t spatial_offset(
      const std::array<std::int64_t, D>& idx) const {
    std::int64_t off = 0;
    for (int i = 0; i < D; ++i) {
      off += idx[static_cast<std::size_t>(i)] * strides_[static_cast<std::size_t>(i)];
    }
    return off;
  }

  template <std::size_t... Is, typename... Rest>
  void write_impl(std::int64_t t, std::index_sequence<Is...>, Rest... rest) const {
    auto tuple = std::forward_as_tuple(rest...);
    std::array<std::int64_t, D> idx{
        static_cast<std::int64_t>(std::get<Is>(tuple))...};
    *(level_ptr(t) + spatial_offset(idx)) = std::get<sizeof...(Rest) - 1>(tuple);
  }

  Array<T, D>* a_;
  std::int64_t t_lo_;
  std::int64_t levels_;
  std::array<T*, kMaxTimeLevels> level_base_{};
  std::array<std::int64_t, D> strides_{};
};

/// Checked view: the boundary clone's access path.  Reads route off-domain
/// coordinates to the boundary function; writes always target the home
/// point, which the walker guarantees is in-domain.
template <typename T, int D>
class BoundaryView {
 public:
  explicit BoundaryView(Array<T, D>& a) : a_(&a) {}

  /// Read/write proxy for one grid point.
  class Ref {
   public:
    Ref(Array<T, D>& a, std::int64_t t, std::array<std::int64_t, D> idx)
        : a_(&a), t_(t), idx_(idx) {}

    operator T() const { return a_->get(t_, idx_); }  // NOLINT(google-explicit-constructor)

    Ref& operator=(const T& v) {
      POCHOIR_DEBUG_ASSERT(a_->in_domain(idx_));
      a_->at(t_, idx_) = v;
      return *this;
    }
    Ref& operator=(const Ref& other) { return *this = static_cast<T>(other); }
    Ref& operator+=(const T& v) { return *this = static_cast<T>(*this) + v; }
    Ref& operator-=(const T& v) { return *this = static_cast<T>(*this) - v; }
    Ref& operator*=(const T& v) { return *this = static_cast<T>(*this) * v; }
    [[nodiscard]] T value() const { return static_cast<T>(*this); }

   private:
    Array<T, D>* a_;
    std::int64_t t_;
    std::array<std::int64_t, D> idx_;
  };

  template <typename... Idx>
  [[nodiscard]] Ref operator()(std::int64_t t, Idx... i) const {
    static_assert(sizeof...(Idx) == D);
    return Ref(*a_, t,
               std::array<std::int64_t, D>{static_cast<std::int64_t>(i)...});
  }

  template <typename... Idx>
  [[nodiscard]] T read(std::int64_t t, Idx... i) const {
    static_assert(sizeof...(Idx) == D);
    return a_->get(t, std::array<std::int64_t, D>{static_cast<std::int64_t>(i)...});
  }

  /// write(t, idx..., value)
  template <typename... Rest>
  void write(std::int64_t t, Rest... rest) const {
    write_impl(t, std::make_index_sequence<sizeof...(Rest) - 1>{}, rest...);
  }

  [[nodiscard]] Array<T, D>& array() const { return *a_; }

 private:
  template <std::size_t... Is, typename... Rest>
  void write_impl(std::int64_t t, std::index_sequence<Is...>, Rest... rest) const {
    auto tuple = std::forward_as_tuple(rest...);
    std::array<std::int64_t, D> idx{
        static_cast<std::int64_t>(std::get<Is>(tuple))...};
    POCHOIR_DEBUG_ASSERT(a_->in_domain(idx));
    a_->at(t, idx) = std::get<sizeof...(Rest) - 1>(tuple);
  }

  Array<T, D>* a_;
};

/// Checked view that additionally records every in-domain memory touch in a
/// Sink (e.g. the ideal-cache simulator).  Off-domain reads go through the
/// boundary function and are not traced (they are O(surface) rare).
template <typename T, int D, typename Sink>
class TracedView {
 public:
  TracedView(Array<T, D>& a, Sink& sink) : a_(&a), sink_(&sink) {}

  class Ref {
   public:
    Ref(Array<T, D>& a, Sink& sink, std::int64_t t,
        std::array<std::int64_t, D> idx)
        : a_(&a), sink_(&sink), t_(t), idx_(idx) {}

    operator T() const {  // NOLINT(google-explicit-constructor)
      if (a_->in_domain(idx_)) {
        const T& ref = a_->at(t_, idx_);
        sink_->touch(&ref, sizeof(T));
        return ref;
      }
      return a_->get(t_, idx_);
    }

    Ref& operator=(const T& v) {
      T& ref = a_->at(t_, idx_);
      sink_->touch(&ref, sizeof(T));
      ref = v;
      return *this;
    }
    Ref& operator=(const Ref& other) { return *this = static_cast<T>(other); }
    Ref& operator+=(const T& v) { return *this = static_cast<T>(*this) + v; }
    Ref& operator-=(const T& v) { return *this = static_cast<T>(*this) - v; }
    Ref& operator*=(const T& v) { return *this = static_cast<T>(*this) * v; }
    [[nodiscard]] T value() const { return static_cast<T>(*this); }

   private:
    Array<T, D>* a_;
    Sink* sink_;
    std::int64_t t_;
    std::array<std::int64_t, D> idx_;
  };

  template <typename... Idx>
  [[nodiscard]] Ref operator()(std::int64_t t, Idx... i) const {
    static_assert(sizeof...(Idx) == D);
    return Ref(*a_, *sink_, t,
               std::array<std::int64_t, D>{static_cast<std::int64_t>(i)...});
  }

  template <typename... Idx>
  [[nodiscard]] T read(std::int64_t t, Idx... i) const {
    return static_cast<T>(operator()(t, i...));
  }

  /// write(t, idx..., value)
  template <typename... Rest>
  void write(std::int64_t t, Rest... rest) const {
    write_impl(t, std::make_index_sequence<sizeof...(Rest) - 1>{}, rest...);
  }

  [[nodiscard]] Array<T, D>& array() const { return *a_; }

 private:
  template <std::size_t... Is, typename... Rest>
  void write_impl(std::int64_t t, std::index_sequence<Is...>, Rest... rest) const {
    auto tuple = std::forward_as_tuple(rest...);
    std::array<std::int64_t, D> idx{
        static_cast<std::int64_t>(std::get<Is>(tuple))...};
    T& ref = a_->at(t, idx);
    sink_->touch(&ref, sizeof(T));
    ref = std::get<sizeof...(Rest) - 1>(tuple);
  }

  Array<T, D>* a_;
  Sink* sink_;
};

/// Phase-1 compliance view: checks that every access matches a cell of the
/// declared shape relative to the kernel's home point ("the Pochoir template
/// library complains ... if an access falls outside the region specified by
/// the shape declaration").  Writes must target the home cell.
template <typename T, int D>
class ShapeCheckedView {
 public:
  ShapeCheckedView(Array<T, D>& a, const Shape<D>& shape, std::int64_t home_t,
                   std::array<std::int64_t, D> home)
      : a_(&a), shape_(&shape), home_t_(home_t), home_(home) {}

  class Ref {
   public:
    Ref(const ShapeCheckedView& v, std::int64_t t,
        std::array<std::int64_t, D> idx)
        : v_(v), t_(t), idx_(idx) {}

    operator T() const {  // NOLINT(google-explicit-constructor)
      v_.check(t_, idx_, /*is_write=*/false);
      return v_.a_->get(t_, idx_);
    }
    Ref& operator=(const T& val) {
      v_.check(t_, idx_, /*is_write=*/true);
      v_.a_->at(t_, idx_) = val;
      return *this;
    }
    Ref& operator=(const Ref& other) { return *this = static_cast<T>(other); }
    Ref& operator+=(const T& val) { return *this = static_cast<T>(*this) + val; }
    Ref& operator-=(const T& val) { return *this = static_cast<T>(*this) - val; }
    Ref& operator*=(const T& val) { return *this = static_cast<T>(*this) * val; }
    [[nodiscard]] T value() const { return static_cast<T>(*this); }

   private:
    const ShapeCheckedView& v_;
    std::int64_t t_;
    std::array<std::int64_t, D> idx_;
  };

  template <typename... Idx>
  [[nodiscard]] Ref operator()(std::int64_t t, Idx... i) const {
    static_assert(sizeof...(Idx) == D);
    return Ref(*this, t,
               std::array<std::int64_t, D>{static_cast<std::int64_t>(i)...});
  }

  template <typename... Idx>
  [[nodiscard]] T read(std::int64_t t, Idx... i) const {
    return static_cast<T>(operator()(t, i...));
  }

  /// write(t, idx..., value)
  template <typename... Rest>
  void write(std::int64_t t, Rest... rest) const {
    write_impl(t, std::make_index_sequence<sizeof...(Rest) - 1>{}, rest...);
  }

  [[nodiscard]] Array<T, D>& array() const { return *a_; }

 private:
  template <std::size_t... Is, typename... Rest>
  void write_impl(std::int64_t t, std::index_sequence<Is...>, Rest... rest) const {
    auto tuple = std::forward_as_tuple(rest...);
    std::array<std::int64_t, D> idx{
        static_cast<std::int64_t>(std::get<Is>(tuple))...};
    check(t, idx, /*is_write=*/true);
    a_->at(t, idx) = std::get<sizeof...(Rest) - 1>(tuple);
  }

  void check(std::int64_t t, const std::array<std::int64_t, D>& idx,
             bool is_write) const {
    std::array<std::int64_t, D> dx;
    for (int i = 0; i < D; ++i) dx[i] = idx[i] - home_[i];
    const std::int64_t dt = t - home_t_;
    if (is_write) {
      POCHOIR_ASSERT_MSG(dt == shape_->home_dt(),
                         "kernel write does not target the home cell's time");
      for (int i = 0; i < D; ++i) {
        POCHOIR_ASSERT_MSG(dx[i] == 0, "kernel write is spatially off-home");
      }
      return;
    }
    POCHOIR_ASSERT_MSG(shape_->contains_offset(dt, dx),
                       "kernel access outside the declared Pochoir shape");
  }

  Array<T, D>* a_;
  const Shape<D>* shape_;
  std::int64_t home_t_;
  std::array<std::int64_t, D> home_;
};

}  // namespace pochoir
