// Stencil shapes — §2 of the paper (Pochoir_Shape_dimD).
//
// A shape is a list of cells, each an offset (dt, dx_0, ..., dx_{d-1}) from
// the space-time point at which the kernel is invoked.  The first cell is
// the *home* cell (the point being written); all other cells must have
// strictly smaller time offsets and are read-only.  From the shape we derive
//   depth  = t_home - min t_c          (time levels a point depends on)
//   sigma_i = max_c ceil(|dx_i| / (t_home - t_c))   (stencil slope, §3)
//   reach_i = max_c |dx_i|             (widest spatial excursion)
#pragma once

#include <array>
#include <cstdint>
#include <cstdlib>
#include <initializer_list>
#include <vector>

#include "support/assertion.hpp"
#include "support/math_util.hpp"

namespace pochoir {

/// One cell of a stencil shape: a space-time offset.
template <int D>
struct ShapeCell {
  std::int64_t dt = 0;
  std::array<std::int64_t, D> dx{};

  friend bool operator==(const ShapeCell&, const ShapeCell&) = default;
};

/// The computing shape of a d-dimensional stencil.
template <int D>
class Shape {
 public:
  /// Builds a shape from (dt, dx...) tuples; the first entry is the home
  /// cell.  Mirrors `Pochoir_Shape_2D s[] = {{1,0,0}, {0,1,0}, ...}`.
  Shape(std::initializer_list<std::array<std::int64_t, D + 1>> cells) {
    POCHOIR_ASSERT_MSG(cells.size() >= 1, "a shape needs at least a home cell");
    cells_.reserve(cells.size());
    for (const auto& raw : cells) {
      ShapeCell<D> cell;
      cell.dt = raw[0];
      for (int i = 0; i < D; ++i) cell.dx[i] = raw[static_cast<std::size_t>(i) + 1];
      cells_.push_back(cell);
    }
    derive();
  }

  explicit Shape(std::vector<ShapeCell<D>> cells) : cells_(std::move(cells)) {
    POCHOIR_ASSERT_MSG(!cells_.empty(), "a shape needs at least a home cell");
    derive();
  }

  /// All cells, home first.
  [[nodiscard]] const std::vector<ShapeCell<D>>& cells() const { return cells_; }

  /// Time offset of the home (written) cell.
  [[nodiscard]] std::int64_t home_dt() const { return home_dt_; }

  /// Number of time steps a grid point depends on (k in the paper); arrays
  /// registered with this shape need depth()+1 time levels.
  [[nodiscard]] std::int64_t depth() const { return depth_; }

  /// Stencil slope along dimension i (σ_i in §3).
  [[nodiscard]] std::int64_t sigma(int i) const {
    return sigma_[static_cast<std::size_t>(i)];
  }
  [[nodiscard]] const std::array<std::int64_t, D>& sigmas() const { return sigma_; }

  /// Largest |spatial offset| along dimension i (halo width for LOOPS).
  [[nodiscard]] std::int64_t reach(int i) const {
    return reach_[static_cast<std::size_t>(i)];
  }
  [[nodiscard]] const std::array<std::int64_t, D>& reaches() const { return reach_; }

  /// True if (dt, dx) matches some cell of the shape; used by the Phase-1
  /// shape-compliance checker ("the template library complains if an access
  /// falls outside the declared shape").
  [[nodiscard]] bool contains_offset(std::int64_t dt,
                                     const std::array<std::int64_t, D>& dx) const {
    for (const auto& cell : cells_) {
      if (cell.dt == dt && cell.dx == dx) return true;
    }
    return false;
  }

  friend bool operator==(const Shape& a, const Shape& b) {
    return a.cells_ == b.cells_;
  }

 private:
  void derive() {
    const ShapeCell<D>& home = cells_.front();
    for (int i = 0; i < D; ++i) {
      POCHOIR_ASSERT_MSG(home.dx[i] == 0,
                         "home cell spatial coordinates must all be 0");
    }
    home_dt_ = home.dt;
    std::int64_t min_dt = home_dt_;
    sigma_.fill(0);
    reach_.fill(0);
    for (std::size_t c = 1; c < cells_.size(); ++c) {
      const ShapeCell<D>& cell = cells_[c];
      POCHOIR_ASSERT_MSG(cell.dt < home_dt_,
                         "non-home cells must have smaller time offsets");
      min_dt = cell.dt < min_dt ? cell.dt : min_dt;
      const std::int64_t span = home_dt_ - cell.dt;  // >= 1
      for (int i = 0; i < D; ++i) {
        const std::int64_t mag = std::abs(cell.dx[i]);
        sigma_[static_cast<std::size_t>(i)] =
            std::max(sigma_[static_cast<std::size_t>(i)], ceil_div(mag, span));
        reach_[static_cast<std::size_t>(i)] =
            std::max(reach_[static_cast<std::size_t>(i)], mag);
      }
    }
    depth_ = home_dt_ - min_dt;
    if (cells_.size() == 1) depth_ = 1;  // pure generator stencil
  }

  std::vector<ShapeCell<D>> cells_;
  std::int64_t home_dt_ = 0;
  std::int64_t depth_ = 1;
  std::array<std::int64_t, D> sigma_{};
  std::array<std::int64_t, D> reach_{};
};

}  // namespace pochoir
