// TRAP — Pochoir's cache-oblivious parallel algorithm (Figure 2, §3).
//
// The walker recursively decomposes a zoid:
//   1. Hyperspace cut: apply a parallel space cut to *every* dimension that
//      admits one, all at once.  The 3^k subzoids fall into k+1 dependency
//      levels (Lemma 1); levels run in order, zoids within a level in
//      parallel.
//   2. Time cut: if no space cut applies and the height exceeds the
//      coarsening threshold, halve the time dimension; lower before upper.
//   3. Base case: hand the zoid to the interior or boundary base-case
//      functor (the two kernel clones of §4).
//
// The walker is policy-parameterized (serial vs work-stealing parallel) and
// base-case-parameterized, so the same control structure serves real
// execution, pointer-optimized base cases, and traced simulation.
#pragma once

#include <cstdint>
#include <utility>

#include "core/walk_context.hpp"
#include "geometry/cuts.hpp"
#include "geometry/zoid.hpp"
#include "runtime/parallel.hpp"
#include "telemetry/trace.hpp"

namespace pochoir {

template <int D, typename Policy, typename InteriorBase, typename BoundaryBase>
class TrapWalker {
 public:
  TrapWalker(const WalkContext<D>& ctx, const Policy& policy,
             InteriorBase& interior_base, BoundaryBase& boundary_base)
      : ctx_(ctx),
        policy_(policy),
        interior_base_(interior_base),
        boundary_base_(boundary_base) {}

  /// Processes every grid point of `z` in dependency order.
  void walk(const Zoid<D>& z) {
    if (z.height() < 1) return;
    walk_impl(z, /*interior=*/false, /*depth=*/0);
  }

 private:
  void walk_impl(const Zoid<D>& virtual_z, bool interior, int depth) {
    // Cooperative cancellation at zoid granularity: a fired token makes the
    // whole recursion decline work and unwind; the supervised runner then
    // restores the last slab-boundary snapshot.
    if (ctx_.should_stop()) return;
    const Zoid<D> z = interior ? virtual_z : ctx_.normalize(virtual_z);
    if (!interior) interior = ctx_.is_interior(z);
    // Only the top few recursion levels are traced (ctx.trace_depth, -1 =
    // off); a nullptr name makes the span a no-op.
    trace::Span span(depth <= ctx_.trace_depth ? "zoid" : nullptr, depth);

    const HyperCut<D> plan =
        plan_hyperspace_cut(z, ctx_.sigma, ctx_.dx_threshold, ctx_.grid);
    if (!plan.empty()) {
      if (ctx_.stats != nullptr) ctx_.stats->on_space_cut();
      // Stack-resident buckets: the recursion node performs no heap
      // allocation (SubzoidLevels has compile-time capacity 3^D x (D+1)).
      SubzoidLevels<D> levels;
      collect_subzoids_by_level(z, plan, levels);
      for (int l = 0; l < levels.level_count; ++l) {
        const int n = levels.size(l);
        if (n == 0) continue;
        if (n == 1) {
          walk_impl(levels.at(l, 0), interior, depth + 1);
        } else {
          policy_.for_all(n, [&](std::int64_t i) {
            walk_impl(levels.at(l, static_cast<int>(i)), interior, depth + 1);
          });
        }
      }
      return;
    }

    if (z.height() > ctx_.dt_threshold) {
      if (ctx_.stats != nullptr) ctx_.stats->on_time_cut();
      const auto halves = time_cut(z);
      walk_impl(halves.first, interior, depth + 1);
      walk_impl(halves.second, interior, depth + 1);
      return;
    }

    if (ctx_.stats != nullptr) {
      ctx_.stats->on_base(static_cast<std::uint64_t>(z.volume()), z.height(),
                          interior);
    }
    if (interior) {
      interior_base_(z);
    } else {
      boundary_base_(z);
    }
  }

  const WalkContext<D>& ctx_;
  const Policy& policy_;
  InteriorBase& interior_base_;
  BoundaryBase& boundary_base_;
};

/// Convenience runner: walks the full space-time box [t0, t1) x grid.
template <int D, typename Policy, typename InteriorBase, typename BoundaryBase>
void run_trap(const WalkContext<D>& ctx, const Policy& policy,
              std::int64_t t0, std::int64_t t1, InteriorBase&& interior_base,
              BoundaryBase&& boundary_base) {
  TrapWalker<D, Policy, std::decay_t<InteriorBase>, std::decay_t<BoundaryBase>>
      walker(ctx, policy, interior_base, boundary_base);
  walker.walk(Zoid<D>::box(t0, t1, ctx.grid));
}

}  // namespace pochoir
