// Umbrella header: the complete public API of the Pochoir reproduction.
//
//   #include <pochoir/pochoir.hpp>
//
// Core types:   pochoir::Shape<D>, pochoir::Array<T,D>, pochoir::Stencil<D,Ts...>
// Boundaries:   periodic_boundary, dirichlet_boundary, neumann_boundary, mixed_boundary
// Algorithms:   Algorithm::{kTrap,kStrap,kLoopsParallel,kLoopsSerial}
// Tuning:       Options<D>, autotune_coarsening
// Fast path:    LinearStencil<T,D> (split-pointer base cases)
// Analysis:     analyze_trap/analyze_strap/analyze_loops, CacheSim
// Resilience:   Stencil::run_supervised/resume, RunReport, SupervisorOptions,
//               CancelToken, FaultPlan, pochoir::Error
// Telemetry:    pochoir::trace::Session/Span (POCHOIR_TRACE=out.json),
//               telemetry::Registry, write_chrome_trace, WalkStats counters
// DSL veneer:   <pochoir/dsl.hpp> (the paper's Figure 6 macro syntax)
#pragma once

#include "analysis/cache_sim.hpp"
#include "analysis/dag_metrics.hpp"
#include "core/array.hpp"
#include "core/autotune.hpp"
#include "core/boundary.hpp"
#include "core/linear_stencil.hpp"
#include "core/loops.hpp"
#include "core/options.hpp"
#include "core/shape.hpp"
#include "core/stencil.hpp"
#include "core/strap.hpp"
#include "core/trap.hpp"
#include "core/views.hpp"
#include "geometry/cuts.hpp"
#include "geometry/zoid.hpp"
#include "resilience/checkpoint.hpp"
#include "resilience/fault_injection.hpp"
#include "resilience/health.hpp"
#include "resilience/supervisor.hpp"
#include "runtime/parallel.hpp"
#include "runtime/scheduler.hpp"
#include "support/atomic_file.hpp"
#include "support/cancellation.hpp"
#include "support/error.hpp"
#include "support/json_lint.hpp"
#include "support/timer.hpp"
#include "telemetry/export.hpp"
#include "telemetry/stats.hpp"
#include "telemetry/trace.hpp"
