// The Pochoir specification language, Figure 6 style.
//
// This veneer reproduces the paper's macro syntax on top of the template
// library, which is exactly what "Phase 1" is: the macros expand into
// ordinary C++ so the program compiles and runs with the checked
// (functionally correct, unoptimized access) semantics, and the same source
// is what the pochoirc translator rewrites into optimized postsource for
// "Phase 2".
//
//   Pochoir_Boundary_2D(heat_bv, a, t, x, y)
//     return a.get(t, mod(x, a.size(1)), mod(y, a.size(0)));
//   Pochoir_Boundary_End
//
//   Pochoir_Shape_2D shape[] = {{1,0,0},{0,0,0},{0,1,0},{0,-1,0},{0,0,-1},{0,0,1}};
//   Pochoir_2D heat(shape);
//   Pochoir_Array_2D(double) u(X, Y);
//   u.Register_Boundary(heat_bv);
//   heat.Register_Array(u);
//   Pochoir_Kernel_2D(heat_fn, t, x, y)
//     u(t+1,x,y) = ... u(t,x-1,y) ...;
//   Pochoir_Kernel_End
//   heat.Run(T, heat_fn);
//
// Scope of the veneer: value type double (the paper's examples); the full
// template API (pochoir::Stencil<D, Ts...>) supports arbitrary cell types
// and multiple arrays.
#pragma once

#include <array>
#include <cstdint>
#include <type_traits>

#include "core/array.hpp"
#include "core/boundary.hpp"
#include "core/options.hpp"
#include "core/shape.hpp"
#include "core/stencil.hpp"
#include "support/math_util.hpp"
// The trace session API is part of the DSL surface: pochoirc wraps every
// generated Run call in a pochoir::trace::Session.
#include "telemetry/export.hpp"

namespace pochoir::dsl {

/// One cell of a shape literal: {dt, dx...}.
template <int D>
using ShapeCell = std::array<std::int64_t, D + 1>;

/// Array declared with paper syntax: sizes in natural order, depth as an
/// optional template parameter.
template <typename T, int D, int Depth = 1>
class ArrayDecl : public Array<T, D> {
 public:
  template <typename... Sz>
    requires(sizeof...(Sz) == D)
  explicit ArrayDecl(Sz... sizes)
      : Array<T, D>(std::array<std::int64_t, D>{static_cast<std::int64_t>(sizes)...},
                    Depth) {}

  /// Paper-style boundary registration.
  template <typename F>
  void Register_Boundary(F&& fn) {
    this->register_boundary(std::forward<F>(fn));
  }
};

template <typename T, int Depth = 1>
using Array1D = ArrayDecl<T, 1, Depth>;
template <typename T, int Depth = 1>
using Array2D = ArrayDecl<T, 2, Depth>;
template <typename T, int Depth = 1>
using Array3D = ArrayDecl<T, 3, Depth>;
template <typename T, int Depth = 1>
using Array4D = ArrayDecl<T, 4, Depth>;

/// The Pochoir object of the veneer: a double-valued Stencil constructed
/// from a C-array shape literal.
template <int D>
class Pochoir : public Stencil<D, double> {
 public:
  template <std::size_t N>
  explicit Pochoir(const ShapeCell<D> (&cells)[N])
      : Stencil<D, double>(make_shape(cells, std::make_index_sequence<N>{})) {}

 private:
  template <std::size_t N, std::size_t... Is>
  static Shape<D> make_shape(const ShapeCell<D> (&cells)[N],
                             std::index_sequence<Is...>) {
    return Shape<D>{cells[Is]...};
  }
};

}  // namespace pochoir::dsl

// --- paper keywords ----------------------------------------------------------

#define Pochoir_Shape_1D ::pochoir::dsl::ShapeCell<1>
#define Pochoir_Shape_2D ::pochoir::dsl::ShapeCell<2>
#define Pochoir_Shape_3D ::pochoir::dsl::ShapeCell<3>
#define Pochoir_Shape_4D ::pochoir::dsl::ShapeCell<4>

#define Pochoir_Array_1D(...) ::pochoir::dsl::Array1D<__VA_ARGS__>
#define Pochoir_Array_2D(...) ::pochoir::dsl::Array2D<__VA_ARGS__>
#define Pochoir_Array_3D(...) ::pochoir::dsl::Array3D<__VA_ARGS__>
#define Pochoir_Array_4D(...) ::pochoir::dsl::Array4D<__VA_ARGS__>

#define Pochoir_1D ::pochoir::dsl::Pochoir<1>
#define Pochoir_2D ::pochoir::dsl::Pochoir<2>
#define Pochoir_3D ::pochoir::dsl::Pochoir<3>
#define Pochoir_4D ::pochoir::dsl::Pochoir<4>

// Boundary functions are generic lambdas taking (array, t, idx) and binding
// the paper's named spatial coordinates from idx.
#define Pochoir_Boundary_1D(name, arr, t, x)                                 \
  inline const auto name = [](const auto& arr, std::int64_t t,               \
                              const std::array<std::int64_t, 1>& _pi) ->     \
      typename std::decay_t<decltype(arr)>::value_type {                     \
    [[maybe_unused]] const std::int64_t x = _pi[0];                          \
    [[maybe_unused]] const std::int64_t t##_unused = t;

#define Pochoir_Boundary_2D(name, arr, t, x, y)                              \
  inline const auto name = [](const auto& arr, std::int64_t t,               \
                              const std::array<std::int64_t, 2>& _pi) ->     \
      typename std::decay_t<decltype(arr)>::value_type {                     \
    [[maybe_unused]] const std::int64_t x = _pi[0];                          \
    [[maybe_unused]] const std::int64_t y = _pi[1];                          \
    [[maybe_unused]] const std::int64_t t##_unused = t;

#define Pochoir_Boundary_3D(name, arr, t, x, y, z)                           \
  inline const auto name = [](const auto& arr, std::int64_t t,               \
                              const std::array<std::int64_t, 3>& _pi) ->     \
      typename std::decay_t<decltype(arr)>::value_type {                     \
    [[maybe_unused]] const std::int64_t x = _pi[0];                          \
    [[maybe_unused]] const std::int64_t y = _pi[1];                          \
    [[maybe_unused]] const std::int64_t z = _pi[2];                          \
    [[maybe_unused]] const std::int64_t t##_unused = t;

#define Pochoir_Boundary_4D(name, arr, t, x, y, z, w)                        \
  inline const auto name = [](const auto& arr, std::int64_t t,               \
                              const std::array<std::int64_t, 4>& _pi) ->     \
      typename std::decay_t<decltype(arr)>::value_type {                     \
    [[maybe_unused]] const std::int64_t x = _pi[0];                          \
    [[maybe_unused]] const std::int64_t y = _pi[1];                          \
    [[maybe_unused]] const std::int64_t z = _pi[2];                          \
    [[maybe_unused]] const std::int64_t w = _pi[3];                          \
    [[maybe_unused]] const std::int64_t t##_unused = t;

#define Pochoir_Boundary_End \
  }                          \
  ;

// Kernels are Phase-1 style: they capture the Pochoir arrays by reference
// and access them through the checked operator() (Figure 6 semantics).
#define Pochoir_Kernel_1D(name, t, x) \
  auto name = [&](std::int64_t t, std::int64_t x) {
#define Pochoir_Kernel_2D(name, t, x, y) \
  auto name = [&](std::int64_t t, std::int64_t x, std::int64_t y) {
#define Pochoir_Kernel_3D(name, t, x, y, z) \
  auto name = [&](std::int64_t t, std::int64_t x, std::int64_t y, std::int64_t z) {
#define Pochoir_Kernel_4D(name, t, x, y, z, w)                             \
  auto name = [&](std::int64_t t, std::int64_t x, std::int64_t y,          \
                  std::int64_t z, std::int64_t w) {
#define Pochoir_Kernel_End \
  }                        \
  ;
