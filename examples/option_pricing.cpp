// American put option pricing (the paper's APOP benchmark): backward
// induction with early exercise as a 1D non-linear stencil.
#include <pochoir/pochoir.hpp>

#include <cmath>
#include <cstdio>

#include "stencils/apop.hpp"

int main() {
  using namespace pochoir;
  stencils::ApopParams p;
  p.strike = 100.0;
  p.spot_center = 100.0;
  p.rate = 0.05;
  p.sigma = 0.2;
  p.maturity = 1.0;
  if (!p.stable()) {
    std::printf("unstable parameters\n");
    return 1;
  }

  Array<double, 1> v({p.grid}, 1);
  stencils::apop_register_boundary(v, p);
  v.fill_time(0, [&](const std::array<std::int64_t, 1>& i) {
    return p.payoff(i[0]);  // value at expiry
  });

  Stencil<1, double> apop(stencils::apop_shape());
  apop.register_arrays(v);
  apop.run(p.steps, stencils::apop_kernel(p));

  const std::int64_t rt = apop.result_time();
  std::printf("American put, K=%.0f, r=%.2f, sigma=%.2f, T=%.1fy\n", p.strike,
              p.rate, p.sigma, p.maturity);
  std::printf("%8s %12s %12s %12s\n", "spot", "value", "intrinsic", "time-val");
  for (double spot : {70.0, 85.0, 100.0, 115.0, 130.0}) {
    // Locate the grid node closest to this spot price.
    const double xi = std::log(spot / p.spot_center);
    const std::int64_t x =
        static_cast<std::int64_t>(std::lround(xi / p.dxi())) + p.grid / 2;
    const double value = v.at(rt, {x});
    const double intrinsic = p.payoff(x);
    std::printf("%8.2f %12.4f %12.4f %12.4f\n", p.price(x), value, intrinsic,
                value - intrinsic);
  }
  return 0;
}
