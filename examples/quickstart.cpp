// Quickstart: the paper's running example (Figure 6) — 2D heat equation on
// a periodic torus — written against the paper-style DSL veneer.
//
// Build & run:   ./examples/quickstart
//
// The same program can be fed through the pochoirc translator
// (`pochoirc examples/quickstart.cpp`) to obtain the Phase-2 postsource.
#include <pochoir/dsl.hpp>

#include <cstdio>

#define mod(r, m) ((r) % (m) + ((r) % (m) < 0 ? (m) : 0))

// Periodic boundary: wrap indices around the torus (paper Figure 6).
Pochoir_Boundary_2D(heat_bv, a, t, x, y)
  return a.get(t, mod(x, a.size(1)), mod(y, a.size(0)));
Pochoir_Boundary_End

int main() {
  const int X = 500, Y = 500, T = 200;
  const double CX = 0.125, CY = 0.125;

  // Shape: write u(t+1, x, y) from the 5-point neighborhood at time t.
  Pochoir_Shape_2D heat_shape[] = {{1, 0, 0}, {0, 0, 0}, {0, 1, 0},
                                   {0, -1, 0}, {0, 0, -1}, {0, 0, 1}};
  Pochoir_2D heat(heat_shape);
  Pochoir_Array_2D(double) u(X, Y);
  u.Register_Boundary(heat_bv);
  heat.Register_Array(u);

  Pochoir_Kernel_2D(heat_fn, t, x, y)
    u(t + 1, x, y) = CX * (u(t, x + 1, y) - 2 * u(t, x, y) + u(t, x - 1, y))
                   + CY * (u(t, x, y + 1) - 2 * u(t, x, y) + u(t, x, y - 1))
                   + u(t, x, y);
  Pochoir_Kernel_End

  // A hot square in a cold domain.
  for (int x = 0; x < X; ++x) {
    for (int y = 0; y < Y; ++y) {
      const bool hot = x > 2 * X / 5 && x < 3 * X / 5 && y > 2 * Y / 5 && y < 3 * Y / 5;
      u(0, x, y) = hot ? 100.0 : 0.0;
    }
  }

  {
    // Optional self-profiling (POCHOIR_TRACE / POCHOIR_TELEMETRY env vars);
    // pochoirc wraps generated Run calls in the same session type.
    pochoir::trace::Session session("quickstart/heat_fn");
    heat.Run(T, heat_fn);  // cache-oblivious parallel TRAP under the hood
  }

  // Heat is conserved on the torus; the peak spreads out.
  double total = 0, peak = 0;
  for (int x = 0; x < X; ++x) {
    for (int y = 0; y < Y; ++y) {
      const double v = u(T, x, y);
      total += v;
      peak = v > peak ? v : peak;
    }
  }
  std::printf("after %d steps: total heat %.3f (conserved), peak %.3f\n", T,
              total, peak);
  std::printf("center value: %.6f\n", static_cast<double>(u(T, X / 2, Y / 2)));
  return 0;
}
