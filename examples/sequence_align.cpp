// Sequence alignment as 1D stencils (the paper's PSA and LCS benchmarks):
// dynamic programming over antidiagonals, with the diamond-shaped domain
// handled by branches in the kernel — exactly the structure the paper
// discusses when explaining these benchmarks' limited speedup.
#include <pochoir/pochoir.hpp>

#include <cstdio>

#include "stencils/common.hpp"
#include "stencils/lcs.hpp"
#include "stencils/psa.hpp"
#include "support/timer.hpp"

int main() {
  using namespace pochoir;
  using stencils::LcsCell;
  using stencils::PsaCell;

  const std::int64_t n = 4000;
  const auto a = stencils::random_sequence(n, 4, 1);
  const auto b = stencils::random_sequence(n, 4, 2);

  // --- LCS ------------------------------------------------------------
  {
    Array<LcsCell, 1> grid({n + 1}, 2);
    grid.register_boundary(zero_boundary<LcsCell, 1>());
    grid.fill_time(0, [](const auto&) { return 0; });
    grid.fill_time(1, [](const auto&) { return 0; });
    Stencil<1, LcsCell> lcs(stencils::lcs_shape());
    lcs.register_arrays(grid);
    Timer timer;
    lcs.run(2 * n - 1, stencils::lcs_kernel(a, b));
    const double secs = timer.seconds();
    const LcsCell score = grid.at(2 * n, {n});
    std::printf("LCS  of two random 4-letter strings of length %lld: %d "
                "(%.0f%% of length), %.2fs\n",
                static_cast<long long>(n), score,
                100.0 * score / static_cast<double>(n), secs);
  }

  // --- Gotoh affine-gap global alignment --------------------------------
  {
    const PsaCell border{stencils::psa_neg_inf, stencils::psa_neg_inf,
                         stencils::psa_neg_inf};
    Array<PsaCell, 1> grid({n + 1}, 2);
    grid.register_boundary(dirichlet_boundary<PsaCell, 1>(border));
    grid.fill_time(0, [&](const std::array<std::int64_t, 1>& i) {
      return i[0] == 0 ? PsaCell{0, stencils::psa_neg_inf,
                                 stencils::psa_neg_inf}
                       : border;
    });
    grid.fill_time(1, [&](const std::array<std::int64_t, 1>& i) {
      if (i[0] == 0) {
        return PsaCell{stencils::psa_neg_inf, stencils::psa_neg_inf, -3};
      }
      if (i[0] == 1) {
        return PsaCell{stencils::psa_neg_inf, -3, stencils::psa_neg_inf};
      }
      return border;
    });
    Stencil<1, PsaCell> psa(stencils::psa_shape());
    psa.register_arrays(grid);
    Timer timer;
    psa.run(2 * n - 1, stencils::psa_kernel(a, b));
    const double secs = timer.seconds();
    const std::int32_t score = stencils::psa_score(grid.at(2 * n, {n}));
    std::printf("PSA  affine-gap alignment score: %d, %.2fs\n", score, secs);
    std::printf("     (reference row-sweep DP agrees: %s)\n",
                score == stencils::psa_reference(a, b) ? "yes" : "NO");
  }
  return 0;
}
