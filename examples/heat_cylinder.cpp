// Mixed boundary conditions on a cylinder (§4): periodic around the
// circumference, time-varying Dirichlet at the rims — one unified algorithm,
// boundary behaviour chosen entirely by the boundary function.
//
// This example uses the template API directly (views-style kernel), the
// interface the compiler-generated postsource also targets.
#include <pochoir/pochoir.hpp>

#include <cstdio>

int main() {
  using namespace pochoir;
  const std::int64_t Around = 256;  // periodic dimension
  const std::int64_t Along = 128;   // Dirichlet dimension
  const std::int64_t T = 400;

  Shape<2> shape = {{1, 0, 0}, {0, 0, 0}, {0, 1, 0},
                    {0, -1, 0}, {0, 0, -1}, {0, 0, 1}};
  Array<double, 2> u({Around, Along}, shape.depth());

  // Wrap in x; the y < 0 rim is driven hot (and slowly heating), the
  // y >= Along rim is held cold.
  u.register_boundary([](const Array<double, 2>& a, std::int64_t t,
                         const std::array<std::int64_t, 2>& idx) -> double {
    if (idx[1] < 0) return 80.0 + 0.01 * static_cast<double>(t);  // hot rim
    if (idx[1] >= a.extent(1)) return 0.0;                        // cold rim
    return a.at(t, {mod_floor(idx[0], a.extent(0)), idx[1]});     // wrap
  });
  u.fill_time(0, [](const std::array<std::int64_t, 2>&) { return 0.0; });

  Stencil<2, double> cylinder(shape);
  cylinder.register_arrays(u);

  // Self-profiling hook: POCHOIR_TRACE=out.json writes a Perfetto trace of
  // this run, POCHOIR_TELEMETRY(-_JSON) collects/export counters.  With
  // neither set the session is a pair of counter snapshots — effectively free.
  trace::Session session("heat_cylinder");

  const double c = 0.2;
  cylinder.run(T, [c](std::int64_t t, std::int64_t x, std::int64_t y, auto v) {
    v(t + 1, x, y) = v(t, x, y) +
                     c * (v(t, x + 1, y) - 2 * v(t, x, y) + v(t, x - 1, y)) +
                     c * (v(t, x, y + 1) - 2 * v(t, x, y) + v(t, x, y - 1));
  });

  const telemetry::RunTelemetry tel = session.finish();
  if (tel.points() > 0) {
    std::printf("telemetry: %.3fs, %llu points (%.1f Mpts/s), "
                "%llu base cases, %llu space cuts, %llu time cuts\n",
                tel.seconds, static_cast<unsigned long long>(tel.points()),
                tel.points_per_s() / 1e6,
                static_cast<unsigned long long>(tel.walk.base_cases()),
                static_cast<unsigned long long>(tel.walk.space_cuts),
                static_cast<unsigned long long>(tel.walk.time_cuts));
  }

  // Profile along the cylinder axis: hot near y=0, cold near y=Along.
  std::printf("axial temperature profile after %lld steps:\n",
              static_cast<long long>(T));
  const std::int64_t rt = cylinder.result_time();
  for (std::int64_t y = 0; y < Along; y += Along / 8) {
    double ring_avg = 0;
    for (std::int64_t x = 0; x < Around; ++x) ring_avg += u.at(rt, {x, y});
    std::printf("  y=%4lld  avg=%8.4f\n", static_cast<long long>(y),
                ring_avg / static_cast<double>(Around));
  }
  return 0;
}
