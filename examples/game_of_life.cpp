// Conway's Game of Life on a torus (the paper's Life 2p benchmark): seed a
// glider gun region plus random soup, evolve with TRAP, render a census.
#include <pochoir/pochoir.hpp>

#include <cstdio>

#include "stencils/life.hpp"
#include "support/rng.hpp"

int main() {
  using namespace pochoir;
  using stencils::LifeCell;
  const std::int64_t N = 256;
  const std::int64_t T = 512;

  Array<LifeCell, 2> board({N, N}, 1);
  board.register_boundary(periodic_boundary<LifeCell, 2>());

  // Gosper glider gun in the top-left corner, random soup bottom-right.
  static const int gun[][2] = {
      {5, 1},  {5, 2},  {6, 1},  {6, 2},  {5, 11}, {6, 11}, {7, 11},
      {4, 12}, {8, 12}, {3, 13}, {9, 13}, {3, 14}, {9, 14}, {6, 15},
      {4, 16}, {8, 16}, {5, 17}, {6, 17}, {7, 17}, {6, 18}, {3, 21},
      {4, 21}, {5, 21}, {3, 22}, {4, 22}, {5, 22}, {2, 23}, {6, 23},
      {1, 25}, {2, 25}, {6, 25}, {7, 25}, {3, 35}, {4, 35}, {3, 36}, {4, 36}};
  Rng rng(7);
  board.fill_time(0, [&](const std::array<std::int64_t, 2>& i) -> LifeCell {
    for (const auto& cell : gun) {
      if (i[0] == cell[0] && i[1] == cell[1]) return 1;
    }
    if (i[0] > N / 2 && i[1] > N / 2) return rng.next_below(5) == 0 ? 1 : 0;
    return 0;
  });

  Stencil<2, LifeCell> life(stencils::life_shape());
  life.register_arrays(board);

  std::int64_t initial = 0;
  for (std::int64_t x = 0; x < N; ++x) {
    for (std::int64_t y = 0; y < N; ++y) initial += board.at(0, {x, y});
  }

  life.run(T, stencils::life_kernel());

  std::int64_t alive = 0;
  const std::int64_t rt = life.result_time();
  for (std::int64_t x = 0; x < N; ++x) {
    for (std::int64_t y = 0; y < N; ++y) alive += board.at(rt, {x, y});
  }
  std::printf("generation %lld: %lld cells alive (started with %lld)\n",
              static_cast<long long>(T), static_cast<long long>(alive),
              static_cast<long long>(initial));

  // Render the gun region.
  std::printf("gun region after %lld generations:\n", static_cast<long long>(T));
  for (std::int64_t x = 0; x < 12; ++x) {
    for (std::int64_t y = 0; y < 40; ++y) {
      std::putchar(board.at(rt, {x, y}) != 0 ? '#' : '.');
    }
    std::putchar('\n');
  }
  return 0;
}
