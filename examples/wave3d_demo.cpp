// 3D finite-difference wave equation (the paper's Wave 3 benchmark):
// a Gaussian pulse in a periodic box, evolved with the depth-2 stencil;
// demonstrates multi-time-level initial conditions and the split-pointer
// fast path for linear stencils.
#include <pochoir/pochoir.hpp>

#include <cmath>
#include <cstdio>

#include "stencils/wave.hpp"
#include "support/timer.hpp"

int main() {
  using namespace pochoir;
  const std::int64_t N = 96;
  const std::int64_t T = 128;
  const double c2 = 0.15;  // Courant number squared (stable: 6*c2 < 1... ok)

  const Shape<3> shape = stencils::wave_shape();
  Array<double, 3> u({N, N, N}, shape.depth());
  u.register_boundary(periodic_boundary<double, 3>());

  // Depth-2 stencil: two initial time levels (pulse at rest).
  auto pulse = [N](const std::array<std::int64_t, 3>& i) {
    const double dx = static_cast<double>(i[0] - N / 2);
    const double dy = static_cast<double>(i[1] - N / 2);
    const double dz = static_cast<double>(i[2] - N / 2);
    return std::exp(-(dx * dx + dy * dy + dz * dz) / 18.0);
  };
  u.fill_time(0, pulse);
  u.fill_time(1, pulse);

  Stencil<3, double> wave(shape);
  wave.register_arrays(u);

  Timer timer;
  wave.run_linear(T, stencils::wave_linear(c2));  // split-pointer base case
  const double secs = timer.seconds();

  const std::int64_t rt = wave.result_time();
  double center = u.at(rt, {N / 2, N / 2, N / 2});
  double max_abs = 0;
  std::int64_t max_r = 0;
  for (std::int64_t x = 0; x < N; ++x) {
    const double v = std::abs(u.at(rt, {x, N / 2, N / 2}));
    if (v > max_abs) {
      max_abs = v;
      max_r = std::abs(x - N / 2);
    }
  }
  const double pts = static_cast<double>(N) * N * N * T;
  std::printf("wave %lldx%lldx%lld, %lld steps in %.2fs (%.1f Mpoints/s)\n",
              static_cast<long long>(N), static_cast<long long>(N),
              static_cast<long long>(N), static_cast<long long>(T), secs,
              pts / secs / 1e6);
  std::printf("pulse left the center (center=%.4f); wavefront near radius "
              "%lld (amplitude %.4f)\n",
              center, static_cast<long long>(max_r), max_abs);
  return 0;
}
