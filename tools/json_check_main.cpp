// pochoir_json_check — validates that emitted telemetry/trace/bench JSON
// files are well-formed.  Used by CI after the traced smoke run and usable
// locally:
//
//   pochoir_json_check trace.json telemetry.json BENCH_fig3_table.json
//
// Exits 0 when every file lints clean, 1 otherwise (or when a file cannot
// be read).
#include <cstdio>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>

#include "support/json_lint.hpp"

int main(int argc, char** argv) {
  if (argc < 2) {
    std::cerr << "usage: pochoir_json_check FILE...\n";
    return 1;
  }
  int failures = 0;
  for (int i = 1; i < argc; ++i) {
    const std::string path = argv[i];
    std::ifstream in(path, std::ios::binary);
    if (!in) {
      std::cerr << path << ": cannot open\n";
      ++failures;
      continue;
    }
    std::ostringstream buf;
    buf << in.rdbuf();
    const std::string text = buf.str();
    const auto result = pochoir::json::lint(text);
    if (result.ok) {
      std::cout << path << ": ok (" << text.size() << " bytes)\n";
    } else {
      std::cerr << path << ": INVALID at byte " << result.pos << ": "
                << result.error << "\n";
      ++failures;
    }
  }
  return failures == 0 ? 0 : 1;
}
